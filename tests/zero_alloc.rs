//! Counting-allocator proof of the zero-copy propagation pipeline: after
//! warm-up, the workspace-threaded forward pass performs **zero heap
//! allocations** per sample.
//!
//! This file must stay a single-test binary: the counting allocator is
//! process-global, so any concurrently running test would pollute the
//! counters. Sequential mode is forced (`set_threads(1)`) because the
//! pooled FFT path intentionally draws from per-worker thread-local
//! scratch instead of the caller's workspace.

use lightridge::{Detector, DonnBuilder};
use lr_optics::{Distance, Grid, PixelPitch, Wavelength};
use lr_tensor::{parallel, Complex64, Field};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_forward_pass_allocates_nothing() {
    parallel::set_threads(1);

    // A 3-layer 64×64 DONN — the same shape of pipeline as the paper's
    // 200² systems (diffract → modulate per layer → final hop → detector).
    let grid = Grid::square(64, PixelPitch::from_um(36.0));
    let model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_mm(40.0))
        .diffractive_layers(3)
        .detector(Detector::grid_layout(64, 64, 10, 5))
        .build();

    let input = Field::from_fn(64, 64, |r, c| {
        Complex64::from_real(if (r / 8 + c / 8) % 2 == 0 { 1.0 } else { 0.0 })
    });
    let mut ws = model.make_workspace();
    let mut logits = Vec::with_capacity(model.num_classes());

    // Warm-up: fills the global plan/transfer caches, sizes the workspace
    // scratch, and reserves the logits buffer.
    for _ in 0..3 {
        model.infer_into(&input, &mut ws, &mut logits);
    }
    let reference_logits = logits.clone();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        model.infer_into(&input, &mut ws, &mut logits);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state forward pass must not allocate (got {} allocations over 10 passes)",
        after - before
    );
    // And it must still compute the right thing.
    assert_eq!(logits, reference_logits);
    assert!(logits.iter().all(|l| l.is_finite() && *l >= 0.0));
    assert!(logits.iter().sum::<f64>() > 0.0);

    parallel::set_threads(0);
}
