//! Counting-allocator proof of the zero-copy propagation pipeline: after
//! warm-up, the workspace-threaded forward pass performs **zero heap
//! allocations** per sample — and, with the trace ring, so does the full
//! forward-trace + backward training step. The batched paths
//! (`infer_batch_into`, `forward_trace_batch_into` +
//! `backward_batch_with` through a `BatchTraceRing`) carry the same
//! contract: one `BatchWorkspace` serves whole batches with zero
//! steady-state allocations and stays bit-identical to the per-sample
//! path.
//!
//! This file must stay a single-test binary: the counting allocator is
//! process-global, so any concurrently running test would pollute the
//! counters. Sequential mode is forced (`set_threads(1)`) because the
//! pooled FFT path intentionally draws from per-worker thread-local
//! scratch instead of the caller's workspace. The forward and backward
//! phases run inside the one test function for the same reason.

use lightridge::{BatchTraceRing, CodesignMode, Detector, DonnBuilder, ModelGrads, TraceRing};
use lr_nn::loss::{one_hot_into, softmax_mse_into};
// NB: `lightridge::TraceRing` above is the autodiff trace ring; the
// observability ring lives in `lr_obs` and is only referenced through
// qualified paths here.
use lr_obs::{kernel_profile, reset_kernel_profile, set_kernel_profiling, KernelKind};
use lr_optics::{Distance, Grid, PixelPitch, Wavelength};
use lr_tensor::{parallel, Complex64, Field, FieldBatch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the `System` allocator — the count is the
// only addition, and it never allocates or unwinds.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the caller's own contract to `System`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarding the caller's own contract to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the caller's own contract to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_forward_pass_allocates_nothing() {
    parallel::set_threads(1);

    // A 3-layer 64×64 DONN — the same shape of pipeline as the paper's
    // 200² systems (diffract → modulate per layer → final hop → detector).
    let grid = Grid::square(64, PixelPitch::from_um(36.0));
    let model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_mm(40.0))
        .diffractive_layers(3)
        .detector(Detector::grid_layout(64, 64, 10, 5))
        .build();

    let input = Field::from_fn(64, 64, |r, c| {
        Complex64::from_real(if (r / 8 + c / 8) % 2 == 0 { 1.0 } else { 0.0 })
    });
    let mut ws = model.make_workspace();
    let mut logits = Vec::with_capacity(model.num_classes());

    // Warm-up: fills the global plan/transfer caches, sizes the workspace
    // scratch, and reserves the logits buffer.
    for _ in 0..3 {
        model.infer_into(&input, &mut ws, &mut logits);
    }
    let reference_logits = logits.clone();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        model.infer_into(&input, &mut ws, &mut logits);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state forward pass must not allocate (got {} allocations over 10 passes)",
        after - before
    );
    // And it must still compute the right thing.
    assert_eq!(logits, reference_logits);
    assert!(logits.iter().all(|l| l.is_finite() && *l >= 0.0));
    assert!(logits.iter().sum::<f64>() > 0.0);

    // ---- Backward pass: the trace ring extends zero-allocation to the
    // full training step (forward trace + loss + backward). ----
    let mut ring = TraceRing::new(2);
    let mut grads = ModelGrads::zeros_like(&model);
    let mut target = Vec::with_capacity(model.num_classes());
    let mut logit_grads = Vec::with_capacity(model.num_classes());

    // Warm-up: fills the ring slots (2 traces), the loss buffers, and the
    // workspace gradient field.
    let train_step = |ring: &mut TraceRing,
                      grads: &mut ModelGrads,
                      target: &mut Vec<f64>,
                      logit_grads: &mut Vec<f64>,
                      ws: &mut lightridge::PropagationWorkspace| {
        let trace = ring.forward(&model, &input, CodesignMode::Soft, 7, ws);
        one_hot_into(2, model.num_classes(), target);
        let loss = softmax_mse_into(&trace.logits, target, logit_grads);
        model.backward_with(trace, logit_grads, grads, ws);
        loss
    };
    for _ in 0..3 {
        train_step(
            &mut ring,
            &mut grads,
            &mut target,
            &mut logit_grads,
            &mut ws,
        );
    }
    let reference_loss = train_step(
        &mut ring,
        &mut grads,
        &mut target,
        &mut logit_grads,
        &mut ws,
    );
    let reference_norm = grads.norm();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut last_loss = 0.0;
    for _ in 0..10 {
        last_loss = train_step(
            &mut ring,
            &mut grads,
            &mut target,
            &mut logit_grads,
            &mut ws,
        );
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state training step must not allocate (got {} allocations over 10 steps)",
        after - before
    );
    // Reused traces/buffers must still compute the same things.
    assert_eq!(last_loss, reference_loss);
    assert!(
        grads.norm() > reference_norm,
        "gradients must keep accumulating"
    );

    // ---- Batched inference: a whole batch through one BatchWorkspace
    // must allocate nothing in steady state and stay bit-identical to the
    // per-sample path. ----
    const BATCH: usize = 4;
    let inputs_vec: Vec<Field> = (0..BATCH)
        .map(|b| {
            Field::from_fn(64, 64, |r, c| {
                Complex64::from_real(if (r / 4 + c / 4 + b) % 3 == 0 {
                    1.0
                } else {
                    0.0
                })
            })
        })
        .collect();
    let input_refs: Vec<&Field> = inputs_vec.iter().collect();
    let mut batch_ws = model.make_batch_workspace(BATCH);
    let mut outputs: Vec<Vec<f64>> = (0..BATCH)
        .map(|_| Vec::with_capacity(model.num_classes()))
        .collect();
    for _ in 0..3 {
        model.infer_batch_into(&input_refs, CodesignMode::Soft, &mut batch_ws, &mut outputs);
    }
    let reference_outputs = outputs.clone();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        model.infer_batch_into(&input_refs, CodesignMode::Soft, &mut batch_ws, &mut outputs);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state batched inference must not allocate (got {} allocations over 10 passes)",
        after - before
    );
    assert_eq!(outputs, reference_outputs);
    for (input, out) in inputs_vec.iter().zip(&outputs) {
        let mut per_sample = Vec::with_capacity(model.num_classes());
        model.infer_into(input, &mut ws, &mut per_sample);
        assert_eq!(
            out, &per_sample,
            "batched inference must stay bit-identical to per-sample"
        );
    }

    // ---- Batched training step: the whole batch forwards and backwards
    // as one FieldBatch through a BatchTraceRing — zero steady-state
    // allocations for the diffractive stack. ----
    let mut batch_inputs = FieldBatch::zeros(BATCH, 64, 64);
    for (b, input) in inputs_vec.iter().enumerate() {
        batch_inputs.copy_plane_from(b, input);
    }
    let seeds: Vec<u64> = (0..BATCH as u64).map(|b| b * 7919 + 13).collect();
    let mut batch_ring = BatchTraceRing::new(1);
    let mut batch_grads = ModelGrads::zeros_like(&model);
    let mut batch_logit_grads: Vec<Vec<f64>> = (0..BATCH)
        .map(|_| Vec::with_capacity(model.num_classes()))
        .collect();
    let batch_step = |ring: &mut BatchTraceRing,
                      grads: &mut ModelGrads,
                      target: &mut Vec<f64>,
                      logit_grads: &mut [Vec<f64>],
                      ws: &mut lightridge::BatchWorkspace|
     -> f64 {
        let trace = ring.forward(&model, &batch_inputs, CodesignMode::Soft, &seeds, ws);
        let mut loss = 0.0;
        for (b, lg) in logit_grads.iter_mut().enumerate().take(BATCH) {
            one_hot_into(b % model.num_classes(), model.num_classes(), target);
            loss += softmax_mse_into(&trace.logits[b], target, lg);
        }
        model.backward_batch_with(trace, logit_grads, grads, ws);
        loss
    };
    for _ in 0..3 {
        batch_step(
            &mut batch_ring,
            &mut batch_grads,
            &mut target,
            &mut batch_logit_grads,
            &mut batch_ws,
        );
    }
    let reference_batch_loss = batch_step(
        &mut batch_ring,
        &mut batch_grads,
        &mut target,
        &mut batch_logit_grads,
        &mut batch_ws,
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut last_batch_loss = 0.0;
    for _ in 0..10 {
        last_batch_loss = batch_step(
            &mut batch_ring,
            &mut batch_grads,
            &mut target,
            &mut batch_logit_grads,
            &mut batch_ws,
        );
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state batched training step must not allocate (got {} allocations over 10 steps)",
        after - before
    );
    assert_eq!(last_batch_loss, reference_batch_loss);

    // ---- Kernel profiling: with the profiler ON, the same steady-state
    // forward pass must still allocate nothing (the aggregation cells are
    // process-global atomics), and the profile must attribute time to the
    // FFT passes, the transfer-function apply, and the detector readout.
    // With it OFF again, the counters must stop moving. ----
    reset_kernel_profile();
    set_kernel_profiling(true);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        model.infer_into(&input, &mut ws, &mut logits);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "kernel-profiled forward pass must not allocate (got {} allocations over 10 passes)",
        after - before
    );
    let profile = kernel_profile();
    for kind in [
        KernelKind::FftRows,
        KernelKind::FftCols,
        KernelKind::Transfer,
        KernelKind::Detector,
    ] {
        let stat = profile.get(kind);
        assert!(
            stat.calls > 0,
            "profiler on: {} must record calls",
            stat.name()
        );
    }
    // 64 is a power of two: the radix-2/4 path, no Stockham or Bluestein.
    assert_eq!(profile.get(KernelKind::Stockham).calls, 0);
    assert_eq!(profile.get(KernelKind::Bluestein).calls, 0);

    set_kernel_profiling(false);
    let frozen = kernel_profile();
    for _ in 0..10 {
        model.infer_into(&input, &mut ws, &mut logits);
    }
    assert_eq!(
        kernel_profile(),
        frozen,
        "profiler off: kernel counters must not move"
    );

    parallel::set_threads(0);
}
