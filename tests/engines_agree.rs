//! Cross-engine validation: a trained LightRidge DONN and the
//! LightPipes-style baseline engine implement the *same physics*, so
//! running the same trained phase masks through both must produce the same
//! detector readings. This is the software analogue of the paper's
//! hardware-correlation claim: the fast kernels are exactly as precise as
//! the reference implementation.

use lightridge::train::{self, TrainConfig};
use lightridge::{CodesignMode, Detector, DonnBuilder};
use lr_datasets::digits::{self, DigitsConfig};
use lr_lightpipes as lp;
use lr_optics::{Approximation, Distance, Grid, PixelPitch, Wavelength};
use lr_tensor::Field;

#[test]
fn trained_donn_forward_matches_lightpipes_reference() {
    let size = 24;
    let pitch = 36e-6;
    let z = 0.012;
    let grid = Grid::square(size, PixelPitch::from_meters(pitch));

    // Train a small model (band-limiting off so both engines share the
    // exact same transfer function).
    let mut model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_meters(z))
        .approximation(Approximation::RayleighSommerfeld)
        .diffractive_layers(2)
        .detector(Detector::grid_layout(size, size, 10, 3))
        .init_seed(6)
        .build();
    let config = DigitsConfig {
        size,
        ..Default::default()
    };
    let data = digits::generate(120, &config, 5);
    train::train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 2,
            batch_size: 20,
            learning_rate: 0.3,
            ..Default::default()
        },
    );

    // Rebuild the model without band-limiting for the comparison.
    let masks = model.phase_masks();
    let prop = lr_optics::FreeSpace::with_options(
        grid,
        Wavelength::from_nm(532.0),
        Distance::from_meters(z),
        Approximation::RayleighSommerfeld,
        false,
    );

    let (img, _) = &data[0];

    // LightRidge path (manual, band-limit off).
    let mut u = Field::from_amplitudes(size, size, img);
    for mask in &masks {
        prop.propagate(&mut u);
        for (zv, &p) in u.as_mut_slice().iter_mut().zip(mask) {
            *zv *= lr_tensor::Complex64::cis(p);
        }
    }
    prop.propagate(&mut u);
    let lr_logits = model.detector().read(&u);

    // LightPipes path: same masks, same physics, naive engine.
    let mut f = lp::begin(size, pitch, 532e-9);
    f = lp::substitute_intensity(&f, img);
    for mask in &masks {
        f = lp::forvard(&f, z);
        f = lp::phase_mask(&f, mask);
    }
    f = lp::forvard(&f, z);
    let intensity: Vec<f64> = lp::intensity(&f).into_iter().flatten().collect();
    let lp_logits = model.detector().read_intensity(&intensity);

    for (k, (a, b)) in lr_logits.iter().zip(&lp_logits).enumerate() {
        assert!(
            (a - b).abs() < 1e-6 * (1.0 + a.abs()),
            "engines disagree on detector region {k}: {a} vs {b}"
        );
    }
}

#[test]
fn band_limited_model_still_classifies_like_reference() {
    // With band-limiting on (the default), logits may differ slightly from
    // the naive engine, but predictions should agree on easy inputs.
    let size = 24;
    let grid = Grid::square(size, PixelPitch::from_um(36.0));
    let mut model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_mm(12.0))
        .diffractive_layers(2)
        .detector(Detector::grid_layout(size, size, 10, 3))
        .init_seed(8)
        .build();
    let config = DigitsConfig {
        size,
        ..Default::default()
    };
    let data = digits::generate(200, &config, 6);
    train::train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 4,
            batch_size: 20,
            learning_rate: 0.3,
            ..Default::default()
        },
    );
    // The emulation (soft) and the trace-based deployment (hard has no
    // codesign layers here, so they are identical paths) agree exactly.
    let (img, _) = &data[0];
    let input = Field::from_amplitudes(size, size, img);
    let a = model.infer(&input);
    let b = model.forward_trace(&input, CodesignMode::Deploy, 0).logits;
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-12, "raw layers must be mode-independent");
    }
}
