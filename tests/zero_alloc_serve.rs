//! Counting-allocator proof of the serving-path contract on the **sharded**
//! runtime: once the server is warm, a mixed two-model workload served
//! through 2 shards (affinity routing, per-shard queues and dispatchers)
//! performs **zero heap allocations** per request — client slot reuse,
//! bounded queues, per-worker **batched** workspaces (every emulated
//! request executes as a batched forward through a `BatchWorkspace`; the
//! final stats assertions prove the batched path served the whole
//! workload), registry/in-flight/metrics snapshot loads, and atomic
//! histograms all included — and still returns logits bit-identical to
//! direct inference.
//!
//! The test then performs a **live version flip mid-run**
//! (`Server::register_emulated` on the running server): registration may
//! allocate (it builds and warms the new workspaces), but once the new
//! version has served its first warming requests, the steady-state window
//! covering *both* the old and new versions must again be allocation-free
//! and bit-identical on both sides of the flip.
//!
//! Finally the superseded version is **retired and reclaimed** mid-run:
//! the drain-fenced reclaim frees its per-worker workspaces (drops only —
//! the allocator counts allocations), after which the surviving models'
//! steady state must *still* be allocation-free and bit-identical.
//!
//! A last phase injects a **worker panic** through the fault plan: the
//! panicking run fails only its own request (`WorkerPanic`), the
//! dispatcher rebuilds the poisoned workspace through the prewarm path
//! (rebuilding allocates — outside the window), and the steady state
//! *after the rebuild* must once more be allocation-free and
//! bit-identical. Fault hooks are armed-trigger-only here (all rates
//! zero), so the measured windows also prove the injection seams
//! themselves are allocation-free when quiet.
//!
//! Like `zero_alloc.rs`, this must stay a single-test binary: the counting
//! allocator is process-global. Sequential mode is forced
//! (`set_threads(1)`) so shard partitions have width 0 and batch execution
//! runs inline on each dispatcher thread; the allocator counts allocations
//! from *every* thread, so the dispatchers' steady state is covered too.

use lightridge::{Detector, DonnBuilder, DonnModel};
use lr_optics::{Distance, Grid, PixelPitch, Wavelength};
use lr_serve::{
    BatchPolicy, FaultKind, FaultPlan, ModelRegistry, ReadoutMode, ServeError, Server,
    StageLatency, TraceConfig, Transport,
};
use lr_tensor::{parallel, Complex64, Field};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the `System` allocator — the count is the
// only addition, and it never allocates or unwinds.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the caller's own contract to `System`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarding the caller's own contract to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the caller's own contract to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn assert_no_overflow(stage: &StageLatency, ctx: &str) {
    for (name, s) in [
        ("queue_wait", stage.queue_wait),
        ("staging", stage.staging),
        ("forward", stage.forward),
        ("respond", stage.respond),
    ] {
        assert_eq!(s.overflow, 0, "{ctx}: {name} histogram must not overflow");
    }
}

fn donn(n: usize, depth: usize, seed: u64) -> DonnModel {
    let grid = Grid::square(n, PixelPitch::from_um(36.0));
    DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_mm(30.0))
        .diffractive_layers(depth)
        .detector(Detector::grid_layout(n, n, 4, n / 8))
        .init_seed(seed)
        .build()
}

#[test]
fn steady_state_sharded_serve_path_allocates_nothing() {
    parallel::set_threads(1);

    // The injected panic in the final phase is expected; keep its payload
    // out of the test output while leaving real panics fully reported.
    {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            if msg.is_some_and(|m| m.contains("injected fault")) {
                return;
            }
            prev(info);
        }));
    }

    // A mixed two-model workload on two shards: different geometries,
    // different readout schemes, interleaved per request — ids 0 and 1
    // affinity-route to shards 0 and 1, and each dispatcher must juggle
    // its models' workspaces without allocating.
    let model_a = donn(32, 2, 5);
    let model_b = donn(48, 3, 6);
    let mut registry = ModelRegistry::new();
    registry.register_emulated("a", 1, model_a.clone(), ReadoutMode::Emulation);
    registry.register_emulated("b", 1, model_b.clone(), ReadoutMode::Deployed);
    // A quiet fault plan (all rates zero, triggers armed manually in the
    // final phase) keeps the injection seams live on the measured path.
    let plan = Arc::new(FaultPlan::new(9));
    let server = Server::start(
        registry,
        BatchPolicy {
            shards: 2,
            max_batch: 4,
            // Zero delay: with a single blocking client there is nothing
            // to coalesce with; don't sleep inside the measured window.
            max_delay: Duration::ZERO,
            faults: Some(Arc::clone(&plan)),
            ..BatchPolicy::default()
        },
    );
    let a = server.resolve("a", None).unwrap();
    let b = server.resolve("b", None).unwrap();

    let input_a = Field::from_fn(32, 32, |r, c| {
        Complex64::from_real(if (r / 4 + c / 4) % 2 == 0 { 1.0 } else { 0.0 })
    });
    let input_b = Field::from_fn(48, 48, |r, c| {
        Complex64::from_real(if (r + 2 * c) % 7 < 3 { 1.0 } else { 0.0 })
    });
    let reference_a = model_a.infer(&input_a);
    let reference_b = model_b.infer_deployed(&input_b);

    // One client per request stream (a client's reusable slot holds one
    // input shape); the workload stays interleaved across both models —
    // and therefore both shards — at the server.
    let mut client_a = server.client();
    let mut client_b = server.client();
    let mut logits = Vec::new();

    // Warm-up: sizes each client slot and fills every reusable buffer on
    // the path.
    for _ in 0..4 {
        client_a.infer(a, &input_a, &mut logits).unwrap();
        assert_eq!(logits, reference_a);
        client_b.infer(b, &input_b, &mut logits).unwrap();
        assert_eq!(logits, reference_b);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        client_a.infer(a, &input_a, &mut logits).unwrap();
        client_b.infer(b, &input_b, &mut logits).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state sharded serve path must not allocate (got {} allocations over 20 requests)",
        after - before
    );

    // Still bit-identical to direct inference after the measured window.
    client_a.infer(a, &input_a, &mut logits).unwrap();
    assert_eq!(logits, reference_a);
    client_b.infer(b, &input_b, &mut logits).unwrap();
    assert_eq!(logits, reference_b);

    // ---- Live version flip mid-run -----------------------------------
    // Registration itself may allocate (new snapshot, warmed workspaces);
    // after the flip and a short warm-up of the *new* version's client
    // slot, the steady state spanning old + new versions must again be
    // allocation-free.
    let model_a2 = donn(32, 3, 7); // same geometry, different stack
    let a2 = server.register_emulated("a", 2, model_a2.clone(), ReadoutMode::Emulation);
    assert_eq!(
        server.resolve("a", None),
        Some(a2),
        "flip must be visible immediately"
    );
    assert_eq!(server.epoch(), 1);
    let reference_a2 = model_a2.infer(&input_a);

    // Warm the new version's client slot — and touch *every* shard once
    // so each dispatcher adopts its mailed workspaces (a one-time
    // registration cost: one Vec push per worker) outside the window.
    let mut client_a2 = server.client();
    for _ in 0..4 {
        client_a2.infer(a2, &input_a, &mut logits).unwrap();
        assert_eq!(logits, reference_a2);
        client_b.infer(b, &input_b, &mut logits).unwrap();
        assert_eq!(logits, reference_b);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        client_a.infer(a, &input_a, &mut logits).unwrap();
        client_a2.infer(a2, &input_a, &mut logits).unwrap();
        client_b.infer(b, &input_b, &mut logits).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "post-flip steady state must not allocate (got {} allocations over 30 requests)",
        after - before
    );

    // Bit-identical on both sides of the flip.
    client_a.infer(a, &input_a, &mut logits).unwrap();
    assert_eq!(
        logits, reference_a,
        "v1 must stay bit-identical after the flip"
    );
    client_a2.infer(a2, &input_a, &mut logits).unwrap();
    assert_eq!(
        logits, reference_a2,
        "v2 must be bit-identical to direct inference"
    );
    client_b.infer(b, &input_b, &mut logits).unwrap();
    assert_eq!(logits, reference_b);

    // ---- Mid-run retire + reclaim ------------------------------------
    // Retire the superseded version and reclaim its memory. Reclaim
    // itself may *free* (drops are not allocations, and the counting
    // allocator only counts allocations), but the serving path for the
    // survivors must stay allocation-free afterwards — no reallocation,
    // no workspace rebuilding, no snapshot-chain growth per request —
    // and bit-identical on both surviving models.
    let resident_before = server.stats().resident_workspace_bytes;
    assert!(server.retire(a));
    assert!(server.reclaim(a));
    let resident_after = server.stats().resident_workspace_bytes;
    assert!(
        resident_after < resident_before,
        "reclaim must free the retired version's workspaces \
         ({resident_after} vs {resident_before} bytes)"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        client_a2.infer(a2, &input_a, &mut logits).unwrap();
        client_b.infer(b, &input_b, &mut logits).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "post-reclaim steady state must not allocate (got {} allocations over 20 requests)",
        after - before
    );

    // The retired id is refused; the survivors are still bit-identical.
    assert_eq!(
        client_a.infer(a, &input_a, &mut logits),
        Err(ServeError::UnknownModel),
        "reclaimed model must be refused at admission"
    );
    client_a2.infer(a2, &input_a, &mut logits).unwrap();
    assert_eq!(
        logits, reference_a2,
        "surviving v2 must stay bit-identical after the reclaim"
    );
    client_b.infer(b, &input_b, &mut logits).unwrap();
    assert_eq!(logits, reference_b);

    // ---- Injected panic + workspace rebuild --------------------------
    // One armed trigger panics the next forward: only that request fails
    // (typed), the dispatcher rebuilds its poisoned workspace through the
    // prewarm path (the rebuild allocates — that's the warm-up), and the
    // steady state after recovery must be allocation-free again.
    plan.trigger(FaultKind::PanicInForward);
    assert_eq!(
        client_a2.infer(a2, &input_a, &mut logits),
        Err(ServeError::WorkerPanic),
        "the panicking run must fail only its own request"
    );
    for _ in 0..4 {
        client_a2.infer(a2, &input_a, &mut logits).unwrap();
        assert_eq!(logits, reference_a2);
        client_b.infer(b, &input_b, &mut logits).unwrap();
        assert_eq!(logits, reference_b);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        client_a2.infer(a2, &input_a, &mut logits).unwrap();
        client_b.infer(b, &input_b, &mut logits).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "post-rebuild steady state must not allocate (got {} allocations over 20 requests)",
        after - before
    );

    client_a2.infer(a2, &input_a, &mut logits).unwrap();
    assert_eq!(
        logits, reference_a2,
        "rebuilt workspace must serve bit-identically"
    );
    client_b.infer(b, &input_b, &mut logits).unwrap();
    assert_eq!(logits, reference_b);

    let stats = server.stats();
    assert_eq!(stats.completed, 123);
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(
        stats.quarantined_models, 0,
        "a single panic must not quarantine"
    );
    // Every request in this workload targets an emulated variant, so the
    // dispatcher must have served all of them through batched forwards on
    // the per-worker BatchWorkspaces (B=1 batches for these sequential
    // blocking clients) — the batched serve path is exactly what the
    // allocation windows above measured.
    assert_eq!(
        stats.batched_samples, 123,
        "every emulated request must execute through the batched path"
    );
    assert!(stats.batch_executions > 0);
    assert_eq!(stats.reclaimed_models, 1);
    assert!(stats.reclaimed_bytes > 0);
    assert!(stats.latency.p50_ns > 0);
    assert_eq!(stats.per_shard.len(), 2);
    assert!(
        stats.per_shard.iter().all(|s| s.completed > 0),
        "both shards must have served their affinity traffic"
    );
    // The always-on stage breakdown must have recorded every completion
    // without saturating any histogram.
    assert_eq!(stats.stage_latency.forward.count, stats.completed);
    assert_no_overflow(&stats.stage_latency, "server");
    for (i, sh) in stats.per_shard.iter().enumerate() {
        assert_no_overflow(&sh.stage_latency, &format!("shard {i}"));
    }
    // Tracing was never enabled on this server.
    assert!(server.drain_trace().is_none());
    server.shutdown();

    // ---- Tracing enabled: recording must be allocation-free ----------
    // A second server with the trace ring on and *every* request sampled
    // (1000‰): span recording is a cursor bump plus atomic slot writes
    // into the preallocated ring, so the steady-state window must still
    // count zero allocations. Draining/exporting allocates by design and
    // stays outside the window.
    let model_c = donn(32, 2, 11);
    let mut registry = ModelRegistry::new();
    registry.register_emulated("c", 1, model_c.clone(), ReadoutMode::Emulation);
    let traced = Server::start(
        registry,
        BatchPolicy {
            shards: 2,
            max_batch: 4,
            max_delay: Duration::ZERO,
            trace: Some(Arc::new(TraceConfig {
                sample_per_mille: 1000,
                ..TraceConfig::default()
            })),
            ..BatchPolicy::default()
        },
    );
    let c = traced.resolve("c", None).unwrap();
    let reference_c = model_c.infer(&input_a);
    let mut client_c = traced.client();
    for _ in 0..4 {
        client_c.infer(c, &input_a, &mut logits).unwrap();
        assert_eq!(logits, reference_c);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        client_c.infer(c, &input_a, &mut logits).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "traced serve path must not allocate while recording \
         (got {} allocations over 10 fully-sampled requests)",
        after - before
    );
    assert_eq!(logits, reference_c);

    // The window really was recorded: every request left its four stage
    // spans in the ring, none were lost, and no histogram overflowed.
    let snapshot = traced.drain_trace().expect("tracing is enabled");
    assert_eq!(snapshot.dropped, 0, "ring must not have wrapped");
    assert_eq!(
        snapshot.events.len(),
        14 * 4,
        "every request must contribute its four stage spans"
    );
    let traced_stats = traced.stats();
    assert_eq!(traced_stats.completed, 14);
    assert_no_overflow(&traced_stats.stage_latency, "traced server");
    traced.shutdown();
    parallel::set_threads(0);
}
