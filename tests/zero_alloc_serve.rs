//! Counting-allocator proof of the serving-path contract: once the server
//! is warm, a mixed two-model workload served through the registry and the
//! dynamic micro-batcher performs **zero heap allocations** per request —
//! client slot reuse, bounded queue, per-worker workspaces, and atomic
//! metrics all included — and still returns logits bit-identical to direct
//! inference.
//!
//! Like `zero_alloc.rs`, this must stay a single-test binary: the counting
//! allocator is process-global. Sequential mode is forced
//! (`set_threads(1)`) so batch execution runs inline on the dispatcher
//! thread; the allocator counts allocations from *every* thread, so the
//! dispatcher's steady state is covered too.

use lightridge::{Detector, DonnBuilder, DonnModel};
use lr_optics::{Distance, Grid, PixelPitch, Wavelength};
use lr_serve::{BatchPolicy, ModelRegistry, ReadoutMode, Server, Transport};
use lr_tensor::{parallel, Complex64, Field};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn donn(n: usize, depth: usize, seed: u64) -> DonnModel {
    let grid = Grid::square(n, PixelPitch::from_um(36.0));
    DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_mm(30.0))
        .diffractive_layers(depth)
        .detector(Detector::grid_layout(n, n, 4, n / 8))
        .init_seed(seed)
        .build()
}

#[test]
fn steady_state_serve_path_allocates_nothing() {
    parallel::set_threads(1);

    // A mixed two-model workload: different geometries, different readout
    // schemes, interleaved per request — each worker context must juggle
    // both models' workspaces without allocating.
    let model_a = donn(32, 2, 5);
    let model_b = donn(48, 3, 6);
    let mut registry = ModelRegistry::new();
    registry.register_emulated("a", 1, model_a.clone(), ReadoutMode::Emulation);
    registry.register_emulated("b", 1, model_b.clone(), ReadoutMode::Deployed);
    let server = Server::start(
        registry,
        BatchPolicy {
            max_batch: 4,
            // Zero delay: with a single blocking client there is nothing
            // to coalesce with; don't sleep inside the measured window.
            max_delay: Duration::ZERO,
            ..BatchPolicy::default()
        },
    );
    let a = server.resolve("a", None).unwrap();
    let b = server.resolve("b", None).unwrap();

    let input_a = Field::from_fn(32, 32, |r, c| {
        Complex64::from_real(if (r / 4 + c / 4) % 2 == 0 { 1.0 } else { 0.0 })
    });
    let input_b = Field::from_fn(48, 48, |r, c| {
        Complex64::from_real(if (r + 2 * c) % 7 < 3 { 1.0 } else { 0.0 })
    });
    let reference_a = model_a.infer(&input_a);
    let reference_b = model_b.infer_deployed(&input_b);

    // One client per request stream (a client's reusable slot holds one
    // input shape); the workload stays interleaved across both models at
    // the server.
    let mut client_a = server.client();
    let mut client_b = server.client();
    let mut logits = Vec::new();

    // Warm-up: sizes each client slot and fills every reusable buffer on
    // the path.
    for _ in 0..4 {
        client_a.infer(a, &input_a, &mut logits).unwrap();
        assert_eq!(logits, reference_a);
        client_b.infer(b, &input_b, &mut logits).unwrap();
        assert_eq!(logits, reference_b);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        client_a.infer(a, &input_a, &mut logits).unwrap();
        client_b.infer(b, &input_b, &mut logits).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state serve path must not allocate (got {} allocations over 20 requests)",
        after - before
    );

    // Still bit-identical to direct inference after the measured window.
    client_a.infer(a, &input_a, &mut logits).unwrap();
    assert_eq!(logits, reference_a);
    client_b.infer(b, &input_b, &mut logits).unwrap();
    assert_eq!(logits, reference_b);

    let stats = server.stats();
    assert_eq!(stats.completed, 30);
    assert!(stats.latency.p50_ns > 0);
    server.shutdown();
    parallel::set_threads(0);
}
