//! Cross-crate integration: the full training pipeline — dataset generator
//! → DSL model construction → training → evaluation → deployment — on a
//! scale small enough for CI.

use lightridge::deploy::{deployment_report, HardwareEnvironment};
use lightridge::train::{self, TrainConfig};
use lightridge::{Detector, DonnBuilder, Layer};
use lr_datasets::digits::{self, DigitsConfig};
use lr_hardware::{CameraModel, FabricationVariation, SlmModel};
use lr_optics::{Distance, Grid, PixelPitch, Wavelength};

const SIZE: usize = 24;

fn dataset(n: usize, seed: u64) -> Vec<(Vec<f64>, usize)> {
    let config = DigitsConfig {
        size: SIZE,
        ..Default::default()
    };
    digits::generate(n, &config, seed)
}

fn detector() -> Detector {
    Detector::grid_layout(SIZE, SIZE, 10, 3)
}

#[test]
fn donn_learns_ten_class_digits_above_chance() {
    let grid = Grid::square(SIZE, PixelPitch::from_um(36.0));
    let mut model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_mm(12.0))
        .diffractive_layers(3)
        .detector(detector())
        .init_seed(1)
        .build();
    let train_set = dataset(400, 1);
    let test_set = dataset(100, 2);
    let config = TrainConfig {
        epochs: 8,
        batch_size: 25,
        learning_rate: 0.3,
        ..TrainConfig::default()
    };
    let history = train::train(&mut model, &train_set, &config);
    assert!(
        history.last().unwrap().loss < history.first().unwrap().loss,
        "loss should decrease"
    );
    let acc = train::evaluate(&model, &test_set);
    assert!(
        acc > 0.35,
        "10-class accuracy {acc} should beat chance by 3x+"
    );
}

#[test]
fn codesign_flow_closes_deployment_gap() {
    // Mini Figure 1: same coarse noisy bench for both flows; the codesign
    // model must deploy with a smaller accuracy gap than the raw model.
    let grid = Grid::square(SIZE, PixelPitch::from_um(36.0));
    let device = SlmModel::uniform_bits(2);
    let env = HardwareEnvironment {
        device: device.clone(),
        fabrication: FabricationVariation::new(0.15, 0.03, 5),
        crosstalk: lr_hardware::CrosstalkModel::typical_lc(),
        camera: CameraModel::cs165mu1(1.0),
        capture_seed: 5,
    };
    let train_set = dataset(300, 3);
    let test_set = dataset(80, 4);
    let config = TrainConfig {
        epochs: 8,
        batch_size: 25,
        learning_rate: 0.3,
        ..TrainConfig::default()
    };

    let mut raw = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_mm(12.0))
        .diffractive_layers(2)
        .detector(detector())
        .init_seed(2)
        .build();
    train::train(&mut raw, &train_set, &config);
    let raw_report = deployment_report(&raw, &env, &test_set);

    let mut codesign = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_mm(12.0))
        .codesign_layers(2, device, 1.0)
        .detector(detector())
        .init_seed(2)
        .build();
    // Warm-start from the raw phases, as in the paper's design flow.
    for (layer, raw_layer) in codesign.layers_mut().iter_mut().zip(raw.layers()) {
        if let Layer::Codesign(l) = layer {
            l.init_from_phases(raw_layer.params(), 4.0);
        }
    }
    train::train(&mut codesign, &train_set, &config);
    let codesign_report = deployment_report(&codesign, &env, &test_set);

    assert!(
        codesign_report.gap() < raw_report.gap() + 0.02,
        "codesign must not open a larger gap: raw {raw_report:?}, codesign {codesign_report:?}"
    );
    assert!(
        codesign_report.deployed_accuracy >= raw_report.deployed_accuracy - 0.02,
        "codesign deployment should not underperform raw deployment"
    );
}

#[test]
fn gamma_regularization_recovers_single_layer_training() {
    // Mini Figure 7: at depth 1, an appropriately chosen gamma should do at
    // least as well as the unregularized baseline.
    let grid = Grid::square(SIZE, PixelPitch::from_um(36.0));
    let train_set = dataset(300, 7);
    let test_set = dataset(80, 8);
    let config = TrainConfig {
        epochs: 6,
        batch_size: 25,
        learning_rate: 0.3,
        ..TrainConfig::default()
    };
    let mut accs = Vec::new();
    for gamma in [1.0, 0.5, 2.0] {
        let mut model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
            .distance(Distance::from_mm(12.0))
            .gamma(gamma)
            .diffractive_layers(1)
            .detector(detector())
            .init_seed(3)
            .build();
        train::train(&mut model, &train_set, &config);
        accs.push(train::evaluate(&model, &test_set));
    }
    // The paper's procedure *selects* gamma — gamma=1 is in the candidate
    // set, so the tuned model can never lose to the baseline, and every
    // candidate must still train to above-chance accuracy.
    let baseline = accs[0];
    let best = accs.iter().cloned().fold(0.0, f64::max);
    assert!(best >= baseline, "sweep includes the baseline");
    assert!(
        accs.iter().all(|&a| a > 0.15),
        "every gamma candidate should train above chance: {accs:?}"
    );
}

#[test]
fn deterministic_training_given_seeds() {
    let grid = Grid::square(SIZE, PixelPitch::from_um(36.0));
    let train_set = dataset(60, 9);
    let build_and_train = || {
        let mut model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
            .distance(Distance::from_mm(12.0))
            .diffractive_layers(2)
            .detector(detector())
            .init_seed(4)
            .build();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 20,
            learning_rate: 0.3,
            seed: 11,
            ..Default::default()
        };
        train::train(&mut model, &train_set, &config);
        model.phase_masks()
    };
    let a = build_and_train();
    let b = build_and_train();
    assert_eq!(a, b, "training must be reproducible for fixed seeds");
}
