//! Property-based tests (proptest) over the core physics and training
//! invariants, spanning crates: FFT algebra, propagation unitarity,
//! adjoint consistency, detector linearity, device quantization, and loss
//! gradients — all on randomized inputs.

use lightridge::{Detector, DetectorRegion};
use lr_hardware::{circular_distance, SlmModel};
use lr_optics::{Approximation, Distance, FreeSpace, Grid, PixelPitch, Wavelength};
use lr_tensor::{Complex64, Field};
use proptest::prelude::*;

fn complex_strategy() -> impl Strategy<Value = Complex64> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex64::new(re, im))
}

fn field_strategy(max_side: usize) -> impl Strategy<Value = Field> {
    (2usize..=max_side).prop_flat_map(|n| {
        proptest::collection::vec(complex_strategy(), n * n)
            .prop_map(move |data| Field::from_vec(n, n, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fft_roundtrip_is_identity(field in field_strategy(24)) {
        let (r, c) = field.shape();
        let fft = lr_tensor::Fft2::new(r, c);
        let mut g = field.clone();
        fft.forward(&mut g);
        fft.inverse(&mut g);
        prop_assert!(field.distance(&g) < 1e-7 * (1.0 + field.total_power().sqrt()));
    }

    #[test]
    fn fft_preserves_energy_parseval(field in field_strategy(20)) {
        let (r, c) = field.shape();
        let fft = lr_tensor::Fft2::new(r, c);
        let mut g = field.clone();
        fft.forward(&mut g);
        let lhs = g.total_power() / (r * c) as f64;
        let rhs = field.total_power();
        prop_assert!((lhs - rhs).abs() < 1e-7 * (1.0 + rhs));
    }

    #[test]
    fn propagation_conserves_energy_without_band_limit(
        field in field_strategy(16),
        z_mm in 0.1f64..50.0,
    ) {
        let (n, _) = field.shape();
        let grid = Grid::square(n, PixelPitch::from_um(36.0));
        let prop = FreeSpace::with_options(
            grid,
            Wavelength::from_nm(532.0),
            Distance::from_mm(z_mm),
            Approximation::RayleighSommerfeld,
            false,
        );
        let before = field.total_power();
        let mut u = field;
        prop.propagate(&mut u);
        // 36 µm pitch puts every sampled frequency in the propagating band,
        // so |H| = 1 everywhere and energy is conserved exactly.
        prop_assert!((u.total_power() - before).abs() < 1e-7 * (1.0 + before));
    }

    #[test]
    fn propagation_adjoint_identity(
        x in field_strategy(12),
        z_mm in 0.5f64..30.0,
        fresnel in proptest::bool::ANY,
    ) {
        let (n, _) = x.shape();
        let grid = Grid::square(n, PixelPitch::from_um(36.0));
        let approx = if fresnel { Approximation::Fresnel } else { Approximation::RayleighSommerfeld };
        let prop = FreeSpace::new(grid, Wavelength::from_nm(532.0), Distance::from_mm(z_mm), approx);
        let y = Field::from_fn(n, n, |r, c| Complex64::new((r + 1) as f64 * 0.1, c as f64 * 0.2));
        let mut ax = x.clone();
        prop.propagate(&mut ax);
        let mut ahy = y.clone();
        prop.adjoint(&mut ahy);
        let lhs = ax.inner(&y);
        let rhs = x.inner(&ahy);
        prop_assert!((lhs - rhs).norm() < 1e-6 * (1.0 + lhs.norm()));
    }

    #[test]
    fn detector_reading_is_additive_in_intensity(
        field in field_strategy(16),
        scale in 0.1f64..5.0,
    ) {
        let (n, _) = field.shape();
        if n < 8 { return Ok(()); }
        let det = Detector::new(n, n, vec![
            DetectorRegion::new(0, 0, 2, 2),
            DetectorRegion::new(n - 3, n - 3, 2, 2),
        ]);
        let base = det.read(&field);
        let scaled = det.read(&field.scaled(scale));
        for (a, b) in base.iter().zip(&scaled) {
            // |s·U|² = s²·|U|²
            prop_assert!((b - a * scale * scale).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn slm_quantization_is_idempotent(phase in 0.0f64..50.0, bits in 1u32..8) {
        let slm = SlmModel::uniform_bits(bits);
        let q1 = slm.quantize(phase);
        let q2 = slm.quantize(q1);
        prop_assert!(circular_distance(q1, q2) < 1e-12);
        // Quantization error bounded by half a level step.
        let step = std::f64::consts::TAU / slm.num_levels() as f64;
        prop_assert!(circular_distance(phase, q1) <= step / 2.0 + 1e-9);
    }

    #[test]
    fn softmax_mse_gradient_descends(logits in proptest::collection::vec(-5.0f64..5.0, 2..10)) {
        let n = logits.len();
        let target = lr_nn::loss::one_hot(0, n);
        let (loss, grad) = lr_nn::loss::softmax_mse(&logits, &target);
        // A small step against the gradient must not increase the loss.
        let stepped: Vec<f64> = logits.iter().zip(&grad).map(|(l, g)| l - 1e-4 * g).collect();
        let (loss2, _) = lr_nn::loss::softmax_mse(&stepped, &target);
        prop_assert!(loss2 <= loss + 1e-9);
    }

    #[test]
    fn pad_crop_preserves_content(field in field_strategy(12), extra in 1usize..8) {
        let (r, c) = field.shape();
        let padded = field.pad_centered(r + 2 * extra, c + 2 * extra);
        prop_assert!((padded.total_power() - field.total_power()).abs() < 1e-12);
        let back = padded.crop_centered(r, c);
        prop_assert_eq!(back, field);
    }

    #[test]
    fn gbdt_never_predicts_outside_target_hull(
        ys in proptest::collection::vec(0.0f64..1.0, 4..20),
        probe in -2.0f64..2.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64 / ys.len() as f64]).collect();
        let model = lr_dse::GradientBoostingRegressor::fit(
            &xs,
            &ys,
            lr_dse::BoostConfig { n_estimators: 30, learning_rate: 0.3, max_depth: 2 },
        );
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let pred = model.predict(&[probe]);
        // Squared-loss boosting with mean leaves stays within the hull, up
        // to shrinkage overshoot of one learning-rate step.
        let slack = 0.3 * (hi - lo) + 1e-9;
        prop_assert!(pred >= lo - slack && pred <= hi + slack, "pred {} outside [{}, {}]", pred, lo, hi);
    }
}
