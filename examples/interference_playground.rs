//! Pure-optics playground: the classic wave-optics sanity scenes, computed
//! with the same kernels that power DONN training — double-slit fringes,
//! Gaussian beam spreading, and a comparison of the three diffraction
//! approximations.
//!
//! Run with: `cargo run --release --example interference_playground`

use lightridge::viz;
use lr_optics::{
    aperture, Approximation, BeamProfile, Distance, FreeSpace, Grid, Laser, PixelPitch, Wavelength,
};

fn main() {
    let grid = Grid::square(128, PixelPitch::from_um(10.0));
    let lambda = Wavelength::from_nm(532.0);

    // --- Double slit ---
    let mut u = aperture::double_slit(&grid, 20e-6, 240e-6);
    let prop = FreeSpace::new(
        grid,
        lambda,
        Distance::from_mm(40.0),
        Approximation::RayleighSommerfeld,
    );
    prop.propagate(&mut u);
    println!("double-slit interference at 40 mm:");
    println!("{}", viz::view_intensity(&u, 48));

    // --- Gaussian beam spreading ---
    let laser = Laser::new(lambda, BeamProfile::Gaussian { waist: 80e-6 });
    for &z_mm in &[1.0, 40.0] {
        let mut beam = laser.emit(&grid);
        let prop = FreeSpace::new(
            grid,
            lambda,
            Distance::from_mm(z_mm),
            Approximation::RayleighSommerfeld,
        );
        prop.propagate(&mut beam);
        println!("Gaussian beam intensity after {z_mm} mm:");
        println!("{}", viz::view_intensity(&beam, 40));
    }

    // --- Approximation comparison on a circular aperture ---
    println!("circular-aperture diffraction, Rayleigh-Sommerfeld vs Fresnel at 40 mm:");
    let mut rs = aperture::circular(&grid, 150e-6);
    let mut fr = rs.clone();
    FreeSpace::new(
        grid,
        lambda,
        Distance::from_mm(40.0),
        Approximation::RayleighSommerfeld,
    )
    .propagate(&mut rs);
    FreeSpace::new(
        grid,
        lambda,
        Distance::from_mm(40.0),
        Approximation::Fresnel,
    )
    .propagate(&mut fr);
    println!(
        "{}",
        viz::side_by_side(
            &rs.intensity(),
            &fr.intensity(),
            128,
            128,
            30,
            ("RS", "Fresnel")
        )
    );
    let prop = FreeSpace::new(
        grid,
        lambda,
        Distance::from_mm(40.0),
        Approximation::Fresnel,
    );
    println!(
        "Fresnel validity ratio at this geometry: {:.1} (>> 1 means safe)",
        prop.fresnel_validity_ratio()
    );
}
