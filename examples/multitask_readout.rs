//! Multi-task DONN demo (extension after the paper's reference [31],
//! "Real-time multi-task diffractive deep neural networks"): one shared
//! diffractive stack answers two questions about each input image — the
//! digit identity (10 classes) and its parity (2 classes) — in a single
//! optical pass, by reading disjoint detector regions off the same plane.
//!
//! ```text
//! cargo run --release --example multitask_readout
//! ```

use lightridge::{MultiTaskDonn, MultiTaskImage};
use lr_datasets::digits::{self, DigitsConfig};
use lr_optics::{Approximation, Distance, Grid, PixelPitch, Wavelength};

fn main() {
    let size = 32;
    let grid = Grid::square(size, PixelPitch::from_um(36.0));

    // Task 0: digit identity (10 regions, upper band of the detector).
    // Task 1: parity (2 regions, lower band).
    let layouts = MultiTaskDonn::split_plane_layout(size, size, &[10, 2], 3);
    let mut donn = MultiTaskDonn::new(
        grid,
        Wavelength::from_nm(532.0),
        Distance::from_mm(15.0),
        Approximation::RayleighSommerfeld,
        3,
        layouts,
        19,
    );
    println!(
        "multi-task DONN: {} shared layers, tasks = [digit x{}, parity x{}]",
        donn.model().depth(),
        donn.task_classes(0),
        donn.task_classes(1)
    );

    // Digits dataset; the parity label derives from the digit.
    let config = DigitsConfig {
        size,
        ..Default::default()
    };
    let raw = digits::generate(1200, &config, 91);
    let data: Vec<MultiTaskImage> = raw
        .into_iter()
        .map(|(img, d)| (img, vec![d, d % 2]))
        .collect();
    let (train, test) = data.split_at(1000);

    println!("training on {} samples ...", train.len());
    let history = donn.train(train, 8, 25, 0.3, 23);
    for (epoch, loss) in history.iter().enumerate() {
        println!("  epoch {epoch:>2}  joint loss {loss:.4}");
    }

    let acc = donn.evaluate(test);
    println!("\nheld-out accuracy ({} samples):", test.len());
    println!("  digit identity: {:.3} (chance 0.100)", acc[0]);
    println!("  parity:         {:.3} (chance 0.500)", acc[1]);

    // Show a few joint predictions.
    println!("\nsample predictions (digit/parity):");
    for (img, labels) in test.iter().take(5) {
        let pred = donn.predict(img);
        println!(
            "  truth {}/{}  ->  predicted {}/{}",
            labels[0], labels[1], pred[0], pred[1]
        );
    }
}
