//! On-chip DONN integration (paper §5.5, Fig. 11): the CMOS detector fixes
//! the diffraction unit to its 3.45 µm pixel pitch; we search the layer
//! distance, train, and dump the nano-printing fabrication data (per-layer
//! thickness maps) plus the resulting monolithic stack dimensions.
//!
//! Run with: `cargo run --release --example onchip_integration`

use lightridge::deploy::to_system;
use lightridge::train::{self, TrainConfig};
use lightridge::{Detector, DonnBuilder};
use lr_datasets::digits::{self, DigitsConfig};
use lr_hardware::{PrintedMask, SlmModel};
use lr_optics::{Distance, Grid, PixelPitch, Wavelength};

fn main() {
    let size = 32;
    let pitch = PixelPitch::from_um(3.45); // CS165MU1 pixel
    let lambda = Wavelength::from_nm(532.0);
    let depth = 5;
    let grid = Grid::square(size, pitch);

    // Mini-DSE over the only free parameter: the layer distance.
    let aperture = size as f64 * pitch.meters();
    let candidates: Vec<f64> = (1..=4)
        .map(|i| 0.25 * i as f64 * aperture * pitch.meters() / lambda.meters())
        .collect();
    let config = DigitsConfig {
        size,
        ..Default::default()
    };
    let train_set = digits::generate(300, &config, 13);
    let test_set = digits::generate(100, &config, 14);

    let mut best = (candidates[0], 0.0);
    for &z in &candidates {
        let mut probe = DonnBuilder::new(grid, lambda)
            .distance(Distance::from_meters(z))
            .diffractive_layers(2)
            .detector(Detector::grid_layout(size, size, 10, size / 8))
            .build();
        train::train(
            &mut probe,
            &train_set,
            &TrainConfig {
                epochs: 3,
                batch_size: 25,
                learning_rate: 0.3,
                ..Default::default()
            },
        );
        let acc = train::evaluate(&probe, &test_set);
        println!("DSE probe: z = {:>7.1} um -> accuracy {acc:.3}", z * 1e6);
        if acc > best.1 {
            best = (z, acc);
        }
    }
    let z_star = best.0;

    // Full-depth training at the chosen distance.
    let mut model = DonnBuilder::new(grid, lambda)
        .distance(Distance::from_meters(z_star))
        .diffractive_layers(depth)
        .detector(Detector::grid_layout(size, size, 10, size / 8))
        .build();
    train::train(
        &mut model,
        &train_set,
        &TrainConfig {
            epochs: 8,
            batch_size: 25,
            learning_rate: 0.3,
            ..Default::default()
        },
    );
    println!(
        "\ntrained {depth}-layer on-chip model: accuracy {:.3}",
        train::evaluate(&model, &test_set)
    );

    // Fabrication: phase -> printed thickness for every layer.
    let export = to_system(&model, &SlmModel::ideal(256));
    let printer = PrintedMask::new(1.5, lambda.meters(), 20e-9, 0.0);
    println!("\nfabrication package ({} layers):", export.layers.len());
    for (i, layer) in export.layers.iter().enumerate() {
        let t = printer.thickness_map(&layer.phases);
        let max = t.iter().cloned().fold(0.0, f64::max);
        println!(
            "  layer {i}: {} pixels, max thickness {:.3} um",
            t.len(),
            max * 1e6
        );
    }
    let flat = aperture * 1e6;
    let height = (depth + 1) as f64 * z_star * 1e6;
    println!("\nmonolithic stack: {flat:.0} x {flat:.0} x {height:.0} um (cf. paper: 690 x 690 x 2660 um)");
}
