//! Quickstart: build, train, and inspect a small DONN in ~30 lines.
//!
//! Mirrors the paper's DSL flow (`lr.models` → `lr.train` → `lr.layers.view`):
//! a 3-layer visible-range DONN classifies procedurally generated digit
//! glyphs, then we print the trained phase mask and a detector pattern.
//!
//! Run with: `cargo run --release --example quickstart`

use lightridge::train::{self, TrainConfig};
use lightridge::{viz, Detector, DonnBuilder};
use lr_datasets::digits::{self, DigitsConfig};
use lr_optics::{Distance, Grid, PixelPitch, Wavelength};
use lr_tensor::Field;

fn main() {
    let size = 32;

    // 1. Describe the optical system: 532 nm laser, 36 µm diffraction
    //    units, 20 mm layer spacing, three trainable layers, a 10-class
    //    detector grid.
    let grid = Grid::square(size, PixelPitch::from_um(36.0));
    let mut model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_mm(20.0))
        .diffractive_layers(3)
        .detector(Detector::grid_layout(size, size, 10, size / 8))
        .build();
    println!(
        "built a {}-layer DONN with {} trainable phase parameters",
        model.depth(),
        model.num_params()
    );

    // 2. Generate data and train.
    let config = DigitsConfig {
        size,
        ..Default::default()
    };
    let data = lr_datasets::split(digits::generate(700, &config, 7), 6.0 / 7.0);
    let tc = TrainConfig {
        epochs: 10,
        batch_size: 25,
        learning_rate: 0.3,
        verbose: true,
        ..TrainConfig::default()
    };
    train::train(&mut model, &data.train, &tc);

    // 3. Evaluate.
    let accuracy = train::evaluate(&model, &data.test);
    println!("\ntest accuracy: {accuracy:.3}");

    // 4. Look inside: the first layer's trained phase mask and the
    //    detector pattern for one test digit.
    println!("\nlayer 0 phase mask:");
    println!(
        "{}",
        viz::view_phase(&model.phase_masks()[0], size, size, 32)
    );

    let (img, label) = &data.test[0];
    let input = Field::from_amplitudes(size, size, img);
    let pattern = model.detector_pattern(&input);
    println!("detector pattern for a test digit (true class {label}):");
    println!("{}", viz::ascii_heatmap(&pattern, size, size, 32));
    println!("{}", viz::view_logits(&model.infer(&input), None));
}
