//! Multi-channel RGB DONN (paper §5.6.1, Fig. 12): three beam-split
//! optical paths — one per color channel — merging on a shared detector,
//! classifying procedurally generated scene archetypes where *color* is
//! the deciding evidence.
//!
//! Run with: `cargo run --release --example rgb_classifier`

use lightridge::{Detector, MultiChannelDonn};
use lr_datasets::scenes::{self, ScenesConfig, CLASS_NAMES};
use lr_optics::{Approximation, Distance, Grid, PixelPitch, Wavelength};

fn main() {
    let size = 32;
    let grid = Grid::square(size, PixelPitch::from_um(36.0));
    let mut model = MultiChannelDonn::new(
        grid,
        Wavelength::from_nm(532.0),
        Distance::from_mm(20.0),
        Approximation::RayleighSommerfeld,
        2,
        Detector::grid_layout(size, size, 6, size / 8),
        5,
    );
    println!(
        "{} channels x {} layers, {} parameters total",
        model.num_channels(),
        model.channels()[0].depth(),
        model.num_params()
    );

    let config = ScenesConfig {
        size,
        ..Default::default()
    };
    let data = scenes::generate(360, &config, 3);
    let (train, test) = data.split_at(300);

    let losses = model.train(train, 8, 24, 0.3, 1);
    println!(
        "training loss: {:.4} -> {:.4}",
        losses[0],
        losses.last().unwrap()
    );

    println!("\ntop-1 accuracy: {:.3}", model.evaluate_top_k(test, 1));
    println!("top-3 accuracy: {:.3}", model.evaluate_top_k(test, 3));

    // Show per-class predictions for a few samples.
    println!("\nsample predictions:");
    for (rgb, label) in test.iter().take(6) {
        let logits = model.infer(rgb);
        let pred = lr_nn::metrics::argmax(&logits);
        println!(
            "  true {:<10} -> predicted {:<10} {}",
            CLASS_NAMES[*label],
            CLASS_NAMES[pred],
            if pred == *label { "ok" } else { "MISS" }
        );
    }
}
