//! End-to-end pipeline driven entirely by the textual DSL (paper §3.3,
//! Table 2, Figure 3 step 5): a DONN system is described declaratively,
//! compiled, trained on the procedural digits dataset, evaluated, and the
//! canonical form of the spec is echoed back.
//!
//! ```text
//! cargo run --release --example dsl_pipeline
//! ```

use lr_datasets::digits::{self, DigitsConfig};
use lr_dsl::{compile, format_spec, parse_spec};

const SYSTEM: &str = "
# A compact visible-range classifier, described in the LightRidge DSL.
system digits_classifier {
    laser {
        wavelength = 532 nm;               # Thorlabs CPS532
        profile = uniform;
    }
    grid {
        size = 32;                          # 32x32 diffraction units
        pixel = 36 um;                      # SLM pixel pitch
    }
    propagation {
        distance = 15 mm;
        approx = rayleigh_sommerfeld;
    }
    layers {
        diffractive x 3;
    }
    detector {
        classes = 10;
        det_size = 4;
    }
    training {
        gamma = 1.2;                        # complex-valued regularization
        learning_rate = 0.3;
        epochs = 6;
        batch_size = 16;
        seed = 7;
    }
}
";

fn main() {
    let spec = match parse_spec(SYSTEM) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("DSL error: {e}");
            std::process::exit(1);
        }
    };
    println!("parsed system '{}':", spec.name);
    println!(
        "  {} modulating layers, {} classes, grid {}x{}",
        spec.num_modulating_layers(),
        spec.detector.classes,
        spec.grid.size,
        spec.grid.size
    );

    println!("\ncanonical form:\n{}", format_spec(&spec));

    let compiled = compile(&spec);
    let mut model = compiled.model;

    let config = DigitsConfig {
        size: spec.grid.size,
        ..Default::default()
    };
    let dataset = digits::generate(900, &config, 11);
    let split = lr_datasets::split(dataset, 0.8);
    println!(
        "training on {} samples ({} held out) ...",
        split.train.len(),
        split.test.len()
    );
    let stats = lightridge::train::train(&mut model, &split.train, &compiled.train_config);
    for s in &stats {
        println!(
            "  epoch {:>2}  loss {:.4}  train acc {:.3}",
            s.epoch, s.loss, s.train_accuracy
        );
    }

    let accuracy = lightridge::train::evaluate(&model, &split.test);
    println!("\ntest accuracy: {accuracy:.3} (chance = 0.100)");

    // The same deployment path the builder-API models use is available.
    let masks = model.phase_masks();
    println!(
        "trained {} phase masks of {} values each",
        masks.len(),
        masks[0].len()
    );
}
