//! All-optical image segmentation (paper §5.6.2, Fig. 13): a DONN with an
//! optical skip connection and train-time layer normalization segments
//! "buildings" out of procedurally generated urban scenes — no electronic
//! compute in the inference path beyond the camera threshold.
//!
//! Run with: `cargo run --release --example optical_segmentation`

use lightridge::{viz, SegmentationDonn, SegmentationOptions};
use lr_datasets::cityscape::{self, CityscapeConfig};
use lr_optics::{Approximation, Distance, Grid, PixelPitch, Wavelength};

fn main() {
    let size = 32;
    let grid = Grid::square(size, PixelPitch::from_um(36.0));
    let mut model = SegmentationDonn::new(
        grid,
        Wavelength::from_nm(532.0),
        Distance::from_mm(10.0),
        Approximation::RayleighSommerfeld,
        3,
        SegmentationOptions::proposed(),
        5,
    );
    println!(
        "segmentation DONN: depth {}, skip connection + layer norm, {} parameters",
        model.depth(),
        model.num_params()
    );

    let config = CityscapeConfig {
        size,
        ..Default::default()
    };
    let data = cityscape::generate(80, &config, 11);
    let (train, test) = data.split_at(60);

    let losses = model.train(train, 10, 12, 0.05, 3);
    println!(
        "training loss: {:.4} -> {:.4}",
        losses[0],
        losses.last().unwrap()
    );
    println!(
        "mean IoU on held-out scenes: {:.3}",
        model.evaluate_iou(test)
    );

    let (img, mask) = &test[0];
    let pred = model.predict_mask(img);
    println!("\ninput / ground truth:");
    println!(
        "{}",
        viz::side_by_side(img, mask, size, size, 26, ("input", "target"))
    );
    println!("all-optical prediction:");
    println!("{}", viz::ascii_heatmap(&pred, size, size, 26));
}
