//! The paper's §5.1 visible-range prototype, end to end on an emulated
//! bench: codesign training against the LC2012 SLM's measured-style
//! response curve, fabrication export, deployment with per-unit
//! fabrication errors and camera noise, and the Fig. 6 simulation-vs-
//! experiment pattern comparison.
//!
//! Run with: `cargo run --release --example prototype_532nm`

use lightridge::deploy::{to_system, HardwareEnvironment, PhysicalDonn};
use lightridge::train::{self, TrainConfig};
use lightridge::{viz, CodesignMode, Detector, DonnBuilder};
use lr_datasets::digits::{self, DigitsConfig};
use lr_hardware::SlmModel;
use lr_nn::metrics::pearson;
use lr_optics::{Distance, Grid, PixelPitch, Wavelength};
use lr_tensor::Field;

fn main() {
    let size = 32;
    let device = SlmModel::lc2012();
    println!(
        "target device: {} ({} levels, max quantization error {:.4} rad)",
        device.name(),
        device.num_levels(),
        device.max_quantization_error()
    );

    // DSE-informed prototype parameters (scaled down from 200x200/0.28m).
    let grid = Grid::square(size, PixelPitch::from_um(36.0));
    let mut model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_mm(20.0))
        .codesign_layers(3, device.clone(), 1.0)
        .detector(Detector::grid_layout(size, size, 10, size / 8))
        .build();

    let config = DigitsConfig {
        size,
        ..Default::default()
    };
    let data = lr_datasets::split(digits::generate(700, &config, 9), 6.0 / 7.0);
    let tc = TrainConfig {
        epochs: 10,
        batch_size: 25,
        learning_rate: 0.3,
        initial_temperature: 0.8,
        final_temperature: 0.2,
        verbose: true,
        ..TrainConfig::default()
    };
    train::train(&mut model, &data.train, &tc);
    println!(
        "emulation accuracy: {:.3}",
        train::evaluate(&model, &data.test)
    );

    // Fabrication export — what `lr.model.to_system` hands to the lab.
    let export = to_system(&model, &device);
    println!("\nfabrication export:\n{}", export.summary());

    // Deploy on the emulated bench and compare patterns (Fig. 6).
    let env = HardwareEnvironment::prototype(42);
    let physical = PhysicalDonn::deploy(&model, &env);
    println!("deployed accuracy:  {:.3}", physical.evaluate(&data.test));

    let (img, label) = &data.test[1];
    let input = Field::from_amplitudes(size, size, img);
    let sim = model
        .forward_trace(&input, CodesignMode::Soft, 0)
        .detector_field
        .intensity();
    let exp = physical.capture(&input, 1);
    println!(
        "\ndetector patterns for a test digit (class {label}), correlation r = {:.3}:",
        pearson(&sim, &exp)
    );
    println!(
        "{}",
        viz::side_by_side(&sim, &exp, size, size, 26, ("simulation", "experiment"))
    );
}
