//! Offline shim for the subset of `mio` this workspace uses.
//!
//! The real crate wraps each platform's readiness API; the build
//! environment cannot reach crates.io, so this shim speaks **Linux epoll
//! directly** through `extern "C"` declarations (std already links the C
//! library on `linux-gnu` targets — no `libc` crate needed). The surface
//! mirrors mio's: a [`Poll`] owning an epoll instance, a [`Registry`] to
//! (de)register any [`Source`] (anything with a raw fd — std's
//! non-blocking `TcpListener`/`TcpStream`/`UnixListener`/`UnixStream`
//! work as-is), [`Events`]/[`Event`] for readiness delivery, [`Token`]
//! for correlation, and an eventfd-backed [`Waker`] for cross-thread
//! wakeups. Swapping back to the real crate is a manifest-only change.
//!
//! One semantic difference, safe for this workspace's usage: sockets are
//! registered **level-triggered** (mio is edge-triggered), so a readiness
//! event repeats until the condition is consumed — callers that drain on
//! every event (as `lr-serve`'s connection layer does) observe identical
//! behavior, minus the lost-wakeup hazards. The [`Waker`] alone is
//! edge-triggered on its eventfd, exactly like mio's Linux backend, so
//! wakes never need draining and never spin.

#![warn(missing_docs)]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

// --- Raw epoll / eventfd bindings (std links libc on linux-gnu) ----------

#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// --- Public API -----------------------------------------------------------

/// Opaque readiness-event correlation id, chosen by the caller at
/// registration and echoed back on every [`Event`] for the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness conditions a registration listens for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Readable readiness (data, EOF, or a pending accept).
    pub const READABLE: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Writable readiness (send-buffer space available).
    pub const WRITABLE: Interest = Interest(EPOLLOUT);

    /// Combines two interests (`READABLE.add(WRITABLE)`).
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
}

/// Anything registrable with a [`Poll`]: any type exposing a raw fd.
/// Blanket-implemented, so std's non-blocking socket types are sources.
pub trait Source {
    /// The raw file descriptor epoll should watch.
    fn source_fd(&self) -> RawFd;
}

impl<T: AsRawFd> Source for T {
    fn source_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

/// Handle for (de)registering [`Source`]s with a [`Poll`]. Cloneable view
/// in real mio; here it borrows the poll's epoll fd.
#[derive(Debug)]
pub struct Registry {
    epfd: RawFd,
}

impl Registry {
    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: Token) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token.0 as u64,
        };
        // SAFETY: `epfd` is a live epoll fd owned by this registry and
        // `ev` is a valid, initialized epoll_event for the call's duration.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Starts watching `source` for `interests`, tagging its events with
    /// `token`. Level-triggered (see the crate docs).
    pub fn register(
        &self,
        source: &impl Source,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.source_fd(), interests.0, token)
    }

    /// Replaces an existing registration's interests and token.
    pub fn reregister(
        &self,
        source: &impl Source,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.source_fd(), interests.0, token)
    }

    /// Stops watching `source`.
    pub fn deregister(&self, source: &impl Source) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.source_fd(), 0, Token(0))
    }
}

/// One readiness event: which registration fired ([`Event::token`]) and
/// how ([`Event::is_readable`] / [`Event::is_writable`] / closure flags).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    events: u32,
    token: u64,
}

impl Event {
    /// The token the fired registration was made with.
    pub fn token(&self) -> Token {
        Token(self.token as usize)
    }

    /// Readable: data pending, a connection to accept, or EOF/hangup
    /// (which must be observed by reading).
    pub fn is_readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0
    }

    /// Writable: the send buffer has room (or the error is write-visible).
    pub fn is_writable(&self) -> bool {
        self.events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// The peer closed its write half (or the connection hung up).
    pub fn is_read_closed(&self) -> bool {
        self.events & (EPOLLRDHUP | EPOLLHUP) != 0
    }

    /// An error condition is pending on the source.
    pub fn is_error(&self) -> bool {
        self.events & EPOLLERR != 0
    }
}

/// Reusable buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterates the events delivered by the most recent poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        // `data` may be unaligned on x86_64 (packed struct); copying the
        // whole struct out first makes the field reads aligned.
        self.buf[..self.len].iter().copied().map(|e| Event {
            events: e.events,
            token: e.data,
        })
    }

    /// True when the most recent poll delivered no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events")
            .field("capacity", &self.buf.len())
            .field("len", &self.len)
            .finish()
    }
}

/// The readiness selector: owns one epoll instance.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a new epoll instance.
    pub fn new() -> io::Result<Poll> {
        // SAFETY: epoll_create1 takes no pointers; the returned fd is
        // checked by `cvt` before use.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll {
            registry: Registry { epfd },
        })
    }

    /// The registration handle for this poll.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready, `timeout`
    /// elapses (`events` left empty), or a wakeup is delivered — then
    /// fills `events`. `None` blocks indefinitely.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = match timeout {
            None => -1i32,
            // Round up so a nonzero timeout never busy-loops as 0 ms.
            Some(d) => i32::try_from(d.as_millis().max(u128::from(u32::from(!d.is_zero()))))
                .unwrap_or(i32::MAX),
        };
        loop {
            // SAFETY: the buffer pointer/len come from a live, exclusively
            // borrowed `Events` vec; the kernel writes at most `cap`
            // entries, and `set_len` below only exposes initialized ones.
            let n = unsafe {
                epoll_wait(
                    self.registry.epfd,
                    events.buf.as_mut_ptr(),
                    events.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                events.len = n as usize;
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: this registry owns `epfd` and nothing uses it after
        // drop; double-close is impossible because Poll is not Clone.
        unsafe {
            close(self.registry.epfd);
        }
    }
}

/// Cross-thread wakeup for a [`Poll`]: an eventfd registered
/// edge-triggered, exactly like mio's Linux backend. [`Waker::wake`] is
/// one `write(2)`; the poller needs no drain (each write re-arms the
/// edge, and the counter cannot practically overflow).
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates a waker delivering events tagged `token` to `registry`'s
    /// poll.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        // SAFETY: eventfd takes no pointers; the returned fd is checked
        // by `cvt` before use.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        let mut ev = EpollEvent {
            events: EPOLLIN | EPOLLET,
            data: token.0 as u64,
        };
        // SAFETY: both fds are live (created/validated just above) and
        // `ev` is a valid epoll_event for the call's duration.
        if let Err(e) = cvt(unsafe { epoll_ctl(registry.epfd, EPOLL_CTL_ADD, fd, &mut ev) }) {
            // SAFETY: `fd` was created above, registration failed, and it
            // escapes nowhere else — closing it here is the only close.
            unsafe {
                close(fd);
            }
            return Err(e);
        }
        Ok(Waker { fd })
    }

    /// Wakes the poll this waker is registered with. Safe to call from
    /// any thread; never blocks.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writes exactly the 8 bytes of the local `one`, which
        // outlives the call; `self.fd` is a live eventfd owned by us.
        let ret = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        if ret == 8 {
            Ok(())
        } else {
            let err = io::Error::last_os_error();
            // A full counter still leaves the poll woken.
            if err.kind() == io::ErrorKind::WouldBlock {
                Ok(())
            } else {
                Err(err)
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: the waker owns `self.fd` (an eventfd created in `new`)
        // and nothing uses it after drop.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poll_delivers_accept_read_and_waker_events() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);

        // Timeout path: nothing registered, nothing ready.
        poll.poll(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty());

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry()
            .register(&listener, Token(1), Interest::READABLE)
            .unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(1) && e.is_readable()));

        let (mut conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&conn, Token(2), Interest::READABLE)
            .unwrap();
        client.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(2) && e.is_readable()));
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Level-triggered write readiness on an idle socket.
        poll.registry()
            .reregister(&conn, Token(2), Interest::READABLE.add(Interest::WRITABLE))
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(2) && e.is_writable()));
        poll.registry().deregister(&conn).unwrap();

        // Cross-thread waker.
        let waker = std::sync::Arc::new(Waker::new(poll.registry(), Token(7)).unwrap());
        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || w.wake().unwrap());
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(7) && e.is_readable()));
        t.join().unwrap();

        // Edge-triggered waker: no re-delivery without a new wake.
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token() == Token(7)));
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == Token(7)));
    }
}
