//! Offline shim for the subset of `proptest` this workspace's property
//! tests use.
//!
//! The build environment cannot reach crates.io, so the real crate is
//! unavailable. This stand-in keeps the property-test sources compiling and
//! *running*: strategies generate deterministic pseudo-random values (seeded
//! per test name) and every `proptest!` test executes its body for the
//! configured number of cases. Failing cases panic with the generated-case
//! index; there is **no shrinking** — failures report the raw case.
//!
//! Supported surface: `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert!`, `prop_assert_eq!`, `Strategy::{prop_map, prop_flat_map}`,
//! `Just`, range strategies (ints and floats), tuple strategies, regex-lite
//! string strategies (`[...]`, `.`, literals, `{m,n}`), `collection::vec`,
//! and `bool::ANY`.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds a generator seeded from a test name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.gen_range(lo..=hi)
    }
}

/// Why a test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Marks the case rejected (treated like failure-free skip upstream;
    /// here it simply carries the message).
    pub fn reject<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of a single property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 48 keeps the offline suite fast
        // while still exercising the generators meaningfully.
        ProptestConfig { cases: 48 }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (type erasure).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % width;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies
// ---------------------------------------------------------------------------

/// One atom of a regex-lite pattern plus its repeat bounds.
#[derive(Debug, Clone)]
struct PatternAtom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed character class in pattern")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("valid class range"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '.' => {
                i += 1;
                (0x20u32..0x7f)
                    .map(|c| char::from_u32(c).expect("ascii"))
                    .collect()
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed repetition in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("numeric repetition bound"),
                    hi.trim().parse().expect("numeric repetition bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("numeric repetition bound");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom { choices, min, max });
    }
    atoms
}

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = rng.usize_inclusive(atom.min, atom.max);
            for _ in 0..count {
                out.push(atom.choices[rng.usize_inclusive(0, atom.choices.len() - 1)]);
            }
        }
        out
    }
}

/// Weighted-free union of same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from boxed options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_inclusive(0, self.options.len() - 1);
        self.options[idx].generate(rng)
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

/// A function-backed strategy (backs `prop_compose!`).
pub struct FnGen<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnGen<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<F> fmt::Debug for FnGen<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FnGen")
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Uniformly random `true`/`false`.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The conventional glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Selects uniformly among the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( ::std::boxed::Box::new($option) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>> ),+
        ])
    };
}

/// Defines a named composite strategy, mirroring `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)(
            $($arg:pat_param in $strat:expr),+ $(,)?
        ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnGen(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Declares property tests, mirroring `proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = <$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (move || {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            case,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let x = crate::Strategy::generate(&(1.5f64..2.5), &mut rng);
            assert!((1.5..2.5).contains(&x));
            let n = crate::Strategy::generate(&(3usize..7), &mut rng);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::TestRng::deterministic("strings");
        for _ in 0..200 {
            let s = crate::Strategy::generate("[a-z][a-z0-9_]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = crate::Strategy::generate(".{0,5}", &mut rng);
            assert!(t.len() <= 5);
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0usize..10, b in 0usize..10) -> (usize, usize) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn oneof_and_tuple_and_vec(
            choice in prop_oneof![Just(1usize), Just(2usize), 5usize..8],
            pair in (0.0f64..1.0, 0usize..4),
            items in prop::collection::vec(0u32..100, 2..6),
            flag in prop::bool::ANY,
            composed in arb_pair(),
        ) {
            prop_assert!(choice == 1 || choice == 2 || (5usize..8).contains(&choice));
            prop_assert!((0.0..1.0).contains(&pair.0) && pair.1 < 4);
            prop_assert!(items.len() >= 2 && items.len() < 6);
            prop_assert!(items.iter().all(|&x| x < 100));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(composed.0 < 10 && composed.1 < 10);
        }

        #[test]
        fn flat_map_respects_dependency(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0usize..10, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
