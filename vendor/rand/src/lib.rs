//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched. This vendored stand-in implements exactly the
//! surface the LightRidge-RS crates call — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`] — on top of a
//! xoshiro256++ generator. It is deterministic per seed, which is all the
//! reproduction's experiments require; it makes no cryptographic claims.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value trait, mirroring the parts of `rand::Rng` in use.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0,1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % width;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256++ generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(2..9);
            assert!((2..9).contains(&n));
            let m: u32 = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&m));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
