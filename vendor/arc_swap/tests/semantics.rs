//! Semantics tests for the vendored `arc-swap` shim, written against
//! the real crate's documented behavior so swapping the shim back out
//! for crates.io `arc-swap` keeps this suite green.

use arc_swap::ArcSwap;
use std::sync::Arc;

#[test]
fn load_returns_current_snapshot() {
    let cell = ArcSwap::from_pointee(41u64);
    assert_eq!(*cell.load_full(), 41);
    // load_full hands out the same allocation, not a copy.
    let a = cell.load_full();
    let b = cell.load_full();
    assert!(Arc::ptr_eq(&a, &b));
}

#[test]
fn store_detaches_existing_snapshots() {
    let cell = ArcSwap::from_pointee(String::from("epoch-0"));
    let pinned = cell.load_full();
    cell.store(Arc::new(String::from("epoch-1")));
    // The pin keeps the old allocation alive and unchanged; new loads
    // see the new snapshot.
    assert_eq!(*pinned, "epoch-0");
    assert_eq!(*cell.load_full(), "epoch-1");
}

#[test]
fn swap_returns_previous_snapshot() {
    let cell = ArcSwap::from_pointee(1u32);
    let prev = cell.swap(Arc::new(2));
    assert_eq!(*prev, 1);
    assert_eq!(*cell.load_full(), 2);
}

#[test]
fn compare_and_swap_succeeds_on_identical_pointer() {
    let cell = ArcSwap::from_pointee(1u32);
    let current = cell.load_full();
    let prev = cell.compare_and_swap(&current, Arc::new(2));
    // Success: the returned snapshot is the one passed as `current`.
    assert!(Arc::ptr_eq(&prev, &current));
    assert_eq!(*cell.load_full(), 2);
}

#[test]
fn compare_and_swap_fails_on_stale_pointer() {
    let cell = ArcSwap::from_pointee(1u32);
    let stale = cell.load_full();
    cell.store(Arc::new(2));
    let winner = cell.compare_and_swap(&stale, Arc::new(3));
    // Failure: the cell is untouched and the winner comes back so the
    // caller can retry against it.
    assert_eq!(*winner, 2);
    assert_eq!(*cell.load_full(), 2);
    let prev = cell.compare_and_swap(&winner, Arc::new(3));
    assert!(Arc::ptr_eq(&prev, &winner));
    assert_eq!(*cell.load_full(), 3);
}

#[test]
fn compare_and_swap_is_pointer_equality_not_value_equality() {
    let cell = ArcSwap::from_pointee(7u32);
    // Same value, different allocation: must NOT swap.
    let impostor = Arc::new(7u32);
    let prev = cell.compare_and_swap(&impostor, Arc::new(8));
    assert!(!Arc::ptr_eq(&prev, &impostor));
    assert_eq!(*cell.load_full(), 7);
}

#[test]
fn default_wraps_default_value() {
    let cell: ArcSwap<Vec<u8>> = ArcSwap::default();
    assert!(cell.load_full().is_empty());
}

/// Epoch-chain shape from the serve registry: concurrent flippers and
/// pinning readers; every reader must observe some complete epoch, and
/// dropping the cell last must not leak or double-free (exercised under
/// the Miri CI lane).
#[test]
fn concurrent_flip_and_pin() {
    let cell = Arc::new(ArcSwap::from_pointee((0usize, 0usize)));
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let cell = Arc::clone(&cell);
            scope.spawn(move || {
                for _ in 0..100 {
                    let snap = cell.load_full();
                    let (a, b) = *snap;
                    assert_eq!(a, b, "torn epoch snapshot");
                }
            });
        }
        for epoch in 1..50usize {
            cell.store(Arc::new((epoch, epoch)));
        }
    });
}
