//! Offline shim for the subset of `arc-swap` this workspace uses.
//!
//! The real crate provides a lock-free atomic `Arc<T>` cell; the build
//! environment cannot reach crates.io, so this shim emulates the same API
//! over an `std::sync::RwLock<Arc<T>>`. Readers take a short read lock and
//! clone the `Arc` (a refcount bump — **no heap allocation**, which is what
//! the lr-serve zero-allocation serving contract depends on); writers swap
//! the pointer under the write lock. Swapping back to the real crate is a
//! manifest-only change.

#![warn(missing_docs)]

// Swappable sync layer: under `RUSTFLAGS="--cfg loom"` the lock comes
// from the vendored model checker, so `crates/check` can explore the
// flip-vs-pin race exhaustively (`docs/CONCURRENCY.md`).
#[cfg(loom)]
use loom::sync::RwLock;
use std::sync::Arc;
#[cfg(not(loom))]
use std::sync::RwLock;

/// An atomically swappable `Arc<T>`: readers always observe a fully
/// consistent snapshot, writers replace the snapshot as one pointer flip.
#[derive(Debug)]
pub struct ArcSwap<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> ArcSwap<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            inner: RwLock::new(value),
        }
    }

    /// Creates a cell from a bare value (`Arc`-wraps it).
    pub fn from_pointee(value: T) -> Self {
        Self::new(Arc::new(value))
    }

    /// Returns a clone of the current snapshot. Never allocates: the clone
    /// is an atomic refcount increment on the existing allocation.
    pub fn load_full(&self) -> Arc<T> {
        Arc::clone(
            &self
                .inner
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Replaces the snapshot; readers that already loaded the old `Arc`
    /// keep using it unaffected.
    pub fn store(&self, value: Arc<T>) {
        *self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = value;
    }

    /// Replaces the snapshot and returns the previous one.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        let mut guard = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::replace(&mut *guard, value)
    }

    /// Stores `new` only if the current snapshot is pointer-identical to
    /// `current`, returning the snapshot that was present before the
    /// call (like the real crate's `compare_and_swap`: on success the
    /// returned `Arc` is `current`; on failure it is the winner, and
    /// callers typically reload and retry).
    pub fn compare_and_swap(&self, current: &Arc<T>, new: Arc<T>) -> Arc<T> {
        let mut guard = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if Arc::ptr_eq(&guard, current) {
            std::mem::replace(&mut *guard, new)
        } else {
            Arc::clone(&guard)
        }
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        Self::from_pointee(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_swap_roundtrip() {
        let cell = ArcSwap::from_pointee(1u32);
        assert_eq!(*cell.load_full(), 1);
        let old = cell.load_full();
        cell.store(Arc::new(2));
        assert_eq!(*old, 1, "existing snapshots are unaffected by store");
        assert_eq!(*cell.load_full(), 2);
        let prev = cell.swap(Arc::new(3));
        assert_eq!(*prev, 2);
        assert_eq!(*cell.load_full(), 3);
    }

    #[test]
    fn concurrent_readers_see_consistent_snapshots() {
        let cell = std::sync::Arc::new(ArcSwap::from_pointee(vec![0usize; 8]));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = std::sync::Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let snap = cell.load_full();
                        let first = snap[0];
                        assert!(snap.iter().all(|&v| v == first), "torn snapshot");
                    }
                });
            }
            for gen in 1..50usize {
                cell.store(Arc::new(vec![gen; 8]));
            }
        });
    }
}
