//! Self-tests for the vendored model checker: the checker must *find*
//! planted interleaving bugs (no false negatives on the classic races),
//! must *not* flag correct code (no false positives), and must report
//! exhaustiveness honestly.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn fails(builder: loom::Builder, f: impl Fn() + Send + Sync + 'static) -> bool {
    catch_unwind(AssertUnwindSafe(move || builder.check(f))).is_err()
}

/// Two racing load-then-store increments lose an update under exactly
/// one preemption; the checker must find that schedule and surface the
/// model's own assertion panic.
#[test]
fn finds_lost_update() {
    let builder = loom::Builder::new();
    assert!(
        fails(builder, || {
            let a = Arc::new(AtomicUsize::new(0));
            let b = a.clone();
            let t = loom::thread::spawn(move || {
                let v = b.load(Ordering::SeqCst);
                b.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        }),
        "checker failed to find the textbook lost-update interleaving"
    );
}

/// The same racy increment is invisible at preemption bound 0: each
/// thread runs to completion before the other starts, so exploration
/// must complete after a single schedule without failing. This pins
/// the bound semantics (switches at thread exit are free, forced
/// switches are not).
#[test]
fn preemption_bound_zero_serializes() {
    let mut builder = loom::Builder::new();
    builder.preemption_bound = 0;
    let report = builder.check(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let b = a.clone();
        let t = loom::thread::spawn(move || {
            let v = b.load(Ordering::SeqCst);
            b.store(v + 1, Ordering::SeqCst);
        });
        let v = a.load(Ordering::SeqCst);
        a.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete);
    assert_eq!(
        report.iterations, 1,
        "bound 0 admits exactly the serial schedule"
    );
}

/// `fetch_add` is atomic, so the same shape with a proper RMW must
/// survive every interleaving — and the exploration must visit more
/// than one schedule to have actually checked anything.
#[test]
fn atomic_rmw_is_race_free() {
    let report = loom::Builder::new().check(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let b = a.clone();
        let t = loom::thread::spawn(move || {
            b.fetch_add(1, Ordering::SeqCst);
        });
        a.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete);
    assert!(report.iterations > 1, "only one schedule explored");
}

/// Mutex-protected read-modify-write: mutual exclusion must hold under
/// every schedule, including ones where the spawned thread wins the
/// lock first.
#[test]
fn mutex_provides_mutual_exclusion() {
    let report = loom::Builder::new().check(|| {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let t = loom::thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            *g += 1;
        });
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
    assert!(report.complete);
    assert!(report.iterations > 1);
}

/// Condvar handoff: the waiter parks until the flag is set, the
/// notifier wakes it, and no schedule deadlocks — including the one
/// where the notifier runs entirely before the waiter first checks.
#[test]
fn condvar_handoff_never_deadlocks() {
    let report = loom::Builder::new().check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = loom::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock().unwrap();
            *ready = true;
            cv.notify_one();
            drop(ready);
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
    assert!(report.complete);
    assert!(report.iterations > 1);
}

/// Classic ABBA lock-order inversion: some schedule must deadlock, and
/// the checker must report it as such rather than hanging.
#[test]
fn detects_abba_deadlock() {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        loom::Builder::new().check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = loom::thread::spawn(move || {
                let _gb = b2.lock().unwrap();
                let _ga = a2.lock().unwrap();
            });
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
            drop((_ga, _gb));
            t.join().unwrap();
        });
    }));
    let payload = caught.expect_err("ABBA deadlock not detected");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

/// When the DFS budget is too small for the state space, the checker
/// must degrade to random walks and say so — `complete` must be false,
/// never a silent lie.
#[test]
fn exhausted_budget_reports_incomplete() {
    let mut builder = loom::Builder::new();
    builder.max_iterations = 2;
    builder.random_walks = 8;
    let report = builder.check(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let b = a.clone();
        let t = loom::thread::spawn(move || {
            b.fetch_add(1, Ordering::SeqCst);
            b.fetch_add(1, Ordering::SeqCst);
        });
        a.fetch_add(1, Ordering::SeqCst);
        a.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 4);
    });
    assert!(!report.complete);
    assert_eq!(report.iterations, 2 + 8);
}

/// Three threads and an RwLock: writers are exclusive, readers
/// coexist, and the whole space within bound 2 stays explorable.
#[test]
fn rwlock_readers_and_writer() {
    use loom::sync::RwLock;
    let report = loom::Builder::new().check(|| {
        let l = Arc::new(RwLock::new(0u32));
        let (l1, l2) = (l.clone(), l.clone());
        let w = loom::thread::spawn(move || {
            *l1.write().unwrap() = 7;
        });
        let r = loom::thread::spawn(move || {
            let v = *l2.read().unwrap();
            assert!(v == 0 || v == 7, "torn read through RwLock");
        });
        w.join().unwrap();
        r.join().unwrap();
        assert_eq!(*l.read().unwrap(), 7);
    });
    assert!(report.complete);
    assert!(report.iterations > 1);
}

/// Outside a model every shim passes through to `std`: this ordinary
/// test exercises the direct-mode paths (real lock, real condvar, real
/// spawn) that the `--cfg loom` workspace build relies on.
#[test]
fn direct_mode_passthrough() {
    let m = Arc::new(Mutex::new(0u32));
    let cv = Arc::new(Condvar::new());
    let (m2, cv2) = (m.clone(), cv.clone());
    let t = loom::thread::spawn(move || {
        *m2.lock().unwrap() = 5;
        cv2.notify_all();
    });
    {
        let mut g = m.lock().unwrap();
        while *g != 5 {
            g = cv.wait(g).unwrap();
        }
    }
    t.join().unwrap();
    let a = AtomicUsize::new(1);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(a.load(Ordering::SeqCst), 3);
    loom::thread::yield_now();
    loom::hint::spin_loop();
}
