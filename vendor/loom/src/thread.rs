//! Virtual threads: `spawn`/`join` that the explorer schedules in model
//! mode and that defer to `std::thread` outside one.

use crate::rt;
use std::sync::{Arc, Mutex};

/// Handle to a spawned thread, virtual or real.
pub struct JoinHandle<T> {
    imp: Imp<T>,
}

enum Imp<T> {
    Model {
        tid: usize,
        /// Filled by the virtual thread just before it retires.
        slot: Arc<Mutex<Option<T>>>,
    },
    Real(std::thread::JoinHandle<T>),
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if rt::in_model() {
        let slot = Arc::new(Mutex::new(None));
        let out = slot.clone();
        let tid = rt::spawn_thread(Box::new(move || {
            let value = f();
            *out.lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
        }));
        JoinHandle {
            imp: Imp::Model { tid, slot },
        }
    } else {
        JoinHandle {
            imp: Imp::Real(std::thread::spawn(f)),
        }
    }
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.imp {
            Imp::Model { tid, slot } => {
                rt::join_thread(tid);
                match slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
                    Some(value) => Ok(value),
                    // Only reachable when the joined thread unwound; the
                    // iteration is aborting and this error is discarded.
                    None => Err(Box::new("loom: joined virtual thread panicked")),
                }
            }
            Imp::Real(handle) => handle.join(),
        }
    }
}

/// A pure scheduling point in model mode; `std::thread::yield_now`
/// otherwise.
pub fn yield_now() {
    if rt::in_model() {
        rt::schedule();
    } else {
        std::thread::yield_now();
    }
}
