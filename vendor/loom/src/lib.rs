//! Offline API-compatible subset of [`loom`], vendored for the
//! LightRidge-RS concurrency audit (`docs/CONCURRENCY.md`).
//!
//! The workspace's lock-free algorithms import their sync primitives
//! through per-crate `sync` facades that re-export `std::sync` normally
//! and this crate under `RUSTFLAGS="--cfg loom"`. A model test then
//! wraps the algorithm in [`model`] (or a tuned [`Builder`]) and the
//! runtime executes the closure once per schedule, depth-first over
//! every interleaving reachable within the preemption bound:
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! let report = loom::Builder::new().check(|| {
//!     let a = Arc::new(AtomicUsize::new(0));
//!     let b = a.clone();
//!     let t = loom::thread::spawn(move || b.fetch_add(1, Ordering::SeqCst));
//!     a.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(a.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.complete);
//! ```
//!
//! Differences from upstream loom worth knowing:
//!
//! * [`Builder::check`] returns a [`Report`] stating whether the
//!   bounded state space was explored **exhaustively** — model tests in
//!   `crates/check` assert `report.complete` so a silent fallback can
//!   never masquerade as a proof.
//! * The memory model is sequential consistency only (see the caveat
//!   in the `rt` module docs); `Ordering` arguments are accepted but
//!   not weakened.
//! * No `UnsafeCell`/`alloc` tracking and no `wait_timeout`; `Arc` is
//!   `std`'s (refcount races are out of scope — the checker explores
//!   schedules, not reference-count tearing, which Miri covers).
//!
//! [`loom`]: https://docs.rs/loom

pub(crate) mod rt;
pub mod sync;
pub mod thread;

pub mod hint {
    //! Spin hints that become scheduling points under the checker, so
    //! bounded spin loops in models actually let other threads run.

    pub fn spin_loop() {
        if crate::rt::in_model() {
            crate::rt::schedule();
        } else {
            std::hint::spin_loop();
        }
    }
}

use std::sync::Arc;

/// Exploration budget and strategy knobs.
///
/// `preemption_bound` is the maximum number of *forced* context
/// switches (away from a runnable thread) per schedule; blocking and
/// thread-exit switches are free. Bound 2 already exposes the vast
/// majority of real-world interleaving bugs (Musuvathi & Qadeer's
/// empirical result, reproduced by this repo's own checker self-tests)
/// while keeping the space polynomial.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum forced preemptions per schedule. Overridable with the
    /// `LOOM_MAX_PREEMPTIONS` environment variable, like upstream.
    pub preemption_bound: usize,
    /// DFS iteration budget before degrading to random walks.
    /// Overridable with `LOOM_MAX_ITERATIONS`.
    pub max_iterations: u64,
    /// Number of seeded random-walk schedules run after the DFS budget
    /// is exhausted.
    pub random_walks: u64,
    /// Seed for the random-walk fallback; fixed so failures replay.
    pub seed: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl Builder {
    pub fn new() -> Builder {
        Builder {
            preemption_bound: env_u64("LOOM_MAX_PREEMPTIONS")
                .map(|v| v as usize)
                .unwrap_or(2),
            max_iterations: env_u64("LOOM_MAX_ITERATIONS").unwrap_or(200_000),
            random_walks: env_u64("LOOM_RANDOM_WALKS").unwrap_or(2_000),
            seed: 0x4c52_9d0c_5eed_0001, // "LR" | fixed so runs replay
        }
    }

    /// Explore `f` under every schedule within the budget. Panics with
    /// the model's own panic payload on the first failing interleaving
    /// (assertion failure, deadlock, or thread-cap overflow); the
    /// decision path that failed is replayed deterministically, so a
    /// failure seen once is a failure every run.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        rt::explore(self, Arc::new(f))
    }
}

/// What an exploration did. `complete` means the *entire* state space
/// within the preemption bound was enumerated — the exhaustiveness
/// claim model tests assert. `!complete` means the DFS budget ran out
/// and coverage continued as seeded random walks.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Total schedules executed (DFS + random walks).
    pub iterations: u64,
    /// True iff the bounded state space was exhausted.
    pub complete: bool,
}

/// Check `f` with default settings, panicking on any failing
/// interleaving — the upstream-loom entry point.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f);
}
