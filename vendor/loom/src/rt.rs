//! The scheduler at the heart of the model checker.
//!
//! One *model iteration* executes the user's closure under a fully
//! serialized schedule: every virtual thread runs on its own OS thread,
//! but exactly one holds the *token* at any instant, and the token only
//! changes hands at explicit scheduling points (every operation on a
//! [`crate::sync`] primitive). Each point where more than one thread
//! could run next is a *choice*; the sequence of choices taken is the
//! iteration's *decision path*.
//!
//! Exploration is depth-first over decision paths with **bounded
//! preemption** (Musuvathi & Qadeer, PLDI 2007): switching away from a
//! thread that could have continued costs one preemption, and paths
//! using more than [`crate::Builder::preemption_bound`] preemptions are
//! pruned at choice construction. Context switches at blocking or
//! thread exit are free, so every schedule a cooperative scheduler
//! could produce is always explored; the bound only limits *forced*
//! interleaving depth. When the DFS frontier exceeds the iteration
//! budget, exploration degrades to seeded random walks over the same
//! choice structure and the final [`crate::Report`] says so
//! (`complete == false`).
//!
//! ## Memory model caveat
//!
//! Execution is serialized, so every exploration observes
//! **sequentially consistent** outcomes only: `Ordering` arguments are
//! accepted and forwarded to the underlying `std` atomics but never
//! *weakened*. The checker therefore proves schedule-interleaving
//! properties (lost updates, ABA windows, publication races, deadlock),
//! not relaxed-memory reordering properties — that gap is covered by
//! the ThreadSanitizer CI lane (`docs/CONCURRENCY.md`).

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard cap on virtual threads per model, like upstream loom's
/// `MAX_THREADS`. Keeps the choice fan-out (and OS-thread churn on the
/// single-core CI container) bounded.
pub(crate) const MAX_THREADS: usize = 5;

/// Token value meaning "no virtual thread may run" (iteration over, or
/// abort in progress).
const NO_ACTIVE: usize = usize::MAX;

/// Sentinel panic payload used to unwind virtual threads parked in the
/// scheduler when an iteration aborts (a failure was recorded
/// elsewhere, so these unwinds carry no information). The controller
/// filters it out; only real payloads surface to the caller.
pub(crate) struct ScheduleAborted;

/// Resource id a thread can block on: a `sync` primitive's address, or
/// a join target. Virtual-thread ids are tiny and heap addresses are
/// never in the null page, so the two spaces cannot collide.
pub(crate) fn join_res(tid: usize) -> usize {
    tid + 1
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    /// Eligible to receive the token.
    Runnable,
    /// Parked on a resource id until some `unblock_*` call.
    Blocked(usize),
    /// Closure returned or unwound; never scheduled again.
    Finished,
}

/// One recorded scheduling decision: which threads were runnable
/// (current-first, so index 0 is the preemption-free continuation) and
/// which option this iteration took.
struct Choice {
    options: Vec<usize>,
    index: usize,
}

enum Failure {
    Panic(Box<dyn std::any::Any + Send>),
    Deadlock(String),
    TooManyThreads,
}

struct ExecState {
    /// Which virtual thread holds the token.
    active: usize,
    threads: Vec<Run>,
    /// Decision path: one entry per scheduling point with > 1 option.
    path: Vec<Choice>,
    /// Replay cursor into `path`.
    depth: usize,
    /// Preemptions spent so far this iteration.
    preemptions: usize,
    /// Set on first failure; every parked thread then unwinds.
    abort: bool,
    failure: Option<Failure>,
    /// OS join handles for spawned virtual threads (not thread 0).
    os_handles: Vec<std::thread::JoinHandle<()>>,
    /// Virtual threads not yet `Finished`.
    live: usize,
    /// `Some(seed)` switches choice selection from DFS replay to a
    /// splitmix64 random walk.
    rng: Option<u64>,
}

pub(crate) struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
    bound: usize,
}

#[derive(Clone)]
pub(crate) struct Ctx {
    exec: Arc<Exec>,
    tid: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the calling OS thread is a virtual thread inside a model.
/// Outside a model every shim passes straight through to `std`, so the
/// same binary can mix checked models and ordinary tests.
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

pub(crate) fn current_tid() -> Option<usize> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctx| ctx.tid))
}

/// Runnable successors of `me` at this point, current thread first so
/// DFS explores the preemption-free continuation before any switch.
/// When `me` could continue and the preemption budget is exhausted,
/// the only option is to keep running `me`.
fn runnable_options(st: &ExecState, me: usize, self_runnable: bool, bound: usize) -> Vec<usize> {
    let me_can_continue = self_runnable && st.threads[me] == Run::Runnable;
    let mut opts = Vec::new();
    if me_can_continue {
        opts.push(me);
    }
    if !me_can_continue || st.preemptions < bound {
        for (tid, r) in st.threads.iter().enumerate() {
            if tid != me && *r == Run::Runnable {
                opts.push(tid);
            }
        }
    }
    opts
}

/// Pick the next token holder: replay the recorded path, extend it with
/// a fresh choice, or draw from the random-walk PRNG. Records a
/// deadlock failure if live threads remain but none is runnable.
fn pick_next(ctx: &Ctx, st: &mut ExecState, self_runnable: bool) {
    let me = ctx.tid;
    let opts = runnable_options(st, me, self_runnable, ctx.exec.bound);
    if opts.is_empty() {
        if st.live > 0 {
            st.failure.get_or_insert_with(|| {
                let parked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(tid, r)| match r {
                        Run::Blocked(res) => Some(format!("thread {tid} blocked on {res:#x}")),
                        _ => None,
                    })
                    .collect();
                Failure::Deadlock(format!(
                    "{} virtual thread(s) cannot make progress: {}",
                    st.live,
                    parked.join(", ")
                ))
            });
            st.abort = true;
        }
        st.active = NO_ACTIVE;
        ctx.exec.cv.notify_all();
        return;
    }
    let next = if opts.len() == 1 {
        // Deterministic continuation: not a choice, not recorded.
        opts[0]
    } else if let Some(seed) = st.rng.as_mut() {
        // Random walk: one splitmix64 step per decision.
        *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        opts[(z % opts.len() as u64) as usize]
    } else if st.depth < st.path.len() {
        // Replay: the path prefix is identical to the iteration that
        // recorded this choice, so the option set must match — a
        // mismatch means the model is nondeterministic under identical
        // schedules, which the checker cannot explore soundly.
        let c = &st.path[st.depth];
        debug_assert_eq!(
            c.options, opts,
            "model is nondeterministic: replayed schedule produced a different runnable set"
        );
        let chosen = c.options[c.index];
        st.depth += 1;
        chosen
    } else {
        st.path.push(Choice {
            options: opts.clone(),
            index: 0,
        });
        st.depth += 1;
        opts[0]
    };
    if next != me && self_runnable && st.threads[me] == Run::Runnable {
        st.preemptions += 1;
    }
    st.active = next;
    ctx.exec.cv.notify_all();
}

/// Park until the token comes back to `ctx.tid` (or the iteration
/// aborts, in which case unwind with the sentinel).
fn wait_for_token(ctx: &Ctx, mut st: MutexGuard<'_, ExecState>) {
    loop {
        if st.abort {
            drop(st);
            panic::panic_any(ScheduleAborted);
        }
        if st.active == ctx.tid {
            return;
        }
        st = ctx
            .exec
            .cv
            .wait(st)
            .unwrap_or_else(|poison| poison.into_inner());
    }
}

/// A scheduling point: offer the token to every runnable thread. No-op
/// outside a model or while the calling thread is unwinding (so shim
/// guards can drop during a panic without re-entering the scheduler).
pub(crate) fn schedule() {
    let Some(ctx) = current() else { return };
    if std::thread::panicking() {
        return;
    }
    let mut st = ctx.exec.state.lock().unwrap_or_else(|p| p.into_inner());
    if st.abort {
        drop(st);
        panic::panic_any(ScheduleAborted);
    }
    pick_next(&ctx, &mut st, true);
    wait_for_token(&ctx, st);
}

/// Mark the current thread blocked on `res` *without* yielding. Used by
/// `Condvar::wait`, which must register as a waiter before releasing
/// its mutex or a notify landing in between would be lost.
pub(crate) fn prepare_block(res: usize) {
    let Some(ctx) = current() else { return };
    if std::thread::panicking() {
        return;
    }
    let mut st = ctx.exec.state.lock().unwrap_or_else(|p| p.into_inner());
    st.threads[ctx.tid] = Run::Blocked(res);
}

/// Yield after [`prepare_block`]: hand the token elsewhere and park
/// until some `unblock_*` makes this thread runnable and a later
/// scheduling decision picks it.
pub(crate) fn yield_blocked() {
    let Some(ctx) = current() else { return };
    if std::thread::panicking() {
        return;
    }
    let mut st = ctx.exec.state.lock().unwrap_or_else(|p| p.into_inner());
    if st.abort {
        drop(st);
        panic::panic_any(ScheduleAborted);
    }
    pick_next(&ctx, &mut st, false);
    wait_for_token(&ctx, st);
}

/// Block the current virtual thread on `res` until unblocked.
pub(crate) fn block_on(res: usize) {
    prepare_block(res);
    yield_blocked();
}

/// Make every thread blocked on `res` runnable again. Does not yield.
pub(crate) fn unblock_all(res: usize) {
    let Some(ctx) = current() else { return };
    if std::thread::panicking() {
        return;
    }
    let mut st = ctx.exec.state.lock().unwrap_or_else(|p| p.into_inner());
    for r in st.threads.iter_mut() {
        if *r == Run::Blocked(res) {
            *r = Run::Runnable;
        }
    }
}

/// Make the lowest-tid thread blocked on `res` runnable. Waking the
/// lowest id (rather than making the wake target itself a choice)
/// under-explores notify orderings; `docs/CONCURRENCY.md` lists this as
/// a checker limitation.
pub(crate) fn unblock_one(res: usize) {
    let Some(ctx) = current() else { return };
    if std::thread::panicking() {
        return;
    }
    let mut st = ctx.exec.state.lock().unwrap_or_else(|p| p.into_inner());
    for r in st.threads.iter_mut() {
        if *r == Run::Blocked(res) {
            *r = Run::Runnable;
            return;
        }
    }
}

/// Register a new virtual thread running `f` and hand exploration a
/// chance to switch to it. Returns the virtual thread id.
pub(crate) fn spawn_thread(f: Box<dyn FnOnce() + Send>) -> usize {
    let ctx = current().expect("loom::thread::spawn outside a model");
    let tid;
    {
        let mut st = ctx.exec.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.threads.len() >= MAX_THREADS {
            st.failure.get_or_insert(Failure::TooManyThreads);
            st.abort = true;
            ctx.exec.cv.notify_all();
            drop(st);
            panic::panic_any(ScheduleAborted);
        }
        tid = st.threads.len();
        st.threads.push(Run::Runnable);
        st.live += 1;
        let exec = ctx.exec.clone();
        let handle = std::thread::Builder::new()
            .name(format!("loom-{tid}"))
            .spawn(move || run_thread(exec, tid, f))
            .expect("spawn model OS thread");
        st.os_handles.push(handle);
    }
    // The new thread is runnable: switching to it here is a choice.
    schedule();
    tid
}

/// Virtually join thread `tid`: park until it is `Finished`. Execution
/// is token-serial, so the Finished check cannot race the block.
pub(crate) fn join_thread(tid: usize) {
    let ctx = current().expect("loom JoinHandle::join outside a model");
    loop {
        {
            let st = ctx.exec.state.lock().unwrap_or_else(|p| p.into_inner());
            if st.abort {
                drop(st);
                panic::panic_any(ScheduleAborted);
            }
            if st.threads[tid] == Run::Finished {
                return;
            }
        }
        block_on(join_res(tid));
    }
}

/// Body of every virtual thread's OS thread: install the context, wait
/// to be scheduled for the first time, run the closure, then retire the
/// thread — recording any real panic as the iteration's failure.
fn run_thread(exec: Arc<Exec>, tid: usize, f: Box<dyn FnOnce() + Send>) {
    let ctx = Ctx {
        exec: exec.clone(),
        tid,
    };
    CURRENT.with(|c| *c.borrow_mut() = Some(ctx.clone()));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let st = exec.state.lock().unwrap_or_else(|p| p.into_inner());
        wait_for_token(&ctx, st);
        f();
    }));
    let mut st = exec.state.lock().unwrap_or_else(|p| p.into_inner());
    st.threads[tid] = Run::Finished;
    st.live -= 1;
    if let Err(payload) = result {
        if !payload.is::<ScheduleAborted>() {
            st.failure.get_or_insert(Failure::Panic(payload));
            st.abort = true;
        }
    }
    for r in st.threads.iter_mut() {
        if *r == Run::Blocked(join_res(tid)) {
            *r = Run::Runnable;
        }
    }
    if st.abort || st.live == 0 {
        st.active = NO_ACTIVE;
        exec.cv.notify_all();
    } else {
        pick_next(&ctx, &mut st, false);
    }
    drop(st);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Run one iteration of `f` under the schedule described by `path`
/// (DFS mode) or a random walk seeded with `rng`. Returns the possibly
/// extended path and the iteration's failure, if any.
fn run_iteration(
    bound: usize,
    path: Vec<Choice>,
    rng: Option<u64>,
    f: Arc<dyn Fn() + Send + Sync>,
) -> (Vec<Choice>, Option<Failure>) {
    let exec = Arc::new(Exec {
        state: Mutex::new(ExecState {
            active: 0,
            threads: vec![Run::Runnable],
            path,
            depth: 0,
            preemptions: 0,
            abort: false,
            failure: None,
            os_handles: Vec::new(),
            live: 1,
            rng,
        }),
        cv: Condvar::new(),
        bound,
    });
    let exec0 = exec.clone();
    let h0 = std::thread::Builder::new()
        .name("loom-0".into())
        .spawn(move || run_thread(exec0, 0, Box::new(move || f())))
        .expect("spawn model OS thread 0");
    h0.join().ok();
    // Thread 0 exiting does not end the iteration: children it spawned
    // (and grandchildren they spawn) keep scheduling among themselves.
    // Drain handles until none remain; joining a live thread blocks
    // until the virtual schedule retires it.
    loop {
        let handle = {
            let mut st = exec.state.lock().unwrap_or_else(|p| p.into_inner());
            st.os_handles.pop()
        };
        match handle {
            Some(h) => {
                h.join().ok();
            }
            None => break,
        }
    }
    let mut st = exec.state.lock().unwrap_or_else(|p| p.into_inner());
    (std::mem::take(&mut st.path), st.failure.take())
}

/// DFS backtrack: advance the deepest choice that still has an
/// unexplored option and truncate everything below it. Returns false
/// when the whole bounded space has been visited.
fn advance_path(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.index + 1 < last.options.len() {
            last.index += 1;
            return true;
        }
        path.pop();
    }
    false
}

fn raise(failure: Failure, iterations: u64, mode: &str) -> ! {
    match failure {
        Failure::Panic(payload) => {
            eprintln!("loom: model failed on iteration {iterations} ({mode}); re-raising the model's panic");
            panic::resume_unwind(payload)
        }
        Failure::Deadlock(detail) => {
            panic!("loom: deadlock on iteration {iterations} ({mode}): {detail}")
        }
        Failure::TooManyThreads => panic!(
            "loom: model spawned more than {MAX_THREADS} virtual threads (iteration {iterations})"
        ),
    }
}

/// Explore `f` per `builder`'s budget. Panics (with the model's own
/// panic payload where possible) on any failing interleaving.
pub(crate) fn explore(builder: &crate::Builder, f: Arc<dyn Fn() + Send + Sync>) -> crate::Report {
    assert!(
        !in_model(),
        "loom: nested models are not supported (model() called from inside a model)"
    );
    let mut path: Vec<Choice> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        let (next_path, failure) = run_iteration(builder.preemption_bound, path, None, f.clone());
        path = next_path;
        if let Some(failure) = failure {
            raise(failure, iterations, "exhaustive DFS");
        }
        if !advance_path(&mut path) {
            return crate::Report {
                iterations,
                complete: true,
            };
        }
        if iterations >= builder.max_iterations {
            break;
        }
    }
    // DFS budget exhausted: fall back to seeded random walks so big
    // state spaces still get probabilistic coverage. `complete: false`
    // tells the caller the exhaustiveness claim does NOT hold.
    let mut seed = builder.seed;
    for _ in 0..builder.random_walks {
        iterations += 1;
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let (_, failure) =
            run_iteration(builder.preemption_bound, Vec::new(), Some(seed), f.clone());
        if let Some(failure) = failure {
            raise(failure, iterations, "random walk");
        }
    }
    crate::Report {
        iterations,
        complete: false,
    }
}
