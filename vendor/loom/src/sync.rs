//! `std::sync`-shaped primitives that double as model-checker probes.
//!
//! Inside a [`crate::model`] every operation is a scheduling point for
//! the `rt` explorer; outside a model each type passes straight
//! through to its `std` counterpart, so crates compiled with
//! `--cfg loom` still behave normally in ordinary tests and binaries.
//!
//! Blocking is *virtual* in model mode: a `Mutex` under contention or a
//! `Condvar` waiter parks the virtual thread in the scheduler (the real
//! `std` lock is uncontended because execution is token-serial), which
//! is what lets the explorer enumerate who wins each race.

use crate::rt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

pub use std::sync::Arc;

pub mod atomic {
    //! Atomics that yield to the scheduler before every access.
    //!
    //! The `Ordering` argument is forwarded to the underlying `std`
    //! atomic but — because model execution is serialized — every
    //! exploration observes sequentially consistent outcomes. See the
    //! memory-model caveat in the `rt` module docs.

    use crate::rt;
    pub use std::sync::atomic::Ordering;

    /// An atomic memory fence; a scheduling point in model mode.
    pub fn fence(order: Ordering) {
        rt::schedule();
        std::sync::atomic::fence(order);
    }

    macro_rules! atomic_int {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Model-checked counterpart of the `std` atomic of the
            /// same name: every method first offers the scheduler a
            /// chance to interleave another thread.
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                pub fn new(v: $ty) -> Self {
                    Self(std::sync::atomic::$std::new(v))
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    rt::schedule();
                    self.0.load(order)
                }

                pub fn store(&self, val: $ty, order: Ordering) {
                    rt::schedule();
                    self.0.store(val, order)
                }

                pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                    rt::schedule();
                    self.0.swap(val, order)
                }

                pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                    rt::schedule();
                    self.0.fetch_add(val, order)
                }

                pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                    rt::schedule();
                    self.0.fetch_sub(val, order)
                }

                pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                    rt::schedule();
                    self.0.fetch_max(val, order)
                }

                pub fn fetch_min(&self, val: $ty, order: Ordering) -> $ty {
                    rt::schedule();
                    self.0.fetch_min(val, order)
                }

                pub fn fetch_and(&self, val: $ty, order: Ordering) -> $ty {
                    rt::schedule();
                    self.0.fetch_and(val, order)
                }

                pub fn fetch_or(&self, val: $ty, order: Ordering) -> $ty {
                    rt::schedule();
                    self.0.fetch_or(val, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::schedule();
                    self.0.compare_exchange(current, new, success, failure)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    // The shim never fails spuriously: a weak-CAS retry
                    // loop is explored exactly like the strong form.
                    rt::schedule();
                    self.0.compare_exchange(current, new, success, failure)
                }

                pub fn into_inner(self) -> $ty {
                    self.0.into_inner()
                }
            }
        };
    }

    atomic_int!(AtomicU32, AtomicU32, u32);
    atomic_int!(AtomicU64, AtomicU64, u64);
    atomic_int!(AtomicUsize, AtomicUsize, usize);
    atomic_int!(AtomicI64, AtomicI64, i64);
    atomic_int!(AtomicIsize, AtomicIsize, isize);

    /// Model-checked `AtomicBool` (no arithmetic fetch ops).
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        pub fn load(&self, order: Ordering) -> bool {
            rt::schedule();
            self.0.load(order)
        }

        pub fn store(&self, val: bool, order: Ordering) {
            rt::schedule();
            self.0.store(val, order)
        }

        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            rt::schedule();
            self.0.swap(val, order)
        }

        pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
            rt::schedule();
            self.0.fetch_and(val, order)
        }

        pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
            rt::schedule();
            self.0.fetch_or(val, order)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            rt::schedule();
            self.0.compare_exchange(current, new, success, failure)
        }

        pub fn into_inner(self) -> bool {
            self.0.into_inner()
        }
    }
}

/// Model-mode lock book-keeping: `usize::MAX` = free, otherwise the
/// owning virtual thread id. Execution is token-serial, so plain
/// store/load on a `std` atomic suffices — no real contention exists.
const FREE: usize = usize::MAX;

fn res_id<T: ?Sized>(obj: &T) -> usize {
    obj as *const T as *const () as usize
}

/// Mutual exclusion with virtual blocking in model mode.
pub struct Mutex<T: ?Sized> {
    owner: std::sync::atomic::AtomicUsize,
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Mutex {
            owner: std::sync::atomic::AtomicUsize::new(FREE),
            inner: std::sync::Mutex::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(tid) = rt::current_tid() {
            // Acquisition is a scheduling point; losing the race parks
            // the virtual thread until the holder's guard drops.
            rt::schedule();
            let res = res_id(self);
            loop {
                if self.owner.load(std::sync::atomic::Ordering::Relaxed) == FREE {
                    self.owner.store(tid, std::sync::atomic::Ordering::Relaxed);
                    break;
                }
                rt::block_on(res);
            }
            let inner = self
                .inner
                .try_lock()
                .expect("loom Mutex: token-serial execution cannot contend the real lock");
            Ok(MutexGuard {
                mutex: self,
                inner: Some(inner),
                model: true,
            })
        } else {
            match self.inner.lock() {
                Ok(inner) => Ok(MutexGuard {
                    mutex: self,
                    inner: Some(inner),
                    model: false,
                }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    mutex: self,
                    inner: Some(poison.into_inner()),
                    model: false,
                })),
            }
        }
    }

    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        if let Some(tid) = rt::current_tid() {
            rt::schedule();
            if self.owner.load(std::sync::atomic::Ordering::Relaxed) == FREE {
                self.owner.store(tid, std::sync::atomic::Ordering::Relaxed);
                let inner = self
                    .inner
                    .try_lock()
                    .expect("loom Mutex: token-serial execution cannot contend the real lock");
                Ok(MutexGuard {
                    mutex: self,
                    inner: Some(inner),
                    model: true,
                })
            } else {
                Err(TryLockError::WouldBlock)
            }
        } else {
            match self.inner.try_lock() {
                Ok(inner) => Ok(MutexGuard {
                    mutex: self,
                    inner: Some(inner),
                    model: false,
                }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(poison)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        mutex: self,
                        inner: Some(poison.into_inner()),
                        model: false,
                    })))
                }
            }
        }
    }
}

impl<T: ?Sized> MutexGuard<'_, T> {
    /// Release the lock without a scheduling point, for `Condvar::wait`
    /// which must atomically (w.r.t. the virtual schedule) move from
    /// "holding the mutex" to "parked on the condvar".
    fn release_raw(&mut self) {
        self.inner.take();
        if self.model {
            self.mutex
                .owner
                .store(FREE, std::sync::atomic::Ordering::Relaxed);
            rt::unblock_all(res_id(self.mutex));
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard released")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let was_held = self.inner.is_some();
        self.release_raw();
        if self.model && was_held {
            // Releasing a lock is a scheduling point: a woken waiter
            // may win the token before this thread runs on.
            rt::schedule();
        }
    }
}

/// Reader-writer lock with virtual blocking in model mode. Book-keeping
/// is a signed count: `-1` writer, `0` free, `n > 0` readers.
pub struct RwLock<T: ?Sized> {
    state: std::sync::atomic::AtomicIsize,
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: bool,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: bool,
}

impl<T> RwLock<T> {
    pub fn new(t: T) -> Self {
        RwLock {
            state: std::sync::atomic::AtomicIsize::new(0),
            inner: std::sync::RwLock::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if rt::in_model() {
            rt::schedule();
            let res = res_id(self);
            loop {
                let s = self.state.load(std::sync::atomic::Ordering::Relaxed);
                if s >= 0 {
                    self.state
                        .store(s + 1, std::sync::atomic::Ordering::Relaxed);
                    break;
                }
                rt::block_on(res);
            }
            let inner = self
                .inner
                .try_read()
                .expect("loom RwLock: token-serial execution cannot contend the real lock");
            Ok(RwLockReadGuard {
                lock: self,
                inner: Some(inner),
                model: true,
            })
        } else {
            match self.inner.read() {
                Ok(inner) => Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(inner),
                    model: false,
                }),
                Err(poison) => Err(PoisonError::new(RwLockReadGuard {
                    lock: self,
                    inner: Some(poison.into_inner()),
                    model: false,
                })),
            }
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if rt::in_model() {
            rt::schedule();
            let res = res_id(self);
            loop {
                if self.state.load(std::sync::atomic::Ordering::Relaxed) == 0 {
                    self.state.store(-1, std::sync::atomic::Ordering::Relaxed);
                    break;
                }
                rt::block_on(res);
            }
            let inner = self
                .inner
                .try_write()
                .expect("loom RwLock: token-serial execution cannot contend the real lock");
            Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
                model: true,
            })
        } else {
            match self.inner.write() {
                Ok(inner) => Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(inner),
                    model: false,
                }),
                Err(poison) => Err(PoisonError::new(RwLockWriteGuard {
                    lock: self,
                    inner: Some(poison.into_inner()),
                    model: false,
                })),
            }
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard released")
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard released")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard released")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if self.model {
            let prev = self
                .lock
                .state
                .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            if prev == 1 {
                rt::unblock_all(res_id(self.lock));
            }
            rt::schedule();
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if self.model {
            self.lock
                .state
                .store(0, std::sync::atomic::Ordering::Relaxed);
            rt::unblock_all(res_id(self.lock));
            rt::schedule();
        }
    }
}

/// Condition variable with virtual parking in model mode.
///
/// The shim deliberately omits `wait_timeout`: a virtual clock would
/// multiply the state space, and every checked algorithm's timeout path
/// is modeled as "the wait returned without the predicate" instead
/// (see `crates/check`).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if guard.model {
            let mutex = guard.mutex;
            // Register as a waiter *before* releasing the mutex so a
            // notify between the two cannot be lost, then forget the
            // guard so its Drop does not double-release.
            rt::prepare_block(res_id(self));
            guard.release_raw();
            std::mem::forget(guard);
            rt::yield_blocked();
            mutex.lock()
        } else {
            let inner = guard.inner.take().expect("guard released");
            let mutex = guard.mutex;
            match self.inner.wait(inner) {
                Ok(inner) => Ok(MutexGuard {
                    mutex,
                    inner: Some(inner),
                    model: false,
                }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    mutex,
                    inner: Some(poison.into_inner()),
                    model: false,
                })),
            }
        }
    }

    pub fn notify_one(&self) {
        if rt::in_model() {
            rt::unblock_one(res_id(self));
            rt::schedule();
        } else {
            self.inner.notify_one();
        }
    }

    pub fn notify_all(&self) {
        if rt::in_model() {
            rt::unblock_all(res_id(self));
            rt::schedule();
        } else {
            self.inner.notify_all();
        }
    }
}
