//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface
//! (non-poisoning `lock()` without `unwrap`, `const fn new`). The build
//! environment cannot reach crates.io, so the real crate is not available;
//! std mutexes are entirely adequate for the plan/transfer caches that lock
//! once per shape.

#![warn(missing_docs)]

use std::sync;

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex with `parking_lot`'s non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (as `parking_lot` has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        static M: Mutex<Option<u32>> = Mutex::new(None);
        *M.lock() = Some(5);
        assert_eq!(*M.lock(), Some(5));
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
