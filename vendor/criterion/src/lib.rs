//! Offline shim for the subset of `criterion` this workspace's benches use.
//!
//! The build environment has no crates.io access, so the real harness is
//! unavailable. This stand-in keeps the bench sources compiling unchanged
//! and still *measures*: every benchmark runs a warm-up pass plus
//! `sample_size` timed samples (bounded by `measurement_time`) and prints
//! `group/function/param: median <t>` lines. It intentionally implements no
//! statistics beyond the median — the `lr-bench` binary is the machine-
//! readable perf artifact (`BENCH_kernels.json`).

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-exports matching `criterion`'s prelude-by-convention imports.
pub use self::measurement::WallTime;

/// Opaque measurement marker types.
pub mod measurement {
    /// Wall-clock time measurement (the only one supported).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Prevents the optimizer from discarding a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How batched inputs are sized (accepted, ignored: every batch is size 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A `group/function/param` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    budget: Duration,
    medians_ns: Vec<f64>,
}

impl Bencher {
    fn run<F: FnMut() -> Duration>(&mut self, mut sample: F) {
        // Warm-up: one untimed call.
        let _ = sample();
        let started = Instant::now();
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            times.push(sample().as_nanos() as f64);
            if started.elapsed() > self.budget {
                break;
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = times[times.len() / 2];
        self.medians_ns.push(median);
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            let t = Instant::now();
            black_box(routine());
            t.elapsed()
        });
    }

    /// Times `routine` on fresh inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            t.elapsed()
        });
    }

    /// Like [`Bencher::iter_batched`] with by-reference inputs.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.run(|| {
            let mut input = setup();
            let t = Instant::now();
            black_box(routine(&mut input));
            t.elapsed()
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for compatibility; throughput reporting is not implemented.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn dispatch<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            budget: self.measurement_time,
            medians_ns: Vec::new(),
        };
        f(&mut bencher);
        for median in &bencher.medians_ns {
            println!("{}/{id}: median {}", self.name, format_ns(*median));
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.dispatch(id.to_string(), f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.dispatch(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Throughput hints (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a group-runner function from bench functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` from group-runner functions, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // warm-up + up to 3 samples
        assert!(calls >= 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("lightridge", 200).to_string(),
            "lightridge/200"
        );
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
