//! Workspace-root umbrella crate for LightRidge-RS.
//!
//! This crate exists to host the cross-crate integration tests (`tests/`)
//! and runnable examples (`examples/`) at the repository root; the library
//! surface itself lives in the `crates/` members. For convenience it
//! re-exports the crates an end user typically touches.

#![warn(missing_docs)]

pub use lightridge;
pub use lr_datasets;
pub use lr_dsl;
pub use lr_hardware;
pub use lr_nn;
pub use lr_optics;
pub use lr_tensor;
