//! Spanned error type shared by the lexer, parser, and compiler.

use std::fmt;

/// A source position (1-based line and column), attached to every token and
/// every error so mistakes in a `.donn` file are reported precisely.
///
/// # Examples
///
/// ```
/// use lr_dsl::Span;
/// let span = Span::new(3, 14);
/// assert_eq!(span.to_string(), "line 3, column 14");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl Span {
    /// Creates a span at the given 1-based line and column.
    pub fn new(line: usize, column: usize) -> Self {
        Span { line, column }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// What went wrong while processing a DSL program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// A character the lexer does not understand.
    UnexpectedCharacter,
    /// A malformed numeric literal.
    BadNumber,
    /// The parser met a token it did not expect.
    UnexpectedToken,
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A section, key, or enum value the language does not define.
    UnknownName,
    /// The same key or section was given twice.
    Duplicate,
    /// A required key or section is missing.
    Missing,
    /// A value has the wrong type or unit (e.g. a bare number where a
    /// length was required).
    TypeMismatch,
    /// A value is out of its physical or structural range.
    InvalidValue,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::UnexpectedCharacter => "unexpected character",
            ErrorKind::BadNumber => "malformed number",
            ErrorKind::UnexpectedToken => "unexpected token",
            ErrorKind::UnexpectedEof => "unexpected end of input",
            ErrorKind::UnknownName => "unknown name",
            ErrorKind::Duplicate => "duplicate definition",
            ErrorKind::Missing => "missing definition",
            ErrorKind::TypeMismatch => "type mismatch",
            ErrorKind::InvalidValue => "invalid value",
        };
        f.write_str(s)
    }
}

/// An error produced while lexing, parsing, validating, or compiling a DSL
/// program.
///
/// # Examples
///
/// ```
/// use lr_dsl::parse;
/// let err = parse("system bad {").unwrap_err();
/// assert!(err.to_string().contains("line 1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    kind: ErrorKind,
    span: Span,
    message: String,
}

impl DslError {
    /// Creates an error of `kind` at `span` with a human-readable `message`.
    pub fn new(kind: ErrorKind, span: Span, message: impl Into<String>) -> Self {
        DslError {
            kind,
            span,
            message: message.into(),
        }
    }

    /// The error category.
    pub fn kind(&self) -> &ErrorKind {
        &self.kind
    }

    /// Where in the source the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The detailed message (without position prefix).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.span, self.kind, self.message)
    }
}

impl std::error::Error for DslError {}

/// Convenience alias for DSL results.
pub type Result<T> = std::result::Result<T, DslError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_kind_and_message() {
        let e = DslError::new(ErrorKind::UnknownName, Span::new(2, 5), "no section 'lasr'");
        let s = e.to_string();
        assert!(s.contains("line 2, column 5"), "{s}");
        assert!(s.contains("unknown name"), "{s}");
        assert!(s.contains("lasr"), "{s}");
    }

    #[test]
    fn accessors_roundtrip() {
        let e = DslError::new(ErrorKind::Missing, Span::new(1, 1), "m");
        assert_eq!(*e.kind(), ErrorKind::Missing);
        assert_eq!(e.span(), Span::new(1, 1));
        assert_eq!(e.message(), "m");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        let e = DslError::new(ErrorKind::BadNumber, Span::new(1, 2), "x");
        takes_err(&e);
    }
}
