//! Lexer for the LightRidge DSL.
//!
//! The token stream is deliberately small: identifiers, numbers with an
//! optional length-unit suffix (`532 nm`, `36um`, `0.3 m`), punctuation, and
//! `#`-to-end-of-line comments.

use crate::error::{DslError, ErrorKind, Result, Span};

/// A length unit suffix accepted after a numeric literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Nanometres (×10⁻⁹ m).
    Nanometer,
    /// Micrometres (×10⁻⁶ m).
    Micrometer,
    /// Millimetres (×10⁻³ m).
    Millimeter,
    /// Metres.
    Meter,
}

impl Unit {
    /// Multiplier converting a literal in this unit to metres.
    pub fn to_meters(self) -> f64 {
        match self {
            Unit::Nanometer => 1e-9,
            Unit::Micrometer => 1e-6,
            Unit::Millimeter => 1e-3,
            Unit::Meter => 1.0,
        }
    }

    /// The canonical suffix spelling (`nm`, `um`, `mm`, `m`).
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Nanometer => "nm",
            Unit::Micrometer => "um",
            Unit::Millimeter => "mm",
            Unit::Meter => "m",
        }
    }

    fn from_suffix(s: &str) -> Option<Self> {
        match s {
            "nm" => Some(Unit::Nanometer),
            "um" => Some(Unit::Micrometer),
            "mm" => Some(Unit::Millimeter),
            "m" => Some(Unit::Meter),
            _ => None,
        }
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (`system`, `laser`, `rayleigh_sommerfeld`).
    Ident(String),
    /// A bare number (`3`, `0.5`, `1e-3`).
    Number(f64),
    /// A number with a length-unit suffix (`532 nm` ⇒ value in metres).
    Quantity(f64, Unit),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Equals,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// End of input (always the final token).
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Number(n) => format!("number {n}"),
            TokenKind::Quantity(n, u) => format!("quantity {n} {}", u.suffix()),
            TokenKind::LBrace => "'{'".to_string(),
            TokenKind::RBrace => "'}'".to_string(),
            TokenKind::LParen => "'('".to_string(),
            TokenKind::RParen => "')'".to_string(),
            TokenKind::Equals => "'='".to_string(),
            TokenKind::Semicolon => "';'".to_string(),
            TokenKind::Comma => "','".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.column)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_ident(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_number(&mut self, span: Span) -> Result<TokenKind> {
        let start = self.pos;
        // Optional leading sign is consumed by the caller only for '-'.
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut saw_digit = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.bump();
                }
                b'.' => {
                    self.bump();
                }
                b'e' | b'E' => {
                    // Exponent: only if followed by digit or sign+digit;
                    // otherwise it is the start of a unit/identifier suffix.
                    let next = self.src.get(self.pos + 1).copied();
                    let next2 = self.src.get(self.pos + 2).copied();
                    let exp_follows = matches!(next, Some(b'0'..=b'9'))
                        || (matches!(next, Some(b'+') | Some(b'-'))
                            && matches!(next2, Some(b'0'..=b'9')));
                    if !exp_follows {
                        break;
                    }
                    self.bump(); // e
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("number slice is ASCII");
        if !saw_digit {
            return Err(DslError::new(
                ErrorKind::BadNumber,
                span,
                format!("'{text}' has no digits"),
            ));
        }
        let value: f64 = text.parse().map_err(|_| {
            DslError::new(
                ErrorKind::BadNumber,
                span,
                format!("cannot parse '{text}' as a number"),
            )
        })?;

        // Optional unit suffix, possibly separated by spaces: `532nm`, `532 nm`.
        let save = (self.pos, self.line, self.column);
        self.skip_trivia();
        if matches!(self.peek(), Some(b) if b.is_ascii_alphabetic()) {
            let word_start = self.pos;
            let save_word = (self.line, self.column);
            let word = self.lex_ident();
            if let Some(unit) = Unit::from_suffix(&word) {
                return Ok(TokenKind::Quantity(value * unit.to_meters(), unit));
            }
            // Not a unit: rewind the identifier so it lexes as its own token.
            self.pos = word_start;
            self.line = save_word.0;
            self.column = save_word.1;
            return Ok(TokenKind::Number(value));
        }
        self.pos = save.0;
        self.line = save.1;
        self.column = save.2;
        Ok(TokenKind::Number(value))
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia();
        let span = self.span();
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span,
            });
        };
        let kind = match b {
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'=' => {
                self.bump();
                TokenKind::Equals
            }
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'0'..=b'9' | b'.' | b'-' => self.lex_number(span)?,
            b if b.is_ascii_alphabetic() || b == b'_' => TokenKind::Ident(self.lex_ident()),
            other => {
                return Err(DslError::new(
                    ErrorKind::UnexpectedCharacter,
                    span,
                    format!("'{}' is not part of the DSL", other as char),
                ));
            }
        };
        Ok(Token { kind, span })
    }
}

/// Tokenizes `src` into a vector ending with an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a spanned [`DslError`] on characters outside the language or
/// malformed numbers.
///
/// # Examples
///
/// ```
/// use lr_dsl::token::{tokenize, TokenKind, Unit};
/// let toks = tokenize("wavelength = 532 nm;")?;
/// assert_eq!(toks[0].kind, TokenKind::Ident("wavelength".into()));
/// assert_eq!(toks[2].kind, TokenKind::Quantity(532e-9, Unit::Nanometer));
/// # Ok::<(), lr_dsl::DslError>(())
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut lexer = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        let tok = lexer.next_token()?;
        let eof = tok.kind == TokenKind::Eof;
        out.push(tok);
        if eof {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation_and_idents() {
        assert_eq!(
            kinds("system s { }"),
            vec![
                TokenKind::Ident("system".into()),
                TokenKind::Ident("s".into()),
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers_plain_and_scientific() {
        assert_eq!(kinds("3"), vec![TokenKind::Number(3.0), TokenKind::Eof]);
        assert_eq!(kinds("0.5"), vec![TokenKind::Number(0.5), TokenKind::Eof]);
        assert_eq!(kinds("1e-3"), vec![TokenKind::Number(1e-3), TokenKind::Eof]);
        assert_eq!(
            kinds("-2.5e2"),
            vec![TokenKind::Number(-250.0), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_quantities_with_and_without_space() {
        assert_eq!(
            kinds("532nm"),
            vec![TokenKind::Quantity(532e-9, Unit::Nanometer), TokenKind::Eof]
        );
        assert_eq!(
            kinds("36 um"),
            vec![TokenKind::Quantity(36e-6, Unit::Micrometer), TokenKind::Eof]
        );
        assert_eq!(
            kinds("0.3 m"),
            vec![TokenKind::Quantity(0.3, Unit::Meter), TokenKind::Eof]
        );
    }

    #[test]
    fn number_followed_by_non_unit_ident_stays_split() {
        assert_eq!(
            kinds("5 layers"),
            vec![
                TokenKind::Number(5.0),
                TokenKind::Ident("layers".into()),
                TokenKind::Eof
            ]
        );
        // `x` is not a unit: `3 x` must not fuse.
        assert_eq!(
            kinds("3 x"),
            vec![
                TokenKind::Number(3.0),
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a # comment with = { symbols\nb"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
    }

    #[test]
    fn rejects_unexpected_characters() {
        let err = tokenize("a @ b").unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::UnexpectedCharacter);
        assert_eq!(err.span(), Span::new(1, 3));
    }

    #[test]
    fn rejects_bare_dot() {
        let err = tokenize(".").unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::BadNumber);
    }

    #[test]
    fn exponent_vs_unit_disambiguation() {
        // `1e3` is 1000; `1 e3` would be number then ident; `1m` is a metre.
        assert_eq!(
            kinds("1e3"),
            vec![TokenKind::Number(1000.0), TokenKind::Eof]
        );
        assert_eq!(
            kinds("1m"),
            vec![TokenKind::Quantity(1.0, Unit::Meter), TokenKind::Eof]
        );
        assert_eq!(
            kinds("2epochs"),
            vec![
                TokenKind::Number(2.0),
                TokenKind::Ident("epochs".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unit_multipliers() {
        assert_eq!(Unit::Nanometer.to_meters(), 1e-9);
        assert_eq!(Unit::Micrometer.to_meters(), 1e-6);
        assert_eq!(Unit::Millimeter.to_meters(), 1e-3);
        assert_eq!(Unit::Meter.to_meters(), 1.0);
        for u in [
            Unit::Nanometer,
            Unit::Micrometer,
            Unit::Millimeter,
            Unit::Meter,
        ] {
            assert_eq!(Unit::from_suffix(u.suffix()), Some(u));
        }
    }
}
