//! Compiler: validated [`SystemSpec`] → ready-to-train LightRidge objects.

use crate::spec::{ApproxSpec, DeviceSpec, LayerSpecEntry, ProfileSpec, SystemSpec};
use lightridge::train::TrainConfig;
use lightridge::{Detector, DonnBuilder, DonnModel};
use lr_hardware::SlmModel;
use lr_optics::{Approximation, BeamProfile, Distance, Grid, Laser, PixelPitch, Wavelength};

/// Everything a compiled DSL program yields: the emulation model, the laser
/// it assumes, and the training configuration from the `training` section.
#[derive(Debug, Clone)]
pub struct CompiledSystem {
    /// Ready-to-train DONN model.
    pub model: DonnModel,
    /// The configured laser source.
    pub laser: Laser,
    /// Training hyperparameters (`lr.train` settings).
    pub train_config: TrainConfig,
}

impl ApproxSpec {
    /// Maps to the optics-kernel enum.
    pub fn to_optics(self) -> Approximation {
        match self {
            ApproxSpec::RayleighSommerfeld => Approximation::RayleighSommerfeld,
            ApproxSpec::Fresnel => Approximation::Fresnel,
            ApproxSpec::Fraunhofer => Approximation::Fraunhofer,
        }
    }
}

impl DeviceSpec {
    /// Instantiates the hardware model this spec names.
    pub fn to_device(self) -> SlmModel {
        match self {
            DeviceSpec::Lc2012 => SlmModel::lc2012(),
            DeviceSpec::Ideal { levels } => SlmModel::ideal(levels),
            DeviceSpec::Bits { bits } => SlmModel::uniform_bits(bits),
        }
    }
}

impl ProfileSpec {
    /// Maps to the optics-kernel beam profile.
    pub fn to_profile(self) -> BeamProfile {
        match self {
            ProfileSpec::Uniform => BeamProfile::Uniform,
            ProfileSpec::Gaussian { waist } => BeamProfile::Gaussian { waist },
            ProfileSpec::Bessel {
                radial_wavenumber,
                envelope,
            } => BeamProfile::Bessel {
                radial_wavenumber,
                envelope,
            },
        }
    }
}

/// Compiles a validated spec into a model, laser, and training config.
///
/// Validation in [`SystemSpec::from_program`] guarantees this cannot panic
/// for any spec it produced.
///
/// # Examples
///
/// ```
/// let compiled = lr_dsl::compile_str(
///     "system demo {
///          laser { wavelength = 532 nm; }
///          grid { size = 32; pixel = 36 um; }
///          propagation { distance = 20 mm; }
///          layers { diffractive x 3; }
///          detector { classes = 10; det_size = 2; }
///      }",
/// )?;
/// assert_eq!(compiled.model.depth(), 3);
/// assert_eq!(compiled.model.num_classes(), 10);
/// # Ok::<(), lr_dsl::DslError>(())
/// ```
pub fn compile(spec: &SystemSpec) -> CompiledSystem {
    let grid = Grid::square(spec.grid.size, PixelPitch::from_meters(spec.grid.pixel));
    let wavelength = Wavelength::from_meters(spec.laser.wavelength);
    let mut builder = DonnBuilder::new(grid, wavelength)
        .distance(Distance::from_meters(spec.propagation.distance))
        .approximation(spec.propagation.approx.to_optics())
        .gamma(spec.training.gamma)
        .init_seed(spec.training.seed);
    for layer in &spec.layers {
        builder = match layer {
            LayerSpecEntry::Diffractive { count } => builder.diffractive_layers(*count),
            LayerSpecEntry::Codesign {
                count,
                device,
                temperature,
            } => builder.codesign_layers(*count, device.to_device(), *temperature),
            LayerSpecEntry::Nonlinearity { alpha, saturation } => {
                builder.nonlinearity(*alpha, *saturation)
            }
        };
    }
    let detector = Detector::grid_layout(
        spec.grid.size,
        spec.grid.size,
        spec.detector.classes,
        spec.detector.det_size,
    );
    let model = builder.detector(detector).build();
    let laser = Laser::new(wavelength, spec.laser.profile.to_profile());
    let train_config = TrainConfig {
        epochs: spec.training.epochs,
        batch_size: spec.training.batch_size,
        learning_rate: spec.training.learning_rate,
        initial_temperature: spec.training.initial_temperature,
        final_temperature: spec.training.final_temperature,
        seed: spec.training.seed,
        verbose: false,
    };
    CompiledSystem {
        model,
        laser,
        train_config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_spec;
    use lightridge::Layer;

    #[test]
    fn compiles_mixed_stack_in_order() {
        let spec = parse_spec(
            "system s {
                laser { wavelength = 532 nm; }
                grid { size = 32; pixel = 36 um; }
                propagation { distance = 20 mm; approx = fresnel; }
                layers {
                    diffractive x 2;
                    nonlinearity { alpha = 0.4; saturation = 1.5; }
                    codesign x 1 { device = ideal(levels = 8); }
                }
                detector { classes = 4; det_size = 3; }
                training { gamma = 1.3; epochs = 2; batch_size = 4; learning_rate = 0.2; }
            }",
        )
        .unwrap();
        let compiled = compile(&spec);
        let layers = compiled.model.layers();
        assert_eq!(layers.len(), 4);
        assert!(matches!(layers[0], Layer::Diffractive(_)));
        assert!(matches!(layers[1], Layer::Diffractive(_)));
        assert!(matches!(layers[2], Layer::Nonlinear(_)));
        assert!(matches!(layers[3], Layer::Codesign(_)));
        assert_eq!(compiled.model.num_classes(), 4);
        assert_eq!(compiled.train_config.epochs, 2);
        assert_eq!(compiled.train_config.learning_rate, 0.2);
        assert_eq!(compiled.laser.wavelength().nanometers(), 532.0);
    }

    #[test]
    fn depth_counts_only_modulating_layers() {
        let spec = parse_spec(
            "system s {
                laser { wavelength = 532 nm; }
                grid { size = 16; pixel = 36 um; }
                layers { diffractive x 3; nonlinearity; }
                detector { classes = 2; det_size = 2; }
            }",
        )
        .unwrap();
        let compiled = compile(&spec);
        // `depth()` counts every optical element; the DSL's modulating-layer
        // count excludes the parameter-free nonlinearity.
        assert_eq!(compiled.model.depth(), 4);
        assert_eq!(spec.num_modulating_layers(), 3);
    }

    #[test]
    fn codesign_device_levels_respected() {
        let spec = parse_spec(
            "system s {
                laser { wavelength = 532 nm; }
                grid { size = 16; pixel = 36 um; }
                layers { codesign { device = bits(n = 3); } }
                detector { classes = 2; det_size = 2; }
            }",
        )
        .unwrap();
        let compiled = compile(&spec);
        match &compiled.model.layers()[0] {
            Layer::Codesign(l) => assert_eq!(l.device().num_levels(), 8),
            other => panic!("expected codesign layer, got {other:?}"),
        }
    }

    #[test]
    fn compiled_model_trains_end_to_end() {
        let compiled = crate::compile_str(
            "system tiny {
                laser { wavelength = 532 nm; }
                grid { size = 16; pixel = 36 um; }
                propagation { distance = 5 mm; }
                layers { diffractive x 2; }
                detector { classes = 2; det_size = 3; }
                training { epochs = 3; batch_size = 8; learning_rate = 0.2; gamma = 1.0; }
            }",
        )
        .unwrap();
        let mut model = compiled.model;
        let mut data = Vec::new();
        for i in 0..16 {
            let label = i % 2;
            let mut img = vec![0.0; 16 * 16];
            for r in 0..8 {
                for c in 4..12 {
                    img[(r + label * 8) * 16 + c] = 1.0;
                }
            }
            data.push((img, label));
        }
        lightridge::train::train(&mut model, &data, &compiled.train_config);
        assert!(lightridge::train::evaluate(&model, &data) > 0.5);
    }
}
