//! Untyped syntax tree produced by the parser.
//!
//! The AST keeps source spans on every node so the semantic layer
//! ([`crate::spec`]) can report errors at the exact position of the
//! offending construct, and keeps the unit each quantity was written in so
//! the formatter can echo the author's spelling.

use crate::error::Span;
use crate::token::Unit;

/// A right-hand-side value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A bare number: `0.5`, `42`.
    Number(f64),
    /// A length: value converted to metres plus the unit it was written in.
    Quantity(f64, Unit),
    /// A bare name: `uniform`, `rayleigh_sommerfeld`, `lc2012`.
    Ident(String),
    /// A parameterized name: `gaussian(waist = 1.2 mm)`.
    Call(String, Vec<Argument>),
}

impl Value {
    /// A short description for error messages (`number`, `length`, ...).
    pub fn describe(&self) -> &'static str {
        match self {
            Value::Number(_) => "number",
            Value::Quantity(..) => "length",
            Value::Ident(_) => "name",
            Value::Call(..) => "parameterized name",
        }
    }
}

/// A named argument inside a call: `waist = 1.2 mm`.
#[derive(Debug, Clone, PartialEq)]
pub struct Argument {
    /// Argument name.
    pub name: String,
    /// Argument value.
    pub value: Value,
    /// Position of the argument name.
    pub span: Span,
}

/// A `key = value;` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Key name.
    pub key: String,
    /// Assigned value.
    pub value: Value,
    /// Position of the key.
    pub span: Span,
}

/// A layer statement inside the `layers` section:
/// `diffractive x 5;` or `codesign x 3 { device = lc2012; }`.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerEntry {
    /// Layer kind name (`diffractive`, `codesign`, `nonlinearity`).
    pub kind: String,
    /// Repetition count (`x N`, default 1).
    pub count: usize,
    /// Options from the attached block, if any.
    pub options: Vec<Assignment>,
    /// Position of the kind name.
    pub span: Span,
}

/// One `name { ... }` section of a system.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section name (`laser`, `grid`, `propagation`, `layers`, `detector`,
    /// `training`).
    pub name: String,
    /// `key = value;` statements in order.
    pub assignments: Vec<Assignment>,
    /// Layer statements in order (only meaningful in `layers`).
    pub layers: Vec<LayerEntry>,
    /// Position of the section name.
    pub span: Span,
}

/// A whole `system <name> { ... }` program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The system's name.
    pub name: String,
    /// Sections in source order.
    pub sections: Vec<Section>,
    /// Position of the `system` keyword.
    pub span: Span,
}

impl Program {
    /// The first section with the given name, if present.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }
}

impl Section {
    /// The first assignment with the given key, if present.
    pub fn assignment(&self, key: &str) -> Option<&Assignment> {
        self.assignments.iter().find(|a| a.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_helpers() {
        let section = Section {
            name: "grid".into(),
            assignments: vec![Assignment {
                key: "size".into(),
                value: Value::Number(200.0),
                span: Span::new(1, 1),
            }],
            layers: vec![],
            span: Span::new(1, 1),
        };
        let program = Program {
            name: "sys".into(),
            sections: vec![section],
            span: Span::new(1, 1),
        };
        assert!(program.section("grid").is_some());
        assert!(program.section("laser").is_none());
        assert!(program
            .section("grid")
            .unwrap()
            .assignment("size")
            .is_some());
        assert!(program
            .section("grid")
            .unwrap()
            .assignment("pixel")
            .is_none());
    }

    #[test]
    fn value_describe() {
        assert_eq!(Value::Number(1.0).describe(), "number");
        assert_eq!(Value::Quantity(1.0, Unit::Meter).describe(), "length");
        assert_eq!(Value::Ident("uniform".into()).describe(), "name");
        assert_eq!(
            Value::Call("gaussian".into(), vec![]).describe(),
            "parameterized name"
        );
    }
}
