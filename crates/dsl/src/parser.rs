//! Recursive-descent parser: token stream → [`Program`].

use crate::ast::{Argument, Assignment, LayerEntry, Program, Section, Value};
use crate::error::{DslError, ErrorKind, Result, Span};
use crate::token::{tokenize, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let tok = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn error_here(&self, expected: &str) -> DslError {
        let tok = self.peek();
        let kind = if tok.kind == TokenKind::Eof {
            ErrorKind::UnexpectedEof
        } else {
            ErrorKind::UnexpectedToken
        };
        DslError::new(
            kind,
            tok.span,
            format!("expected {expected}, found {}", tok.kind.describe()),
        )
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span)> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                let span = self.peek().span;
                self.bump();
                Ok((name, span))
            }
            _ => Err(self.error_here(what)),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Span> {
        match &self.peek().kind {
            TokenKind::Ident(name) if name == kw => Ok(self.bump().span),
            _ => Err(self.error_here(&format!("keyword '{kw}'"))),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Span> {
        if &self.peek().kind == kind {
            Ok(self.bump().span)
        } else {
            Err(self.error_here(what))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek().kind.clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Value::Number(n))
            }
            TokenKind::Quantity(meters, unit) => {
                self.bump();
                Ok(Value::Quantity(meters, unit))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek().kind == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek().kind != TokenKind::RParen {
                        loop {
                            let (arg_name, arg_span) = self.expect_ident("an argument name")?;
                            self.expect(&TokenKind::Equals, "'=' after argument name")?;
                            let value = self.parse_value()?;
                            args.push(Argument {
                                name: arg_name,
                                value,
                                span: arg_span,
                            });
                            if self.peek().kind == TokenKind::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "')' closing the argument list")?;
                    Ok(Value::Call(name, args))
                } else {
                    Ok(Value::Ident(name))
                }
            }
            _ => Err(self.error_here("a value (number, length, or name)")),
        }
    }

    fn parse_assignment(&mut self, key: String, span: Span) -> Result<Assignment> {
        self.expect(&TokenKind::Equals, "'='")?;
        let value = self.parse_value()?;
        self.expect(&TokenKind::Semicolon, "';' terminating the assignment")?;
        Ok(Assignment { key, value, span })
    }

    fn parse_layer_entry(&mut self, kind: String, span: Span) -> Result<LayerEntry> {
        // Optional repetition: `x N`.
        let mut count = 1usize;
        if let TokenKind::Ident(word) = &self.peek().kind {
            if word == "x" {
                self.bump();
                match self.peek().kind {
                    TokenKind::Number(n) => {
                        if n.fract() != 0.0 || !(1.0..=1e6).contains(&n) {
                            return Err(DslError::new(
                                ErrorKind::InvalidValue,
                                self.peek().span,
                                format!("layer count must be a positive integer, got {n}"),
                            ));
                        }
                        count = n as usize;
                        self.bump();
                    }
                    _ => return Err(self.error_here("a layer count after 'x'")),
                }
            }
        }
        // Optional option block.
        let mut options = Vec::new();
        if self.peek().kind == TokenKind::LBrace {
            self.bump();
            while self.peek().kind != TokenKind::RBrace {
                let (key, key_span) = self.expect_ident("an option name or '}'")?;
                options.push(self.parse_assignment(key, key_span)?);
            }
            self.expect(&TokenKind::RBrace, "'}'")?;
        }
        // Optional trailing semicolon.
        if self.peek().kind == TokenKind::Semicolon {
            self.bump();
        }
        Ok(LayerEntry {
            kind,
            count,
            options,
            span,
        })
    }

    fn parse_section(&mut self) -> Result<Section> {
        let (name, span) = self.expect_ident("a section name")?;
        self.expect(&TokenKind::LBrace, "'{' opening the section")?;
        let mut assignments = Vec::new();
        let mut layers = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            let (word, word_span) = self.expect_ident("a statement or '}'")?;
            if self.peek().kind == TokenKind::Equals {
                assignments.push(self.parse_assignment(word, word_span)?);
            } else {
                layers.push(self.parse_layer_entry(word, word_span)?);
            }
        }
        self.expect(&TokenKind::RBrace, "'}' closing the section")?;
        Ok(Section {
            name,
            assignments,
            layers,
            span,
        })
    }

    fn parse_program(&mut self) -> Result<Program> {
        let span = self.expect_keyword("system")?;
        let (name, _) = self.expect_ident("the system name")?;
        self.expect(&TokenKind::LBrace, "'{' opening the system")?;
        let mut sections = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            sections.push(self.parse_section()?);
        }
        self.expect(&TokenKind::RBrace, "'}' closing the system")?;
        self.expect(&TokenKind::Eof, "end of input after the system")?;
        Ok(Program {
            name,
            sections,
            span,
        })
    }
}

/// Parses DSL source into an untyped [`Program`].
///
/// # Errors
///
/// Returns a spanned [`DslError`] describing the first lexical or
/// syntactic problem.
///
/// # Examples
///
/// ```
/// let program = lr_dsl::parse(
///     "system demo { laser { wavelength = 532 nm; } }",
/// )?;
/// assert_eq!(program.name, "demo");
/// assert_eq!(program.sections.len(), 1);
/// # Ok::<(), lr_dsl::DslError>(())
/// ```
pub fn parse(src: &str) -> Result<Program> {
    let tokens = tokenize(src)?;
    Parser { tokens, pos: 0 }.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Unit;

    #[test]
    fn parses_minimal_system() {
        let p = parse("system s {}").unwrap();
        assert_eq!(p.name, "s");
        assert!(p.sections.is_empty());
    }

    #[test]
    fn parses_assignments_of_each_value_kind() {
        let p = parse(
            "system s { a { n = 3; q = 36 um; i = uniform; \
             c = gaussian(waist = 1.2 mm, power = 2); } }",
        )
        .unwrap();
        let section = p.section("a").unwrap();
        assert_eq!(section.assignment("n").unwrap().value, Value::Number(3.0));
        assert_eq!(
            section.assignment("q").unwrap().value,
            Value::Quantity(36e-6, Unit::Micrometer)
        );
        assert_eq!(
            section.assignment("i").unwrap().value,
            Value::Ident("uniform".into())
        );
        match &section.assignment("c").unwrap().value {
            Value::Call(name, args) => {
                assert_eq!(name, "gaussian");
                assert_eq!(args.len(), 2);
                assert_eq!(args[0].name, "waist");
                assert_eq!(args[0].value, Value::Quantity(1.2e-3, Unit::Millimeter));
                assert_eq!(args[1].value, Value::Number(2.0));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn parses_layer_statements() {
        let p = parse(
            "system s { layers { diffractive x 5; \
             codesign x 3 { device = lc2012; temperature = 1.0; } \
             nonlinearity { alpha = 0.5; saturation = 1.0; } } }",
        )
        .unwrap();
        let layers = &p.section("layers").unwrap().layers;
        assert_eq!(layers.len(), 3);
        assert_eq!(
            (layers[0].kind.as_str(), layers[0].count),
            ("diffractive", 5)
        );
        assert_eq!((layers[1].kind.as_str(), layers[1].count), ("codesign", 3));
        assert_eq!(layers[1].options.len(), 2);
        assert_eq!(
            (layers[2].kind.as_str(), layers[2].count),
            ("nonlinearity", 1)
        );
    }

    #[test]
    fn reports_missing_semicolon_with_position() {
        let err = parse("system s { a { n = 3 } }").unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::UnexpectedToken);
        assert!(err.message().contains("';'"), "{err}");
        assert_eq!(err.span().line, 1);
    }

    #[test]
    fn reports_unclosed_brace_as_eof() {
        let err = parse("system s { a {").unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn reports_missing_system_keyword() {
        let err = parse("model s {}").unwrap_err();
        assert!(err.message().contains("system"), "{err}");
    }

    #[test]
    fn rejects_fractional_layer_count() {
        let err = parse("system s { layers { diffractive x 2.5; } }").unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::InvalidValue);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse("system s {} extra").unwrap_err();
        assert!(err.message().contains("end of input"), "{err}");
    }

    #[test]
    fn empty_call_argument_list_is_allowed() {
        let p = parse("system s { a { v = thing(); } }").unwrap();
        match &p.section("a").unwrap().assignment("v").unwrap().value {
            Value::Call(name, args) => {
                assert_eq!(name, "thing");
                assert!(args.is_empty());
            }
            other => panic!("expected call, got {other:?}"),
        }
    }
}
