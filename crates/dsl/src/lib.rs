//! # lr-dsl
//!
//! The textual domain-specific language of the LightRidge reproduction —
//! the front-end the paper calls "versatile and flexible optical system
//! modeling and user-friendly domain-specific-language" (§1, §3.3,
//! Table 2). A complete DONN system — laser, plane geometry, propagation
//! physics, layer stack, detector layout, and training hyperparameters —
//! is described in a single declarative `system` block and compiled into a
//! ready-to-train [`lightridge::DonnModel`].
//!
//! ## The language
//!
//! ```text
//! # The paper's §5.1 visible-range prototype, verbatim.
//! system prototype_532nm {
//!     laser {
//!         wavelength = 532 nm;           # Thorlabs CPS532
//!         profile = uniform;             # or gaussian(waist = 1.2 mm)
//!     }
//!     grid {
//!         size = 200;                    # 200×200 diffraction units
//!         pixel = 36 um;                 # SLM pixel pitch
//!     }
//!     propagation {
//!         distance = 0.28 m;             # 11 inches on the optical table
//!         approx = rayleigh_sommerfeld;  # | fresnel | fraunhofer
//!     }
//!     layers {
//!         codesign x 3 { device = lc2012; temperature = 1.0; }
//!     }
//!     detector {
//!         classes = 10;
//!         det_size = 20;
//!     }
//!     training {
//!         gamma = 1.0;                   # complex-valued regularization
//!         learning_rate = 0.5;
//!         epochs = 100;
//!         batch_size = 500;
//!     }
//! }
//! ```
//!
//! Lengths carry units (`nm`, `um`, `mm`, `m`); everything else is a bare
//! number or a name. `propagation` and `training` are optional and default
//! to the paper's settings. Errors — lexical, syntactic, or semantic — are
//! reported with line/column spans.
//!
//! ## Pipeline
//!
//! [`parse`] → [`ast::Program`] → [`SystemSpec::from_program`] (validation)
//! → [`compile()`] → [`CompiledSystem`], or [`compile_str`] for the whole
//! chain:
//!
//! ```
//! let compiled = lr_dsl::compile_str(
//!     "system quick {
//!          laser { wavelength = 532 nm; }
//!          grid { size = 32; pixel = 36 um; }
//!          propagation { distance = 20 mm; }
//!          layers { diffractive x 3; }
//!          detector { classes = 10; det_size = 2; }
//!      }",
//! )?;
//! assert_eq!(compiled.model.depth(), 3);
//! # Ok::<(), lr_dsl::DslError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod format;
pub mod parser;
pub mod spec;
pub mod token;

pub use compile::{compile, CompiledSystem};
pub use error::{DslError, ErrorKind, Result, Span};
pub use format::format_spec;
pub use parser::parse;
pub use spec::{
    ApproxSpec, DetectorSpec, DeviceSpec, GridSpec, LaserSpec, LayerSpecEntry, ProfileSpec,
    PropagationSpec, SystemSpec, TrainingSpec,
};

/// Parses and validates DSL source into a typed [`SystemSpec`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error with its span.
///
/// # Examples
///
/// ```
/// let spec = lr_dsl::parse_spec(
///     "system s {
///          laser { wavelength = 532 nm; }
///          grid { size = 32; pixel = 36 um; }
///          layers { diffractive x 3; }
///          detector { classes = 10; det_size = 2; }
///      }",
/// )?;
/// assert_eq!(spec.num_modulating_layers(), 3);
/// # Ok::<(), lr_dsl::DslError>(())
/// ```
pub fn parse_spec(src: &str) -> Result<SystemSpec> {
    SystemSpec::from_program(&parse(src)?)
}

/// Parses, validates, and compiles DSL source in one call.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error with its span.
pub fn compile_str(src: &str) -> Result<CompiledSystem> {
    Ok(compile(&parse_spec(src)?))
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_str_chains_all_stages() {
        let err = super::compile_str(
            "system s {
                laser { wavelength = 532 nm; }
                grid { size = 0; pixel = 36 um; }
                layers { diffractive; }
                detector { classes = 2; det_size = 2; }
            }",
        )
        .unwrap_err();
        // Validation (not a panic) catches the bad size before compilation.
        assert_eq!(*err.kind(), super::ErrorKind::InvalidValue);
    }
}
