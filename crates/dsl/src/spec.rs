//! Typed, validated system specification.
//!
//! [`SystemSpec::from_program`] lowers the untyped AST into a fully-typed
//! spec, rejecting unknown sections/keys, duplicates, type mismatches, and
//! physically meaningless values — each with the span of the offending
//! construct. A valid spec always compiles (see [`crate::compile()`]).

use crate::ast::{Assignment, LayerEntry, Program, Section, Value};
use crate::error::{DslError, ErrorKind, Result, Span};

/// Transverse beam profile of the source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfileSpec {
    /// Uniform plane wave (the default: the image shapes the amplitude).
    Uniform,
    /// Gaussian beam with 1/e waist radius in metres.
    Gaussian {
        /// Waist radius (metres).
        waist: f64,
    },
    /// Bessel beam with radial wavenumber (rad/m) and Gaussian envelope
    /// radius (metres).
    Bessel {
        /// Radial wavenumber (rad/m).
        radial_wavenumber: f64,
        /// Envelope radius (metres).
        envelope: f64,
    },
}

/// Scalar-diffraction approximation choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxSpec {
    /// Rayleigh-Sommerfeld / angular spectrum (paper Eq. 1).
    RayleighSommerfeld,
    /// Fresnel near-field approximation (paper Eq. 3).
    Fresnel,
    /// Fraunhofer far-field approximation (paper Eq. 4).
    Fraunhofer,
}

impl ApproxSpec {
    /// Canonical DSL spelling.
    pub fn name(self) -> &'static str {
        match self {
            ApproxSpec::RayleighSommerfeld => "rayleigh_sommerfeld",
            ApproxSpec::Fresnel => "fresnel",
            ApproxSpec::Fraunhofer => "fraunhofer",
        }
    }
}

/// Phase-modulation device referenced by a `codesign` layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceSpec {
    /// The paper's HOLOEYE LC2012 SLM model (measured-style nonlinear
    /// response, 256 levels).
    Lc2012,
    /// An idealized device with `levels` uniform phase levels over [0, 2π).
    Ideal {
        /// Number of discrete levels.
        levels: usize,
    },
    /// An idealized device with `2^bits` uniform levels.
    Bits {
        /// Device precision in bits.
        bits: u32,
    },
}

/// One entry of the `layers` section.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpecEntry {
    /// `count` raw free-phase diffractive layers.
    Diffractive {
        /// Repetition count.
        count: usize,
    },
    /// `count` hardware-codesign (Gumbel-Softmax) layers.
    Codesign {
        /// Repetition count.
        count: usize,
        /// Target device.
        device: DeviceSpec,
        /// Initial Gumbel-Softmax temperature.
        temperature: f64,
    },
    /// A saturable-absorber nonlinearity at the current plane.
    Nonlinearity {
        /// Absorption coefficient α.
        alpha: f64,
        /// Saturation intensity.
        saturation: f64,
    },
}

/// Laser source settings.
#[derive(Debug, Clone, PartialEq)]
pub struct LaserSpec {
    /// Wavelength in metres.
    pub wavelength: f64,
    /// Beam profile.
    pub profile: ProfileSpec,
}

/// Diffractive-plane geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// Side length in pixels (square planes, as in the paper).
    pub size: usize,
    /// Diffraction unit (pixel) pitch in metres.
    pub pixel: f64,
}

/// Free-space propagation settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagationSpec {
    /// Layer-to-layer (and source/detector) spacing in metres.
    pub distance: f64,
    /// Diffraction approximation.
    pub approx: ApproxSpec,
}

/// Detector layout settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorSpec {
    /// Number of classes (= number of detector regions).
    pub classes: usize,
    /// Side length of each square detector region in pixels.
    pub det_size: usize,
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSpec {
    /// Complex-valued regularization factor γ (paper §3.2).
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initialization / shuffling seed.
    pub seed: u64,
    /// Gumbel temperature at epoch 0.
    pub initial_temperature: f64,
    /// Gumbel temperature at the final epoch.
    pub final_temperature: f64,
}

impl Default for TrainingSpec {
    fn default() -> Self {
        TrainingSpec {
            gamma: 1.0,
            learning_rate: 0.5,
            epochs: 5,
            batch_size: 32,
            seed: 42,
            initial_temperature: 1.0,
            final_temperature: 0.2,
        }
    }
}

/// A complete, validated DONN system specification.
///
/// # Examples
///
/// ```
/// use lr_dsl::{parse, SystemSpec};
/// let program = parse(
///     "system demo {
///          laser { wavelength = 532 nm; }
///          grid { size = 32; pixel = 36 um; }
///          layers { diffractive x 3; }
///          detector { classes = 10; det_size = 2; }
///      }",
/// )?;
/// let spec = SystemSpec::from_program(&program)?;
/// assert_eq!(spec.grid.size, 32);
/// assert_eq!(spec.num_modulating_layers(), 3);
/// # Ok::<(), lr_dsl::DslError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// System name.
    pub name: String,
    /// Laser source.
    pub laser: LaserSpec,
    /// Plane geometry.
    pub grid: GridSpec,
    /// Free-space propagation.
    pub propagation: PropagationSpec,
    /// Layer stack in propagation order.
    pub layers: Vec<LayerSpecEntry>,
    /// Detector layout.
    pub detector: DetectorSpec,
    /// Training hyperparameters.
    pub training: TrainingSpec,
}

impl SystemSpec {
    /// Total number of phase-modulating layers (codesign + diffractive),
    /// i.e. the paper's "depth D".
    pub fn num_modulating_layers(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                LayerSpecEntry::Diffractive { count } => *count,
                LayerSpecEntry::Codesign { count, .. } => *count,
                LayerSpecEntry::Nonlinearity { .. } => 0,
            })
            .sum()
    }

    /// Validates and lowers a parsed [`Program`].
    ///
    /// # Errors
    ///
    /// Returns a spanned [`DslError`] on unknown sections or keys,
    /// duplicates, missing required definitions, type mismatches, or
    /// out-of-range values.
    pub fn from_program(program: &Program) -> Result<Self> {
        check_sections(program)?;
        let laser = lower_laser(required_section(program, "laser")?)?;
        let grid = lower_grid(required_section(program, "grid")?)?;
        let propagation = match program.section("propagation") {
            Some(s) => lower_propagation(s)?,
            None => PropagationSpec {
                distance: 0.3,
                approx: ApproxSpec::RayleighSommerfeld,
            },
        };
        let layers = lower_layers(required_section(program, "layers")?)?;
        let detector = lower_detector(required_section(program, "detector")?, &grid)?;
        let training = match program.section("training") {
            Some(s) => lower_training(s)?,
            None => TrainingSpec::default(),
        };
        check_physics(program, &laser, &grid, &propagation)?;
        Ok(SystemSpec {
            name: program.name.clone(),
            laser,
            grid,
            propagation,
            layers,
            detector,
            training,
        })
    }
}

const SECTIONS: [&str; 6] = [
    "laser",
    "grid",
    "propagation",
    "layers",
    "detector",
    "training",
];

fn check_sections(program: &Program) -> Result<()> {
    let mut seen: Vec<&str> = Vec::new();
    for section in &program.sections {
        if !SECTIONS.contains(&section.name.as_str()) {
            return Err(DslError::new(
                ErrorKind::UnknownName,
                section.span,
                format!(
                    "no section '{}'; expected one of: {}",
                    section.name,
                    SECTIONS.join(", ")
                ),
            ));
        }
        if seen.contains(&section.name.as_str()) {
            return Err(DslError::new(
                ErrorKind::Duplicate,
                section.span,
                format!("section '{}' defined twice", section.name),
            ));
        }
        if section.name != "layers" {
            if let Some(layer) = section.layers.first() {
                return Err(DslError::new(
                    ErrorKind::UnexpectedToken,
                    layer.span,
                    format!(
                        "layer statement '{}' is only allowed in the 'layers' section",
                        layer.kind
                    ),
                ));
            }
        }
        seen.push(&section.name);
    }
    Ok(())
}

fn required_section<'a>(program: &'a Program, name: &str) -> Result<&'a Section> {
    program.section(name).ok_or_else(|| {
        DslError::new(
            ErrorKind::Missing,
            program.span,
            format!("required section '{name}' is missing"),
        )
    })
}

fn check_known_keys(section: &Section, known: &[&str]) -> Result<()> {
    let mut seen: Vec<&str> = Vec::new();
    for a in &section.assignments {
        if !known.contains(&a.key.as_str()) {
            return Err(DslError::new(
                ErrorKind::UnknownName,
                a.span,
                format!(
                    "section '{}' has no key '{}'; expected one of: {}",
                    section.name,
                    a.key,
                    known.join(", ")
                ),
            ));
        }
        if seen.contains(&a.key.as_str()) {
            return Err(DslError::new(
                ErrorKind::Duplicate,
                a.span,
                format!(
                    "key '{}' assigned twice in section '{}'",
                    a.key, section.name
                ),
            ));
        }
        seen.push(&a.key);
    }
    Ok(())
}

fn length_of(a: &Assignment) -> Result<f64> {
    match &a.value {
        Value::Quantity(meters, _) => Ok(*meters),
        other => Err(DslError::new(
            ErrorKind::TypeMismatch,
            a.span,
            format!(
                "'{}' must be a length with a unit (e.g. 532 nm), got a {}",
                a.key,
                other.describe()
            ),
        )),
    }
}

fn number_of(a: &Assignment) -> Result<f64> {
    match &a.value {
        Value::Number(n) => Ok(*n),
        other => Err(DslError::new(
            ErrorKind::TypeMismatch,
            a.span,
            format!(
                "'{}' must be a bare number, got a {}",
                a.key,
                other.describe()
            ),
        )),
    }
}

fn positive_number_of(a: &Assignment) -> Result<f64> {
    let n = number_of(a)?;
    if !(n.is_finite() && n > 0.0) {
        return Err(DslError::new(
            ErrorKind::InvalidValue,
            a.span,
            format!("'{}' must be finite and positive, got {n}", a.key),
        ));
    }
    Ok(n)
}

fn positive_int_of(a: &Assignment) -> Result<usize> {
    let n = number_of(a)?;
    if n.fract() != 0.0 || !(1.0..=1e9).contains(&n) {
        return Err(DslError::new(
            ErrorKind::InvalidValue,
            a.span,
            format!("'{}' must be a positive integer, got {n}", a.key),
        ));
    }
    Ok(n as usize)
}

fn arg_length(
    args: &[crate::ast::Argument],
    name: &str,
    call_span: Span,
    call: &str,
) -> Result<f64> {
    let arg = args.iter().find(|a| a.name == name).ok_or_else(|| {
        DslError::new(
            ErrorKind::Missing,
            call_span,
            format!("{call}(...) needs argument '{name}'"),
        )
    })?;
    match &arg.value {
        Value::Quantity(meters, _) => Ok(*meters),
        other => Err(DslError::new(
            ErrorKind::TypeMismatch,
            arg.span,
            format!(
                "argument '{name}' of {call}(...) must be a length, got a {}",
                other.describe()
            ),
        )),
    }
}

fn arg_number(
    args: &[crate::ast::Argument],
    name: &str,
    call_span: Span,
    call: &str,
) -> Result<f64> {
    let arg = args.iter().find(|a| a.name == name).ok_or_else(|| {
        DslError::new(
            ErrorKind::Missing,
            call_span,
            format!("{call}(...) needs argument '{name}'"),
        )
    })?;
    match &arg.value {
        Value::Number(n) => Ok(*n),
        other => Err(DslError::new(
            ErrorKind::TypeMismatch,
            arg.span,
            format!(
                "argument '{name}' of {call}(...) must be a number, got a {}",
                other.describe()
            ),
        )),
    }
}

fn lower_laser(section: &Section) -> Result<LaserSpec> {
    check_known_keys(section, &["wavelength", "profile"])?;
    let wavelength = match section.assignment("wavelength") {
        Some(a) => length_of(a)?,
        None => {
            return Err(DslError::new(
                ErrorKind::Missing,
                section.span,
                "laser section needs 'wavelength' (e.g. wavelength = 532 nm;)",
            ))
        }
    };
    let profile = match section.assignment("profile") {
        None => ProfileSpec::Uniform,
        Some(a) => match &a.value {
            Value::Ident(name) if name == "uniform" => ProfileSpec::Uniform,
            Value::Call(name, args) if name == "gaussian" => {
                ProfileSpec::Gaussian { waist: arg_length(args, "waist", a.span, "gaussian")? }
            }
            Value::Call(name, args) if name == "bessel" => ProfileSpec::Bessel {
                radial_wavenumber: arg_number(args, "k", a.span, "bessel")?,
                envelope: arg_length(args, "envelope", a.span, "bessel")?,
            },
            other => {
                return Err(DslError::new(
                    ErrorKind::UnknownName,
                    a.span,
                    format!(
                        "profile must be uniform, gaussian(waist = ...), or bessel(k = ..., envelope = ...); got {}",
                        other.describe()
                    ),
                ))
            }
        },
    };
    Ok(LaserSpec {
        wavelength,
        profile,
    })
}

fn lower_grid(section: &Section) -> Result<GridSpec> {
    check_known_keys(section, &["size", "pixel"])?;
    let size = match section.assignment("size") {
        Some(a) => positive_int_of(a)?,
        None => {
            return Err(DslError::new(
                ErrorKind::Missing,
                section.span,
                "grid section needs 'size'",
            ))
        }
    };
    if !(4..=4096).contains(&size) {
        let a = section.assignment("size").expect("checked above");
        return Err(DslError::new(
            ErrorKind::InvalidValue,
            a.span,
            format!("grid size must be in [4, 4096], got {size}"),
        ));
    }
    let pixel = match section.assignment("pixel") {
        Some(a) => length_of(a)?,
        None => {
            return Err(DslError::new(
                ErrorKind::Missing,
                section.span,
                "grid section needs 'pixel'",
            ))
        }
    };
    if !(pixel.is_finite() && pixel > 0.0) {
        let a = section.assignment("pixel").expect("checked above");
        return Err(DslError::new(
            ErrorKind::InvalidValue,
            a.span,
            "pixel pitch must be positive",
        ));
    }
    Ok(GridSpec { size, pixel })
}

fn lower_propagation(section: &Section) -> Result<PropagationSpec> {
    check_known_keys(section, &["distance", "approx"])?;
    let distance = match section.assignment("distance") {
        Some(a) => {
            let d = length_of(a)?;
            if !(d.is_finite() && d > 0.0) {
                return Err(DslError::new(
                    ErrorKind::InvalidValue,
                    a.span,
                    "distance must be positive",
                ));
            }
            d
        }
        None => 0.3,
    };
    let approx = match section.assignment("approx") {
        None => ApproxSpec::RayleighSommerfeld,
        Some(a) => match &a.value {
            Value::Ident(name) => match name.as_str() {
                "rayleigh_sommerfeld" => ApproxSpec::RayleighSommerfeld,
                "fresnel" => ApproxSpec::Fresnel,
                "fraunhofer" => ApproxSpec::Fraunhofer,
                other => {
                    return Err(DslError::new(
                        ErrorKind::UnknownName,
                        a.span,
                        format!(
                        "approx must be rayleigh_sommerfeld, fresnel, or fraunhofer; got '{other}'"
                    ),
                    ))
                }
            },
            other => {
                return Err(DslError::new(
                    ErrorKind::TypeMismatch,
                    a.span,
                    format!("approx must be a name, got a {}", other.describe()),
                ))
            }
        },
    };
    Ok(PropagationSpec { distance, approx })
}

fn lower_device(entry: &LayerEntry) -> Result<DeviceSpec> {
    let Some(a) = entry.options.iter().find(|o| o.key == "device") else {
        return Ok(DeviceSpec::Lc2012);
    };
    match &a.value {
        Value::Ident(name) if name == "lc2012" => Ok(DeviceSpec::Lc2012),
        Value::Call(name, args) if name == "ideal" => {
            let levels = arg_number(args, "levels", a.span, "ideal")?;
            if levels.fract() != 0.0 || !(2.0..=65536.0).contains(&levels) {
                return Err(DslError::new(
                    ErrorKind::InvalidValue,
                    a.span,
                    format!("ideal(levels = ...) needs an integer in [2, 65536], got {levels}"),
                ));
            }
            Ok(DeviceSpec::Ideal {
                levels: levels as usize,
            })
        }
        Value::Call(name, args) if name == "bits" => {
            let bits = arg_number(args, "n", a.span, "bits")?;
            if bits.fract() != 0.0 || !(1.0..=16.0).contains(&bits) {
                return Err(DslError::new(
                    ErrorKind::InvalidValue,
                    a.span,
                    format!("bits(n = ...) needs an integer in [1, 16], got {bits}"),
                ));
            }
            Ok(DeviceSpec::Bits { bits: bits as u32 })
        }
        other => Err(DslError::new(
            ErrorKind::UnknownName,
            a.span,
            format!(
                "device must be lc2012, ideal(levels = N), or bits(n = N); got {}",
                other.describe()
            ),
        )),
    }
}

fn option_number(entry: &LayerEntry, key: &str, default: f64) -> Result<f64> {
    match entry.options.iter().find(|o| o.key == key) {
        Some(a) => positive_number_of(a),
        None => Ok(default),
    }
}

fn lower_layers(section: &Section) -> Result<Vec<LayerSpecEntry>> {
    check_known_keys(section, &[])?; // no plain assignments allowed here
    if section.layers.is_empty() {
        return Err(DslError::new(
            ErrorKind::Missing,
            section.span,
            "layers section needs at least one layer statement (e.g. diffractive x 3;)",
        ));
    }
    let mut out = Vec::with_capacity(section.layers.len());
    for entry in &section.layers {
        match entry.kind.as_str() {
            "diffractive" => {
                check_layer_options(entry, &[])?;
                out.push(LayerSpecEntry::Diffractive { count: entry.count });
            }
            "codesign" => {
                check_layer_options(entry, &["device", "temperature"])?;
                out.push(LayerSpecEntry::Codesign {
                    count: entry.count,
                    device: lower_device(entry)?,
                    temperature: option_number(entry, "temperature", 1.0)?,
                });
            }
            "nonlinearity" => {
                check_layer_options(entry, &["alpha", "saturation"])?;
                let alpha = option_number(entry, "alpha", 0.5)?;
                if alpha > 1.0 {
                    return Err(DslError::new(
                        ErrorKind::InvalidValue,
                        entry.span,
                        format!(
                            "nonlinearity alpha is a low-power transmission and must be in (0, 1], got {alpha}"
                        ),
                    ));
                }
                out.push(LayerSpecEntry::Nonlinearity {
                    alpha,
                    saturation: option_number(entry, "saturation", 1.0)?,
                });
            }
            other => {
                return Err(DslError::new(
                    ErrorKind::UnknownName,
                    entry.span,
                    format!(
                        "no layer kind '{other}'; expected diffractive, codesign, or nonlinearity"
                    ),
                ))
            }
        }
    }
    if !out
        .iter()
        .any(|l| !matches!(l, LayerSpecEntry::Nonlinearity { .. }))
    {
        return Err(DslError::new(
            ErrorKind::InvalidValue,
            section.span,
            "the stack needs at least one modulating (diffractive or codesign) layer",
        ));
    }
    Ok(out)
}

fn check_layer_options(entry: &LayerEntry, known: &[&str]) -> Result<()> {
    for o in &entry.options {
        if !known.contains(&o.key.as_str()) {
            return Err(DslError::new(
                ErrorKind::UnknownName,
                o.span,
                format!(
                    "layer '{}' has no option '{}'{}",
                    entry.kind,
                    o.key,
                    if known.is_empty() {
                        " (it takes none)".to_string()
                    } else {
                        format!("; expected one of: {}", known.join(", "))
                    }
                ),
            ));
        }
    }
    Ok(())
}

fn lower_detector(section: &Section, grid: &GridSpec) -> Result<DetectorSpec> {
    check_known_keys(section, &["classes", "det_size"])?;
    let classes = match section.assignment("classes") {
        Some(a) => positive_int_of(a)?,
        None => {
            return Err(DslError::new(
                ErrorKind::Missing,
                section.span,
                "detector section needs 'classes'",
            ))
        }
    };
    let det_size = match section.assignment("det_size") {
        Some(a) => positive_int_of(a)?,
        None => {
            return Err(DslError::new(
                ErrorKind::Missing,
                section.span,
                "detector section needs 'det_size'",
            ))
        }
    };
    // Same fit condition as lightridge::Detector::grid_layout, checked here
    // so a valid spec never panics downstream.
    let r_cols = (classes as f64).sqrt().ceil() as usize;
    let r_rows = classes.div_ceil(r_cols);
    let cell_h = grid.size / (r_rows + 1);
    let cell_w = grid.size / (r_cols + 1);
    if cell_h < det_size || cell_w < det_size {
        return Err(DslError::new(
            ErrorKind::InvalidValue,
            section.span,
            format!(
                "detector layout does not fit: {classes} regions of {det_size}px on a {s}x{s} plane",
                s = grid.size
            ),
        ));
    }
    Ok(DetectorSpec { classes, det_size })
}

fn lower_training(section: &Section) -> Result<TrainingSpec> {
    check_known_keys(
        section,
        &[
            "gamma",
            "learning_rate",
            "epochs",
            "batch_size",
            "seed",
            "initial_temperature",
            "final_temperature",
        ],
    )?;
    let d = TrainingSpec::default();
    let mut spec = d.clone();
    if let Some(a) = section.assignment("gamma") {
        spec.gamma = positive_number_of(a)?;
    }
    if let Some(a) = section.assignment("learning_rate") {
        spec.learning_rate = positive_number_of(a)?;
    }
    if let Some(a) = section.assignment("epochs") {
        spec.epochs = positive_int_of(a)?;
    }
    if let Some(a) = section.assignment("batch_size") {
        spec.batch_size = positive_int_of(a)?;
    }
    if let Some(a) = section.assignment("seed") {
        spec.seed = positive_int_of(a)? as u64;
    }
    if let Some(a) = section.assignment("initial_temperature") {
        spec.initial_temperature = positive_number_of(a)?;
    }
    if let Some(a) = section.assignment("final_temperature") {
        spec.final_temperature = positive_number_of(a)?;
    }
    Ok(spec)
}

fn check_physics(
    program: &Program,
    laser: &LaserSpec,
    grid: &GridSpec,
    propagation: &PropagationSpec,
) -> Result<()> {
    let span = program.span;
    if !(1e-7..=1e-3).contains(&laser.wavelength) {
        return Err(DslError::new(
            ErrorKind::InvalidValue,
            span,
            format!(
                "wavelength {:.3e} m is outside the supported 100 nm – 1 mm band",
                laser.wavelength
            ),
        ));
    }
    if grid.pixel < laser.wavelength / 2.0 {
        return Err(DslError::new(
            ErrorKind::InvalidValue,
            span,
            format!(
                "pixel pitch {:.3e} m is below λ/2 = {:.3e} m; the scalar model needs pitch ≥ λ/2",
                grid.pixel,
                laser.wavelength / 2.0
            ),
        ));
    }
    if propagation.distance < laser.wavelength {
        return Err(DslError::new(
            ErrorKind::InvalidValue,
            span,
            "propagation distance must be at least one wavelength",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn spec_of(src: &str) -> Result<SystemSpec> {
        SystemSpec::from_program(&parse(src)?)
    }

    const MINIMAL: &str = "system demo {
        laser { wavelength = 532 nm; }
        grid { size = 32; pixel = 36 um; }
        layers { diffractive x 3; }
        detector { classes = 10; det_size = 2; }
    }";

    #[test]
    fn minimal_program_lowers_with_defaults() {
        let s = spec_of(MINIMAL).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.laser.profile, ProfileSpec::Uniform);
        assert_eq!(s.propagation.distance, 0.3);
        assert_eq!(s.propagation.approx, ApproxSpec::RayleighSommerfeld);
        assert_eq!(s.training, TrainingSpec::default());
        assert_eq!(s.num_modulating_layers(), 3);
    }

    #[test]
    fn full_program_lowers_every_field() {
        let s = spec_of(
            "system full {
                laser { wavelength = 632 nm; profile = gaussian(waist = 1.2 mm); }
                grid { size = 64; pixel = 10 um; }
                propagation { distance = 0.1 m; approx = fresnel; }
                layers {
                    codesign x 2 { device = ideal(levels = 16); temperature = 2.0; }
                    nonlinearity { alpha = 0.3; saturation = 2.0; }
                    diffractive x 1;
                }
                detector { classes = 4; det_size = 4; }
                training { gamma = 1.5; learning_rate = 0.1; epochs = 7; batch_size = 16; seed = 9; }
            }",
        )
        .unwrap();
        assert_eq!(s.laser.wavelength, 632e-9);
        assert_eq!(s.laser.profile, ProfileSpec::Gaussian { waist: 1.2e-3 });
        assert_eq!(s.propagation.approx, ApproxSpec::Fresnel);
        assert_eq!(s.layers.len(), 3);
        assert_eq!(
            s.layers[0],
            LayerSpecEntry::Codesign {
                count: 2,
                device: DeviceSpec::Ideal { levels: 16 },
                temperature: 2.0
            }
        );
        assert_eq!(
            s.layers[1],
            LayerSpecEntry::Nonlinearity {
                alpha: 0.3,
                saturation: 2.0
            }
        );
        assert_eq!(s.training.epochs, 7);
        assert_eq!(s.num_modulating_layers(), 3);
    }

    #[test]
    fn rejects_unknown_section() {
        let err = spec_of("system s { lasr { wavelength = 532 nm; } }").unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::UnknownName);
        assert!(err.message().contains("lasr"), "{err}");
    }

    #[test]
    fn rejects_duplicate_section_and_key() {
        let err =
            spec_of("system s { laser { wavelength = 532 nm; } laser { wavelength = 632 nm; } }")
                .unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::Duplicate);

        let err = spec_of(
            "system s { laser { wavelength = 532 nm; wavelength = 632 nm; }
              grid { size = 32; pixel = 36 um; } layers { diffractive; }
              detector { classes = 2; det_size = 2; } }",
        )
        .unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::Duplicate);
    }

    #[test]
    fn rejects_missing_required_section() {
        let err = spec_of("system s { laser { wavelength = 532 nm; } }").unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::Missing);
        assert!(err.message().contains("grid"), "{err}");
    }

    #[test]
    fn rejects_wavelength_without_unit() {
        let err = spec_of(
            "system s { laser { wavelength = 532; }
              grid { size = 32; pixel = 36 um; } layers { diffractive; }
              detector { classes = 2; det_size = 2; } }",
        )
        .unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::TypeMismatch);
    }

    #[test]
    fn rejects_subwavelength_pixels() {
        let err = spec_of(
            "system s { laser { wavelength = 532 nm; }
              grid { size = 32; pixel = 100 nm; } layers { diffractive; }
              detector { classes = 2; det_size = 2; } }",
        )
        .unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::InvalidValue);
        assert!(err.message().contains("λ/2"), "{err}");
    }

    #[test]
    fn rejects_oversized_detector_layout() {
        let err = spec_of(
            "system s { laser { wavelength = 532 nm; }
              grid { size = 16; pixel = 36 um; } layers { diffractive; }
              detector { classes = 10; det_size = 8; } }",
        )
        .unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::InvalidValue);
        assert!(err.message().contains("does not fit"), "{err}");
    }

    #[test]
    fn rejects_stack_of_only_nonlinearities() {
        let err = spec_of(
            "system s { laser { wavelength = 532 nm; }
              grid { size = 32; pixel = 36 um; }
              layers { nonlinearity { alpha = 0.5; saturation = 1.0; } }
              detector { classes = 2; det_size = 2; } }",
        )
        .unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::InvalidValue);
    }

    #[test]
    fn rejects_nonlinearity_alpha_above_one() {
        let err = spec_of(
            "system s { laser { wavelength = 532 nm; }
              grid { size = 32; pixel = 36 um; }
              layers { diffractive; nonlinearity { alpha = 1.5; } }
              detector { classes = 2; det_size = 2; } }",
        )
        .unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::InvalidValue);
        assert!(err.message().contains("(0, 1]"), "{err}");
    }

    #[test]
    fn rejects_unknown_layer_option() {
        let err = spec_of(
            "system s { laser { wavelength = 532 nm; }
              grid { size = 32; pixel = 36 um; }
              layers { diffractive x 2 { gamma = 1.0; } }
              detector { classes = 2; det_size = 2; } }",
        )
        .unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::UnknownName);
        assert!(err.message().contains("takes none"), "{err}");
    }

    #[test]
    fn layer_statements_rejected_outside_layers_section() {
        let err = spec_of(
            "system s { laser { wavelength = 532 nm; diffractive x 2; }
              grid { size = 32; pixel = 36 um; } layers { diffractive; }
              detector { classes = 2; det_size = 2; } }",
        )
        .unwrap_err();
        assert_eq!(*err.kind(), ErrorKind::UnexpectedToken);
    }

    #[test]
    fn device_variants_lower() {
        for (txt, want) in [
            ("lc2012", DeviceSpec::Lc2012),
            ("ideal(levels = 256)", DeviceSpec::Ideal { levels: 256 }),
            ("bits(n = 4)", DeviceSpec::Bits { bits: 4 }),
        ] {
            let s = spec_of(&format!(
                "system s {{ laser {{ wavelength = 532 nm; }}
                  grid {{ size = 32; pixel = 36 um; }}
                  layers {{ codesign x 1 {{ device = {txt}; }} }}
                  detector {{ classes = 2; det_size = 2; }} }}"
            ))
            .unwrap();
            match &s.layers[0] {
                LayerSpecEntry::Codesign { device, .. } => assert_eq!(*device, want),
                other => panic!("expected codesign, got {other:?}"),
            }
        }
    }
}
