//! Canonical formatter: [`SystemSpec`] → DSL text.
//!
//! The emitted text always parses back to an identical spec
//! (`parse_spec(format_spec(&s)) == s`, bit-exact on every float): lengths
//! are printed in the largest unit that converts back *exactly*, falling
//! back to metres (which is always exact), and numbers use Rust's
//! shortest-round-trip float formatting.

use crate::spec::{DeviceSpec, LayerSpecEntry, ProfileSpec, SystemSpec};
use crate::token::Unit;
use std::fmt::Write as _;

/// Formats a length in metres, choosing the smallest unit that round-trips
/// exactly with a mantissa in [1, 1000) — engineering notation — and
/// falling back to metres (always exact) otherwise.
fn fmt_length(meters: f64) -> String {
    for unit in [Unit::Nanometer, Unit::Micrometer, Unit::Millimeter] {
        let scaled = meters / unit.to_meters();
        let exact = scaled * unit.to_meters() == meters;
        if exact && (1.0..1000.0).contains(&scaled.abs()) {
            return format!("{scaled} {}", unit.suffix());
        }
    }
    format!("{meters} m")
}

fn fmt_profile(profile: &ProfileSpec) -> String {
    match profile {
        ProfileSpec::Uniform => "uniform".to_string(),
        ProfileSpec::Gaussian { waist } => format!("gaussian(waist = {})", fmt_length(*waist)),
        ProfileSpec::Bessel {
            radial_wavenumber,
            envelope,
        } => {
            format!(
                "bessel(k = {radial_wavenumber}, envelope = {})",
                fmt_length(*envelope)
            )
        }
    }
}

fn fmt_device(device: &DeviceSpec) -> String {
    match device {
        DeviceSpec::Lc2012 => "lc2012".to_string(),
        DeviceSpec::Ideal { levels } => format!("ideal(levels = {levels})"),
        DeviceSpec::Bits { bits } => format!("bits(n = {bits})"),
    }
}

/// Renders a spec as canonical DSL text.
///
/// # Examples
///
/// ```
/// use lr_dsl::{parse_spec, format_spec};
/// let spec = parse_spec(
///     "system demo {
///          laser { wavelength = 532 nm; }
///          grid { size = 32; pixel = 36 um; }
///          layers { diffractive x 3; }
///          detector { classes = 10; det_size = 2; }
///      }",
/// )?;
/// let text = format_spec(&spec);
/// assert_eq!(parse_spec(&text)?, spec);
/// # Ok::<(), lr_dsl::DslError>(())
/// ```
pub fn format_spec(spec: &SystemSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "system {} {{", spec.name);

    let _ = writeln!(out, "    laser {{");
    let _ = writeln!(
        out,
        "        wavelength = {};",
        fmt_length(spec.laser.wavelength)
    );
    let _ = writeln!(
        out,
        "        profile = {};",
        fmt_profile(&spec.laser.profile)
    );
    let _ = writeln!(out, "    }}");

    let _ = writeln!(out, "    grid {{");
    let _ = writeln!(out, "        size = {};", spec.grid.size);
    let _ = writeln!(out, "        pixel = {};", fmt_length(spec.grid.pixel));
    let _ = writeln!(out, "    }}");

    let _ = writeln!(out, "    propagation {{");
    let _ = writeln!(
        out,
        "        distance = {};",
        fmt_length(spec.propagation.distance)
    );
    let _ = writeln!(out, "        approx = {};", spec.propagation.approx.name());
    let _ = writeln!(out, "    }}");

    let _ = writeln!(out, "    layers {{");
    for layer in &spec.layers {
        match layer {
            LayerSpecEntry::Diffractive { count } => {
                let _ = writeln!(out, "        diffractive x {count};");
            }
            LayerSpecEntry::Codesign {
                count,
                device,
                temperature,
            } => {
                let _ = writeln!(
                    out,
                    "        codesign x {count} {{ device = {}; temperature = {temperature}; }}",
                    fmt_device(device)
                );
            }
            LayerSpecEntry::Nonlinearity { alpha, saturation } => {
                let _ = writeln!(
                    out,
                    "        nonlinearity {{ alpha = {alpha}; saturation = {saturation}; }}"
                );
            }
        }
    }
    let _ = writeln!(out, "    }}");

    let _ = writeln!(out, "    detector {{");
    let _ = writeln!(out, "        classes = {};", spec.detector.classes);
    let _ = writeln!(out, "        det_size = {};", spec.detector.det_size);
    let _ = writeln!(out, "    }}");

    let t = &spec.training;
    let _ = writeln!(out, "    training {{");
    let _ = writeln!(out, "        gamma = {};", t.gamma);
    let _ = writeln!(out, "        learning_rate = {};", t.learning_rate);
    let _ = writeln!(out, "        epochs = {};", t.epochs);
    let _ = writeln!(out, "        batch_size = {};", t.batch_size);
    let _ = writeln!(out, "        seed = {};", t.seed);
    let _ = writeln!(
        out,
        "        initial_temperature = {};",
        t.initial_temperature
    );
    let _ = writeln!(out, "        final_temperature = {};", t.final_temperature);
    let _ = writeln!(out, "    }}");

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_spec;

    #[test]
    fn length_formatting_prefers_readable_units() {
        assert_eq!(fmt_length(532e-9), "532 nm");
        assert_eq!(fmt_length(36e-6), "36 um");
        assert_eq!(fmt_length(1.2e-3), "1.2 mm");
        assert_eq!(fmt_length(0.3), "300 mm");
        assert_eq!(fmt_length(1.0), "1 m");
    }

    #[test]
    fn length_formatting_always_roundtrips_exactly() {
        for &v in &[
            532e-9,
            36e-6,
            0.3,
            1.0,
            2.7e-4,
            5.32e-7,
            0.1 + 0.2,
            f64::MIN_POSITIVE,
        ] {
            let s = fmt_length(v);
            let (num, unit) = s.split_once(' ').unwrap();
            let parsed: f64 = num.parse().unwrap();
            let scale = match unit {
                "nm" => 1e-9,
                "um" => 1e-6,
                "mm" => 1e-3,
                "m" => 1.0,
                other => panic!("unexpected unit {other}"),
            };
            assert_eq!(parsed * scale, v, "round-trip failed for {v:e} via '{s}'");
        }
    }

    #[test]
    fn formatted_output_parses_back_identically() {
        let spec = parse_spec(
            "system full {
                laser { wavelength = 632 nm; profile = bessel(k = 5000, envelope = 1 mm); }
                grid { size = 64; pixel = 10 um; }
                propagation { distance = 0.1 m; approx = fraunhofer; }
                layers {
                    codesign x 2 { device = bits(n = 4); temperature = 2.0; }
                    nonlinearity { alpha = 0.3; saturation = 2.0; }
                    diffractive x 1;
                }
                detector { classes = 4; det_size = 4; }
                training { gamma = 1.5; learning_rate = 0.1; epochs = 7; batch_size = 16; seed = 9; }
            }",
        )
        .unwrap();
        let text = format_spec(&spec);
        let reparsed = parse_spec(&text).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn formatting_is_idempotent() {
        let spec = parse_spec(
            "system s {
                laser { wavelength = 532 nm; }
                grid { size = 32; pixel = 36 um; }
                layers { diffractive x 3; }
                detector { classes = 10; det_size = 2; }
            }",
        )
        .unwrap();
        let once = format_spec(&spec);
        let twice = format_spec(&parse_spec(&once).unwrap());
        assert_eq!(once, twice);
    }
}
