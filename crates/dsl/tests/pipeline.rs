//! Integration: the full DSL pipeline — text → parse → validate → compile →
//! train → evaluate → deploy — on a real (toy-scale) task.

use lr_dsl::{compile_str, format_spec, parse_spec};

const SYSTEM: &str = "
system integration {
    laser { wavelength = 532 nm; }
    grid { size = 16; pixel = 36 um; }
    propagation { distance = 5 mm; }
    layers { diffractive x 2; }
    detector { classes = 2; det_size = 3; }
    training { epochs = 4; batch_size = 8; learning_rate = 0.2; seed = 3; }
}";

fn halves_dataset(size: usize, n: usize) -> Vec<(Vec<f64>, usize)> {
    (0..n)
        .map(|i| {
            let label = i % 2;
            let mut img = vec![0.0; size * size];
            for r in 0..size / 2 {
                for c in size / 4..3 * size / 4 {
                    img[(r + label * size / 2) * size + c] = 1.0;
                }
            }
            (img, label)
        })
        .collect()
}

#[test]
fn dsl_text_trains_to_above_chance_and_deploys() {
    let compiled = compile_str(SYSTEM).expect("valid program");
    let mut model = compiled.model;
    assert_eq!(model.depth(), 2);
    assert_eq!(model.num_classes(), 2);

    let data = halves_dataset(16, 24);
    lightridge::train::train(&mut model, &data, &compiled.train_config);
    let accuracy = lightridge::train::evaluate(&model, &data);
    assert!(
        accuracy > 0.6,
        "DSL-built model failed to learn: accuracy {accuracy}"
    );

    // Deployment artifacts exist and have the right shape.
    let masks = model.phase_masks();
    assert_eq!(masks.len(), 2);
    assert!(masks.iter().all(|m| m.len() == 16 * 16));
    assert!(masks.iter().flatten().all(|p| p.is_finite()));
}

#[test]
fn canonical_form_compiles_to_the_same_architecture() {
    let spec = parse_spec(SYSTEM).expect("valid program");
    let round_tripped = parse_spec(&format_spec(&spec)).expect("canonical form parses");
    assert_eq!(round_tripped, spec);

    let a = lr_dsl::compile(&spec);
    let b = lr_dsl::compile(&round_tripped);
    assert_eq!(a.model.num_params(), b.model.num_params());
    assert_eq!(a.model.depth(), b.model.depth());
    // Same seeds ⇒ bit-identical initial parameters.
    for (la, lb) in a.model.layers().iter().zip(b.model.layers()) {
        assert_eq!(la.params(), lb.params());
    }
}

#[test]
fn error_messages_point_at_the_problem() {
    // A realistic typo: wrong key name inside a valid program.
    let err = compile_str(
        "system s {
            laser { wavelenght = 532 nm; }
            grid { size = 16; pixel = 36 um; }
            layers { diffractive; }
            detector { classes = 2; det_size = 3; }
        }",
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "{msg}");
    assert!(msg.contains("wavelenght"), "{msg}");
    assert!(msg.contains("wavelength"), "suggestion list missing: {msg}");
}
