//! Property tests: the formatter and parser are exact inverses on the space
//! of valid specs, and the parser never panics on arbitrary input.

use lr_dsl::{
    format_spec, parse, parse_spec, ApproxSpec, DetectorSpec, DeviceSpec, GridSpec, LaserSpec,
    LayerSpecEntry, ProfileSpec, PropagationSpec, SystemSpec, TrainingSpec,
};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}"
}

fn arb_profile() -> impl Strategy<Value = ProfileSpec> {
    prop_oneof![
        Just(ProfileSpec::Uniform),
        (1e-6..1e-2f64).prop_map(|waist| ProfileSpec::Gaussian { waist }),
        ((1.0..1e6f64), (1e-6..1e-2f64)).prop_map(|(radial_wavenumber, envelope)| {
            ProfileSpec::Bessel {
                radial_wavenumber,
                envelope,
            }
        }),
    ]
}

fn arb_device() -> impl Strategy<Value = DeviceSpec> {
    prop_oneof![
        Just(DeviceSpec::Lc2012),
        (2usize..512).prop_map(|levels| DeviceSpec::Ideal { levels }),
        (1u32..9).prop_map(|bits| DeviceSpec::Bits { bits }),
    ]
}

fn arb_layer() -> impl Strategy<Value = LayerSpecEntry> {
    prop_oneof![
        (1usize..6).prop_map(|count| LayerSpecEntry::Diffractive { count }),
        ((1usize..4), arb_device(), 0.1..4.0f64).prop_map(|(count, device, temperature)| {
            LayerSpecEntry::Codesign {
                count,
                device,
                temperature,
            }
        }),
        ((0.01..=1.0f64), (0.1..10.0f64))
            .prop_map(|(alpha, saturation)| { LayerSpecEntry::Nonlinearity { alpha, saturation } }),
    ]
}

prop_compose! {
    fn arb_spec()(
        name in arb_ident(),
        wavelength in 4e-7..8e-7f64,
        profile in arb_profile(),
        size in 16usize..128,
        pixel_um in 1.0..100.0f64,
        distance in 1e-3..1.0f64,
        approx in prop_oneof![
            Just(ApproxSpec::RayleighSommerfeld),
            Just(ApproxSpec::Fresnel),
            Just(ApproxSpec::Fraunhofer),
        ],
        mut layers in prop::collection::vec(arb_layer(), 1..5),
        classes in 2usize..5,
        gamma in 0.1..4.0f64,
        learning_rate in 1e-3..1.0f64,
        epochs in 1usize..50,
        batch_size in 1usize..512,
        seed in 1u64..1_000_000,
        initial_temperature in 0.1..5.0f64,
        final_temperature in 0.01..1.0f64,
    ) -> SystemSpec {
        // Guarantee at least one modulating layer.
        if !layers.iter().any(|l| !matches!(l, LayerSpecEntry::Nonlinearity { .. })) {
            layers.push(LayerSpecEntry::Diffractive { count: 1 });
        }
        SystemSpec {
            name,
            laser: LaserSpec { wavelength, profile },
            grid: GridSpec { size, pixel: pixel_um * 1e-6 },
            propagation: PropagationSpec { distance, approx },
            layers,
            detector: DetectorSpec { classes, det_size: 2 },
            training: TrainingSpec {
                gamma,
                learning_rate,
                epochs,
                batch_size,
                seed,
                initial_temperature,
                final_temperature,
            },
        }
    }
}

proptest! {
    /// format → parse is the identity on valid specs, bit-exact on floats.
    #[test]
    fn format_parse_roundtrip(spec in arb_spec()) {
        let text = format_spec(&spec);
        let reparsed = parse_spec(&text)
            .unwrap_or_else(|e| panic!("formatted spec failed to parse: {e}\n{text}"));
        prop_assert_eq!(reparsed, spec);
    }

    /// Formatting is idempotent: format(parse(format(s))) == format(s).
    #[test]
    fn format_is_idempotent(spec in arb_spec()) {
        let once = format_spec(&spec);
        let twice = format_spec(&parse_spec(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    /// The parser returns errors, never panics, on arbitrary junk.
    #[test]
    fn parser_never_panics(src in ".{0,200}") {
        let _ = parse(&src);
    }

    /// The parser also survives junk made of language-ish fragments.
    #[test]
    fn parser_never_panics_on_fragments(
        parts in prop::collection::vec(
            prop_oneof![
                Just("system".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("=".to_string()),
                Just(";".to_string()),
                Just("532 nm".to_string()),
                Just("laser".to_string()),
                Just("x 3".to_string()),
                arb_ident(),
            ],
            0..30,
        )
    ) {
        let src = parts.join(" ");
        let _ = parse(&src);
    }
}

proptest! {
    // Compiling allocates field-sized parameter buffers and FFT plans, so
    // keep the case count small; the property is about panic-freedom, not
    // distribution coverage.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Validation is sufficient: every spec the validator would accept
    /// compiles into a model without panicking, with the promised shape.
    #[test]
    fn valid_specs_always_compile(spec in arb_spec()) {
        // Round-trip through text so the compiled spec is exactly one the
        // parser itself admits.
        let reparsed = parse_spec(&format_spec(&spec)).expect("formatter emits valid programs");
        let compiled = lr_dsl::compile(&reparsed);
        prop_assert_eq!(compiled.model.num_classes(), spec.detector.classes);
        prop_assert_eq!(
            compiled.model.layers().iter().filter(|l| l.num_params() > 0).count()
                >= spec.num_modulating_layers().min(1),
            true
        );
    }
}
