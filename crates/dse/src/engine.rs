//! LightRidge-DSE: architectural design-space exploration (paper §4).
//!
//! The DSE engine answers "which (diffraction unit size, diffraction
//! distance) works at wavelength λ?" without grid-searching every candidate:
//!
//! 1. **Sweep** two *source* wavelengths over a (d, D) grid, training a
//!    small DONN per point and recording accuracy (Fig. 5a/b).
//! 2. **Fit** the gradient-boosted analytical model on those points.
//! 3. **Predict** the design space at the *target* wavelength (Fig. 5c) and
//!    pick the best point — a handful of emulation runs instead of a full
//!    grid (the paper reports ~60× fewer trainings).
//! 4. **Validate** by emulation at the chosen point (Fig. 5d star).
//!
//! Sensitivity analysis (Table 3) perturbs one parameter at a time around
//! the chosen design and re-evaluates.

use crate::gbdt::{BoostConfig, GradientBoostingRegressor};
use lightridge::train::{self, TrainConfig};
use lightridge::{Detector, DonnBuilder};
use lr_datasets::digits::{self, DigitsConfig};
use lr_optics::{Approximation, Distance, Grid, PixelPitch, Wavelength};

/// One explored design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsePoint {
    /// Laser wavelength (metres).
    pub wavelength_m: f64,
    /// Diffraction unit size (metres).
    pub unit_size_m: f64,
    /// Diffraction distance (metres).
    pub distance_m: f64,
    /// Emulated (or predicted) test accuracy.
    pub accuracy: f64,
}

impl DsePoint {
    /// Feature vector for the analytical model.
    ///
    /// Alongside the raw `(λ, d, D)` the paper's regressor takes, we add
    /// the two dimensionless groups the underlying diffraction physics is
    /// invariant under — the paper points at exactly this structure when
    /// it says the model "confirms critical domain-knowledge insights \[5\]
    /// ... following the traditional maximum half-cone diffraction angle
    /// theory":
    ///
    /// * `d/λ` — the unit size in wavelengths, which sets the maximum
    ///   half-cone diffraction angle `sin θ = λ/(2d)`;
    /// * `λD/d²` — the Fresnel-like ratio of diffractive spread to unit
    ///   size over one hop (how many neighbours a unit "talks to").
    ///
    /// Trees that split on these generalize across wavelengths instead of
    /// memorizing raw coordinates.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.wavelength_m,
            self.unit_size_m,
            self.distance_m,
            self.unit_size_m / self.wavelength_m,
            self.wavelength_m * self.distance_m / (self.unit_size_m * self.unit_size_m),
        ]
    }
}

/// The ML task + budget used to score one design point.
#[derive(Debug, Clone)]
pub struct DseTask {
    /// System resolution (`size × size`).
    pub system_size: usize,
    /// Number of diffractive layers.
    pub depth: usize,
    /// Number of classes (detector regions).
    pub num_classes: usize,
    /// Detector region side length (pixels).
    pub det_size: usize,
    /// Training samples per point.
    pub train_samples: usize,
    /// Held-out test samples per point.
    pub test_samples: usize,
    /// Training epochs per point.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Dataset / init seed.
    pub seed: u64,
}

impl DseTask {
    /// A laptop-scale task: 32×32 system, 3 layers, 10-class digits.
    pub fn quick() -> Self {
        DseTask {
            system_size: 32,
            depth: 3,
            num_classes: 10,
            det_size: 4,
            train_samples: 200,
            test_samples: 60,
            epochs: 3,
            batch_size: 25,
            learning_rate: 0.3,
            seed: 17,
        }
    }

    /// A minimal task for unit tests (2 layers, 4 classes, tiny budget).
    pub fn tiny() -> Self {
        DseTask {
            system_size: 16,
            depth: 2,
            num_classes: 4,
            det_size: 3,
            train_samples: 60,
            test_samples: 20,
            epochs: 2,
            batch_size: 15,
            learning_rate: 0.3,
            seed: 17,
        }
    }
}

/// Trains a DONN at a specific `(λ, d, D)` design and returns its held-out
/// accuracy — the DSE objective function. Uses the procedural digits
/// dataset (the MNIST substitute the paper sweeps with).
///
/// # Panics
///
/// Panics if the physical parameters are non-positive.
pub fn evaluate_design(
    wavelength_m: f64,
    unit_size_m: f64,
    distance_m: f64,
    task: &DseTask,
) -> f64 {
    evaluate_design_on(
        wavelength_m,
        unit_size_m,
        distance_m,
        task,
        &|n, size, classes, seed| class_limited_digits(n, size, classes, seed),
    )
}

/// Like [`evaluate_design`] but on a caller-provided dataset — the hook the
/// `dse-transfer` experiment uses to test the paper's §4 claim that a DSE
/// model trained on MNIST guides other MNIST-like datasets.
///
/// `dataset(n, size, num_classes, seed)` must return `n` labeled images of
/// `size × size` pixels with labels `< num_classes`.
///
/// # Panics
///
/// Panics if the physical parameters are non-positive or the dataset
/// violates its contract.
pub fn evaluate_design_on(
    wavelength_m: f64,
    unit_size_m: f64,
    distance_m: f64,
    task: &DseTask,
    dataset: &dyn Fn(usize, usize, usize, u64) -> Vec<(Vec<f64>, usize)>,
) -> f64 {
    let grid = Grid::square(task.system_size, PixelPitch::from_meters(unit_size_m));
    let mut model = DonnBuilder::new(grid, Wavelength::from_meters(wavelength_m))
        .distance(Distance::from_meters(distance_m))
        .approximation(Approximation::RayleighSommerfeld)
        .diffractive_layers(task.depth)
        .detector(Detector::grid_layout(
            task.system_size,
            task.system_size,
            task.num_classes,
            task.det_size,
        ))
        .init_seed(task.seed)
        .build();

    let data = dataset(
        task.train_samples + task.test_samples,
        task.system_size,
        task.num_classes,
        task.seed,
    );
    assert_eq!(
        data.len(),
        task.train_samples + task.test_samples,
        "dataset returned wrong count"
    );
    assert!(
        data.iter().all(|(_, l)| *l < task.num_classes),
        "dataset label out of range"
    );
    let (train_set, test_set) = data.split_at(task.train_samples);
    let config = TrainConfig {
        epochs: task.epochs,
        batch_size: task.batch_size,
        learning_rate: task.learning_rate,
        seed: task.seed,
        ..TrainConfig::default()
    };
    train::train(&mut model, train_set, &config);
    train::evaluate(&model, test_set)
}

/// Digits dataset restricted to the first `num_classes` digits.
fn class_limited_digits(
    n: usize,
    size: usize,
    num_classes: usize,
    seed: u64,
) -> Vec<(Vec<f64>, usize)> {
    let config = DigitsConfig {
        size,
        ..Default::default()
    };
    // Generate extra and filter to keep class balance.
    let factor = 10usize.div_ceil(num_classes);
    digits::generate(n * factor + 10, &config, seed)
        .into_iter()
        .filter(|(_, l)| *l < num_classes)
        .take(n)
        .collect()
}

/// Sweeps a `(unit size, distance)` grid at one wavelength, producing the
/// training points of Fig. 5a/b.
pub fn sweep(
    wavelength_m: f64,
    unit_sizes_m: &[f64],
    distances_m: &[f64],
    task: &DseTask,
) -> Vec<DsePoint> {
    let mut points = Vec::with_capacity(unit_sizes_m.len() * distances_m.len());
    for &d in unit_sizes_m {
        for &z in distances_m {
            let accuracy = evaluate_design(wavelength_m, d, z, task);
            points.push(DsePoint {
                wavelength_m,
                unit_size_m: d,
                distance_m: z,
                accuracy,
            });
        }
    }
    points
}

/// The fitted analytical model of LightRidge-DSE.
#[derive(Debug, Clone)]
pub struct AnalyticalDse {
    model: GradientBoostingRegressor,
}

impl AnalyticalDse {
    /// Fits the gradient-boosting model on explored points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn fit(points: &[DsePoint], config: BoostConfig) -> Self {
        assert!(
            !points.is_empty(),
            "need explored points to fit the analytical model"
        );
        let x: Vec<Vec<f64>> = points.iter().map(DsePoint::features).collect();
        let y: Vec<f64> = points.iter().map(|p| p.accuracy).collect();
        AnalyticalDse {
            model: GradientBoostingRegressor::fit(&x, &y, config),
        }
    }

    /// Predicted accuracy at a design point.
    pub fn predict(&self, wavelength_m: f64, unit_size_m: f64, distance_m: f64) -> f64 {
        let point = DsePoint {
            wavelength_m,
            unit_size_m,
            distance_m,
            accuracy: 0.0,
        };
        self.model.predict(&point.features())
    }

    /// Predicts a whole `(d, D)` grid at a new wavelength (Fig. 5c).
    pub fn predict_grid(
        &self,
        wavelength_m: f64,
        unit_sizes_m: &[f64],
        distances_m: &[f64],
    ) -> Vec<DsePoint> {
        let mut out = Vec::with_capacity(unit_sizes_m.len() * distances_m.len());
        for &d in unit_sizes_m {
            for &z in distances_m {
                out.push(DsePoint {
                    wavelength_m,
                    unit_size_m: d,
                    distance_m: z,
                    accuracy: self.predict(wavelength_m, d, z),
                });
            }
        }
        out
    }

    /// The predicted-best design point on a grid (the Fig. 5 star).
    pub fn best_on_grid(
        &self,
        wavelength_m: f64,
        unit_sizes_m: &[f64],
        distances_m: &[f64],
    ) -> DsePoint {
        self.predict_grid(wavelength_m, unit_sizes_m, distances_m)
            .into_iter()
            .max_by(|a, b| {
                a.accuracy
                    .partial_cmp(&b.accuracy)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty grid")
    }

    /// Training-fit quality on the explored points.
    pub fn r_squared(&self, points: &[DsePoint]) -> f64 {
        let x: Vec<Vec<f64>> = points.iter().map(DsePoint::features).collect();
        let y: Vec<f64> = points.iter().map(|p| p.accuracy).collect();
        self.model.r_squared(&x, &y)
    }
}

/// One row of the Table-3 sensitivity study.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Which parameter was perturbed (`"wavelength"`, `"distance"`,
    /// `"unit_size"`).
    pub parameter: &'static str,
    /// Relative shifts applied (e.g. −0.10, −0.05, 0, +0.05, +0.10).
    pub shifts: Vec<f64>,
    /// Accuracy at each shift.
    pub accuracies: Vec<f64>,
}

/// Single-parameter control-variable sensitivity around a base design.
pub fn sensitivity_analysis(
    base: &DsePoint,
    shifts: &[f64],
    task: &DseTask,
) -> Vec<SensitivityRow> {
    let eval = |lambda: f64, unit: f64, dist: f64| evaluate_design(lambda, unit, dist, task);
    let mut rows = vec![SensitivityRow {
        parameter: "wavelength",
        shifts: shifts.to_vec(),
        accuracies: shifts
            .iter()
            .map(|s| {
                eval(
                    base.wavelength_m * (1.0 + s),
                    base.unit_size_m,
                    base.distance_m,
                )
            })
            .collect(),
    }];
    rows.push(SensitivityRow {
        parameter: "distance",
        shifts: shifts.to_vec(),
        accuracies: shifts
            .iter()
            .map(|s| {
                eval(
                    base.wavelength_m,
                    base.unit_size_m,
                    base.distance_m * (1.0 + s),
                )
            })
            .collect(),
    });
    rows.push(SensitivityRow {
        parameter: "unit_size",
        shifts: shifts.to_vec(),
        accuracies: shifts
            .iter()
            .map(|s| {
                eval(
                    base.wavelength_m,
                    base.unit_size_m * (1.0 + s),
                    base.distance_m,
                )
            })
            .collect(),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_design_beats_chance_at_reasonable_point() {
        let task = DseTask::tiny();
        // λ=532nm, pitch 36um. Pick z so the diffraction spread λz/p covers
        // about half the aperture (16·36µm ≈ 0.58mm): z ≈ 0.02 m.
        let acc = evaluate_design(532e-9, 36e-6, 0.02, &task);
        assert!(
            acc > 1.2 / task.num_classes as f64,
            "accuracy {acc} barely above chance"
        );
    }

    #[test]
    fn degenerate_distance_hurts_accuracy() {
        // With z→0 there is almost no diffraction: the DONN cannot mix
        // spatial information and should underperform a well-chosen z.
        let task = DseTask::tiny();
        let good = evaluate_design(532e-9, 36e-6, 0.02, &task);
        let bad = evaluate_design(532e-9, 36e-6, 1e-7, &task);
        assert!(
            good > bad + 0.05,
            "diffraction must matter: good {good} vs degenerate {bad}"
        );
    }

    #[test]
    fn analytical_model_interpolates_wavelength() {
        // Synthetic accuracy surface with a known physics-like ridge:
        // best when unit_size ≈ 60λ. The GBDT trained at two wavelengths
        // should transfer the ridge to a third.
        let surface = |lambda: f64, unit: f64| -> f64 {
            let ratio = unit / lambda;
            (-((ratio - 60.0) / 30.0_f64).powi(2)).exp()
        };
        let mut points = Vec::new();
        for &lambda in &[432e-9, 632e-9] {
            for i in 1..=12 {
                let unit = lambda * 10.0 * i as f64;
                points.push(DsePoint {
                    wavelength_m: lambda,
                    unit_size_m: unit,
                    distance_m: 0.3,
                    accuracy: surface(lambda, unit),
                });
            }
        }
        let dse = AnalyticalDse::fit(
            &points,
            BoostConfig {
                n_estimators: 300,
                learning_rate: 0.1,
                max_depth: 3,
            },
        );
        assert!(dse.r_squared(&points) > 0.95);
        // Predict at 532 nm: the best unit size on the grid should be near
        // 60λ = 31.9 µm.
        let units: Vec<f64> = (1..=12).map(|i| 532e-9 * 10.0 * i as f64).collect();
        let best = dse.best_on_grid(532e-9, &units, &[0.3]);
        let ratio = best.unit_size_m / 532e-9;
        assert!(
            (40.0..=80.0).contains(&ratio),
            "predicted best unit size {ratio}λ should be near the 60λ ridge"
        );
    }

    #[test]
    fn sensitivity_rows_cover_three_parameters() {
        let task = DseTask::tiny();
        let base = DsePoint {
            wavelength_m: 532e-9,
            unit_size_m: 36e-6,
            distance_m: 0.002,
            accuracy: 0.0,
        };
        let rows = sensitivity_analysis(&base, &[-0.05, 0.0, 0.05], &task);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.accuracies.len(), 3);
            assert!(row.accuracies.iter().all(|&a| (0.0..=1.0).contains(&a)));
        }
        let names: Vec<&str> = rows.iter().map(|r| r.parameter).collect();
        assert_eq!(names, vec!["wavelength", "distance", "unit_size"]);
    }

    #[test]
    fn class_limited_digits_respects_bounds() {
        let data = class_limited_digits(40, 16, 4, 0);
        assert_eq!(data.len(), 40);
        assert!(data.iter().all(|(_, l)| *l < 4));
    }
}
