//! Gradient-boosted regression trees (the paper's "analytical model").
//!
//! LightRidge-DSE fits a gradient-boosting regression model (paper §4,
//! citing scikit-learn's `GradientBoostingRegressor` with
//! `n_estimators=3500, learning_rate=0.2, max_depth=3`) over DSE sample
//! points `(λ, unit size, distance) → accuracy`, then uses the fitted
//! model to predict the design space at a *new* wavelength. This is a
//! from-scratch CART + boosting implementation with the same knobs.

/// A binary regression tree fit by variance-reduction CART splitting.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child in `nodes`.
        left: usize,
        /// Index of the right child in `nodes`.
        right: usize,
    },
}

/// Hyperparameters for a single tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 3,
            min_samples_split: 2,
        }
    }
}

impl RegressionTree {
    /// Fits a tree to `(x, y)` samples.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, lengths mismatch, or feature vectors are
    /// ragged.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: TreeConfig) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree on no samples");
        assert_eq!(x.len(), y.len(), "sample/target length mismatch");
        let d = x[0].len();
        assert!(x.iter().all(|row| row.len() == d), "ragged feature matrix");
        let mut nodes = Vec::new();
        let indices: Vec<usize> = (0..x.len()).collect();
        build(&mut nodes, x, y, &indices, 0, config);
        RegressionTree { nodes }
    }

    /// Predicts the target for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostic).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

fn build(
    nodes: &mut Vec<Node>,
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    depth: usize,
    config: TreeConfig,
) -> usize {
    let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
    let my_index = nodes.len();
    if depth >= config.max_depth || indices.len() < config.min_samples_split {
        nodes.push(Node::Leaf { value: mean });
        return my_index;
    }
    match best_split(x, y, indices) {
        None => {
            nodes.push(Node::Leaf { value: mean });
            my_index
        }
        Some((feature, threshold)) => {
            let (l_idx, r_idx): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| x[i][feature] <= threshold);
            if l_idx.is_empty() || r_idx.is_empty() {
                nodes.push(Node::Leaf { value: mean });
                return my_index;
            }
            // Reserve the split node, then build both subtrees and record
            // their actual indices.
            nodes.push(Node::Leaf { value: mean }); // placeholder
            let left = build(nodes, x, y, &l_idx, depth + 1, config);
            let right = build(nodes, x, y, &r_idx, depth + 1, config);
            nodes[my_index] = Node::Split {
                feature,
                threshold,
                left,
                right,
            };
            my_index
        }
    }
}

/// Finds the `(feature, threshold)` minimizing weighted child variance.
fn best_split(x: &[Vec<f64>], y: &[f64], indices: &[usize]) -> Option<(usize, f64)> {
    let n = indices.len();
    if n < 2 {
        return None;
    }
    let d = x[indices[0]].len();
    let total_sum: f64 = indices.iter().map(|&i| y[i]).sum();
    let total_sq: f64 = indices.iter().map(|&i| y[i] * y[i]).sum();
    let parent_sse = total_sq - total_sum * total_sum / n as f64;
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)

    // Indexing by feature id is the natural form here: `f` selects a
    // column across rows, not an element of one row.
    #[allow(clippy::needless_range_loop)]
    for f in 0..d {
        let mut order: Vec<usize> = indices.to_vec();
        order.sort_by(|&a, &b| {
            x[a][f]
                .partial_cmp(&x[b][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (k, &i) in order.iter().enumerate().take(n - 1) {
            left_sum += y[i];
            left_sq += y[i] * y[i];
            // Can't split between identical feature values.
            if x[i][f] == x[order[k + 1]][f] {
                continue;
            }
            let nl = (k + 1) as f64;
            let nr = (n - k - 1) as f64;
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse =
                (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
            if best.is_none_or(|(_, _, b)| sse < b) {
                let threshold = (x[i][f] + x[order[k + 1]][f]) / 2.0;
                best = Some((f, threshold, sse));
            }
        }
    }
    best.and_then(|(f, t, sse)| {
        if sse < parent_sse - 1e-15 {
            Some((f, t))
        } else {
            None
        }
    })
}

/// Gradient-boosted ensemble of regression trees (squared loss).
#[derive(Debug, Clone)]
pub struct GradientBoostingRegressor {
    base: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
}

/// Boosting hyperparameters (defaults mirror the paper: 3500 estimators,
/// learning rate 0.2, depth 3 — scaled down by callers in quick mode).
#[derive(Debug, Clone, Copy)]
pub struct BoostConfig {
    /// Number of boosting stages.
    pub n_estimators: usize,
    /// Shrinkage applied to every stage.
    pub learning_rate: f64,
    /// Per-tree depth limit.
    pub max_depth: usize,
}

impl Default for BoostConfig {
    fn default() -> Self {
        BoostConfig {
            n_estimators: 3500,
            learning_rate: 0.2,
            max_depth: 3,
        }
    }
}

impl GradientBoostingRegressor {
    /// Fits the ensemble.
    ///
    /// # Panics
    ///
    /// Panics on empty/ragged inputs or non-positive hyperparameters.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: BoostConfig) -> Self {
        assert!(!x.is_empty(), "cannot fit on no samples");
        assert_eq!(x.len(), y.len(), "sample/target length mismatch");
        assert!(
            config.n_estimators > 0 && config.learning_rate > 0.0,
            "invalid boosting config"
        );
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let mut residuals: Vec<f64> = y.iter().map(|&v| v - base).collect();
        let tree_config = TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: 2,
        };
        let mut trees = Vec::with_capacity(config.n_estimators);
        for _ in 0..config.n_estimators {
            let tree = RegressionTree::fit(x, &residuals, tree_config);
            for (r, xi) in residuals.iter_mut().zip(x) {
                *r -= config.learning_rate * tree.predict(xi);
            }
            trees.push(tree);
            // Early stop once residuals are numerically dead.
            if residuals.iter().map(|r| r * r).sum::<f64>() < 1e-18 {
                break;
            }
        }
        GradientBoostingRegressor {
            base,
            learning_rate: config.learning_rate,
            trees,
        }
    }

    /// Predicts the target for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(features)).sum::<f64>()
    }

    /// Number of fitted stages (may be fewer than requested after early
    /// stopping).
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Training R²: `1 − SSE/SST` on the given data.
    pub fn r_squared(&self, x: &[Vec<f64>], y: &[f64]) -> f64 {
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let sst: f64 = y.iter().map(|&v| (v - mean).powi(2)).sum();
        let sse: f64 = x
            .iter()
            .zip(y)
            .map(|(xi, &yi)| (self.predict(xi) - yi).powi(2))
            .sum();
        if sst == 0.0 {
            1.0
        } else {
            1.0 - sse / sst
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tree_fits_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let tree = RegressionTree::fit(&x, &y, TreeConfig::default());
        assert!((tree.predict(&[3.0]) - 1.0).abs() < 1e-12);
        assert!((tree.predict(&[15.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn tree_depth_zero_predicts_mean() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = [3.0, 6.0, 9.0];
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                max_depth: 0,
                min_samples_split: 2,
            },
        );
        assert!((tree.predict(&[0.0]) - 6.0).abs() < 1e-12);
        assert_eq!(tree.num_nodes(), 1);
    }

    #[test]
    fn tree_splits_on_informative_feature() {
        // Feature 0 is noise; feature 1 determines y.
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![((i * 17) % 7) as f64, (i % 2) as f64])
            .collect();
        let y: Vec<f64> = (0..40).map(|i| (i % 2) as f64 * 10.0).collect();
        let tree = RegressionTree::fit(
            &x,
            &y,
            TreeConfig {
                max_depth: 2,
                min_samples_split: 2,
            },
        );
        assert!((tree.predict(&[3.0, 0.0]) - 0.0).abs() < 1e-9);
        assert!((tree.predict(&[3.0, 1.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn boosting_fits_smooth_surface() {
        // y = sin(x0) + 0.5·x1 on a grid.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..15 {
            for j in 0..15 {
                let a = i as f64 * 0.4;
                let b = j as f64 * 0.3;
                x.push(vec![a, b]);
                y.push(a.sin() + 0.5 * b);
            }
        }
        let model = GradientBoostingRegressor::fit(
            &x,
            &y,
            BoostConfig {
                n_estimators: 200,
                learning_rate: 0.2,
                max_depth: 3,
            },
        );
        assert!(
            model.r_squared(&x, &y) > 0.99,
            "R² = {}",
            model.r_squared(&x, &y)
        );
        // Interpolation at an unseen point.
        let pred = model.predict(&[2.2, 1.6]);
        let truth = 2.2f64.sin() + 0.8;
        assert!((pred - truth).abs() < 0.1, "pred {pred} vs {truth}");
    }

    #[test]
    fn boosting_improves_over_single_tree() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.2]).collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0]).sin() * 3.0).collect();
        let one = GradientBoostingRegressor::fit(
            &x,
            &y,
            BoostConfig {
                n_estimators: 1,
                learning_rate: 1.0,
                max_depth: 2,
            },
        );
        let many = GradientBoostingRegressor::fit(
            &x,
            &y,
            BoostConfig {
                n_estimators: 100,
                learning_rate: 0.2,
                max_depth: 2,
            },
        );
        assert!(many.r_squared(&x, &y) > one.r_squared(&x, &y));
    }

    #[test]
    fn constant_target_early_stops() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![4.2; 10];
        let model = GradientBoostingRegressor::fit(&x, &y, BoostConfig::default());
        assert!(model.num_trees() < 3500, "constant fit must early-stop");
        assert!((model.predict(&[5.0]) - 4.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn rejects_empty_fit() {
        let _ = RegressionTree::fit(&[], &[], TreeConfig::default());
    }
}
