//! # lr-dse
//!
//! LightRidge-DSE: the architectural design-space exploration engine of
//! paper §4. A from-scratch gradient-boosted regression model (the `gbdt` module)
//! is fitted on `(λ, unit size, distance) → accuracy` points swept at two
//! source wavelengths, then *predicts* the design space at a new
//! wavelength, replacing a full grid search with a couple of validation
//! emulations (the paper reports ~60× fewer training runs).
//!
//! ## Example
//!
//! ```
//! use lr_dse::{AnalyticalDse, BoostConfig, DsePoint};
//!
//! // Fit the analytical model on (synthetic) explored points…
//! let points: Vec<DsePoint> = (1..20)
//!     .map(|i| DsePoint {
//!         wavelength_m: 532e-9,
//!         unit_size_m: i as f64 * 5e-6,
//!         distance_m: 0.3,
//!         accuracy: 1.0 / (1.0 + (i as f64 - 8.0).powi(2)),
//!     })
//!     .collect();
//! let dse = AnalyticalDse::fit(&points, BoostConfig { n_estimators: 50, learning_rate: 0.2, max_depth: 3 });
//! // …and query the predicted-best design.
//! let units: Vec<f64> = (1..20).map(|i| i as f64 * 5e-6).collect();
//! let best = dse.best_on_grid(532e-9, &units, &[0.3]);
//! assert!((best.unit_size_m - 4e-5).abs() < 2e-5);
//! ```

#![warn(missing_docs)]

mod engine;
mod gbdt;

pub use engine::{
    evaluate_design, evaluate_design_on, sensitivity_analysis, sweep, AnalyticalDse, DsePoint,
    DseTask, SensitivityRow,
};
pub use gbdt::{BoostConfig, GradientBoostingRegressor, RegressionTree, TreeConfig};
