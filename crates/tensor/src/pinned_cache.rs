//! Refcount-aware, generation-stamped cache map — the shared substrate of
//! the process-global FFT **plan cache** (this crate) and the diffraction
//! **transfer-function cache** (`lr-optics`).
//!
//! Both caches hand out `Arc`-shared values that live models pin for
//! their whole service life, and both must bound the garbage a DSE-style
//! sweep of single-use keys leaves behind. The rules live here once so
//! the two caches can never diverge:
//!
//! * An entry is **pinned** while anything outside the cache still holds
//!   its `Arc` (`strong_count > 1`). Pinned entries are *never* evicted —
//!   a model in service can never lose its prewarmed kernel or plan.
//! * Capacity pressure evicts the **stalest orphans** first (smallest
//!   last-hit generation among unpinned entries). When everything is
//!   pinned the cache may exceed its soft cap — in that state the live
//!   values, not the cache, are the retainers.
//! * [`PinnedCache::sweep_orphans`] drops *every* orphan: the
//!   registry-tied eviction the serving runtime runs after reclaiming a
//!   retired model.

use crate::sync::Arc;
use std::collections::HashMap;
use std::hash::Hash;

#[derive(Debug)]
struct Entry<V> {
    value: Arc<V>,
    /// Generation of the most recent hit (or the insert).
    gen: u64,
}

impl<V> Entry<V> {
    fn pinned(&self) -> bool {
        Arc::strong_count(&self.value) > 1
    }
}

/// A map of `Arc`-shared values with pinned-aware, stalest-orphan-first
/// eviction. See the module docs for the eviction rules.
#[derive(Debug)]
pub struct PinnedCache<K, V> {
    /// Monotone hit counter backing the per-entry `gen` stamps.
    gen: u64,
    map: HashMap<K, Entry<V>>,
}

impl<K, V> Default for PinnedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> PinnedCache<K, V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PinnedCache {
            gen: 0,
            map: HashMap::new(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<K: Eq + Hash, V> PinnedCache<K, V> {
    /// Looks up `key`, stamping the entry as most recently used.
    pub fn hit(&mut self, key: &K) -> Option<Arc<V>> {
        self.gen += 1;
        let gen = self.gen;
        self.map.get_mut(key).map(|e| {
            e.gen = gen;
            Arc::clone(&e.value)
        })
    }

    /// Inserts `value` under `key`. At or past `cap` entries, first evicts
    /// stalest orphans (never pinned entries — fewer than needed may go,
    /// letting the cache exceed the soft cap while everything is alive).
    pub fn insert(&mut self, key: K, value: Arc<V>, cap: usize)
    where
        K: Copy,
    {
        self.gen += 1;
        if self.map.len() >= cap {
            let overflow = self.map.len() + 1 - cap;
            self.evict_stalest_orphans(overflow);
        }
        self.map.insert(
            key,
            Entry {
                value,
                gen: self.gen,
            },
        );
    }

    /// Removes up to `count` unpinned entries, stalest hit first.
    fn evict_stalest_orphans(&mut self, count: usize)
    where
        K: Copy,
    {
        for _ in 0..count {
            let victim = self
                .map
                .iter()
                .filter(|(_, e)| !e.pinned())
                .min_by_key(|(_, e)| e.gen)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    self.map.remove(&k);
                }
                None => return,
            }
        }
    }

    /// Drops every entry that nothing outside the cache references any
    /// more, returning how many were evicted. Entries pinned by live
    /// values always survive.
    pub fn sweep_orphans(&mut self) -> usize {
        let before = self.map.len();
        self.map.retain(|_, e| e.pinned());
        before - self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_shared_value_and_misses_return_none() {
        let mut cache: PinnedCache<u32, String> = PinnedCache::new();
        assert!(cache.hit(&1).is_none());
        let v = Arc::new("a".to_string());
        cache.insert(1, Arc::clone(&v), 8);
        let hit = cache.hit(&1).unwrap();
        assert!(Arc::ptr_eq(&v, &hit));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sweep_drops_only_orphans() {
        let mut cache: PinnedCache<u32, u32> = PinnedCache::new();
        let pinned = Arc::new(7u32);
        cache.insert(1, Arc::clone(&pinned), 8);
        cache.insert(2, Arc::new(8u32), 8); // orphan: cache holds the only Arc
        assert_eq!(cache.sweep_orphans(), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.hit(&1).is_some());
        assert!(cache.hit(&2).is_none());
    }

    #[test]
    fn capacity_evicts_stalest_orphan_first_and_never_pinned() {
        let mut cache: PinnedCache<u32, u32> = PinnedCache::new();
        let pinned = Arc::new(0u32);
        cache.insert(0, Arc::clone(&pinned), 3); // pinned, oldest
        cache.insert(1, Arc::new(1u32), 3); // stalest orphan
        cache.insert(2, Arc::new(2u32), 3);
        assert!(cache.hit(&2).is_some()); // freshen 2 so 1 stays stalest
        cache.insert(3, Arc::new(3u32), 3); // at cap: must evict key 1
        assert_eq!(cache.len(), 3);
        assert!(cache.hit(&1).is_none(), "stalest orphan evicted");
        assert!(cache.hit(&0).is_some(), "pinned entry survives");
        // All remaining pinned/held: cap overflow is tolerated.
        let keep2 = cache.hit(&2).unwrap();
        let keep3 = cache.hit(&3).unwrap();
        cache.insert(4, Arc::new(4u32), 3);
        assert_eq!(cache.len(), 4, "nothing evictable: soft cap exceeded");
        drop((keep2, keep3));
    }
}
