//! Batch and kernel parallelism on a persistent worker pool.
//!
//! DONN training parallelizes naturally over the *batch* dimension: each
//! sample's forward/backward pass is independent given shared read-only
//! parameters. Earlier revisions spawned a fresh set of scoped threads
//! (crossbeam) on every [`par_map`] call, which costs two syscalls plus a
//! stack allocation per worker per batch — measurable at emulation batch
//! rates. This module instead keeps one **lazily-initialized persistent
//! worker pool** for the whole process:
//!
//! * Workers are spawned once, on the first parallel call, and then sleep
//!   on a condvar between jobs.
//! * A job is `(closure, atomic index, length)`; workers and the calling
//!   thread race on the atomic to claim indices (work stealing over an
//!   atomic counter), so imbalanced items self-balance.
//! * The caller always participates, clears the job, and blocks until every
//!   worker has retired before returning, which is what makes lending
//!   stack-borrowing closures to `'static` worker threads sound.
//! * Nested parallel calls (from inside a worker, or from inside an already
//!   parallel region on the caller) degrade to sequential execution instead
//!   of deadlocking; the FFT row/column loops rely on this when invoked
//!   under batch parallelism.
//! * Concurrent **top-level** callers serialize on the single job slot:
//!   the loser blocks until the slot frees and then runs its own job on the
//!   pool. A long-lived dispatcher thread (the `lr-serve` micro-batcher)
//!   can therefore submit batch after batch and always gets pool
//!   parallelism, instead of being demoted to a sequential loop whenever
//!   another thread happens to be mid-job. The flip side is head-of-line
//!   blocking: a waiter stalls for the full duration of the current job,
//!   so co-scheduling latency-sensitive serving with long training jobs
//!   in one process wants pool partitioning (ROADMAP open item).
//!
//! Results are written by item index, so `par_map` output is **identical
//! for any thread count** — determinism is covered by the test suite.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Number of worker threads used by [`par_map`] and friends (callers plus
/// pool workers).
///
/// Defaults to the machine's available parallelism; override with
/// [`set_threads`] (the single-thread setting is the "CPU baseline"
/// configuration in the runtime benches).
pub fn threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count (`0` restores the default).
pub fn set_threads(n: usize) {
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
}

thread_local! {
    /// True while this thread is executing inside a parallel region (either
    /// as a pool worker or as a caller driving a job). Nested parallel calls
    /// check it and run sequentially.
    static IN_PARALLEL_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True if the current thread is already inside a parallel region.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(|f| f.get())
}

/// Shared, lifetime-erased view of one job. The caller guarantees (by
/// blocking until `running == 0`) that these pointers outlive every use.
#[derive(Clone, Copy)]
struct Job {
    func: *const (dyn Fn(usize) + Sync),
    next: *const AtomicUsize,
    panicked: *const AtomicBool,
    len: usize,
    /// Maximum number of pool workers that may join this job.
    worker_limit: usize,
}

// SAFETY: the pointers are dereferenced only between job publication and the
// caller's running==0 barrier, during which the referents are alive.
unsafe impl Send for Job {}

struct PoolState {
    /// Bumped on every published job so sleeping workers can tell old from new.
    generation: u64,
    job: Option<Job>,
    /// Pool workers currently holding a copy of `job`.
    running: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Held for the duration of one job: the pool has a single job slot,
    /// so a second top-level caller must not publish (it would overwrite
    /// the live job and race the completion barrier). Contenders **block**
    /// until the slot frees up and then run on the pool themselves — a
    /// long-lived dispatcher thread (e.g. the `lr-serve` micro-batcher)
    /// submits jobs back to back and must not silently degrade to
    /// sequential execution whenever another top-level caller is mid-job.
    /// Blocking here is deadlock-free: the lock is only ever taken by
    /// top-level callers (nested calls short-circuit in
    /// [`must_run_sequential`] before reaching the pool), and the holder
    /// retires its job without needing any waiter to make progress.
    submission: Mutex<()>,
    /// Number of spawned worker threads (callers add one more).
    workers: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .saturating_sub(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                running: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submission: Mutex::new(()),
            workers,
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("lr-pool-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("failed to spawn pool worker");
        }
        pool
    })
}

fn lock(pool: &Pool) -> std::sync::MutexGuard<'_, PoolState> {
    pool.state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(pool: &'static Pool) {
    IN_PARALLEL_REGION.with(|f| f.set(true));
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut st = lock(pool);
            loop {
                if st.generation != seen_generation {
                    seen_generation = st.generation;
                    if let Some(job) = st.job {
                        if st.running < job.worker_limit {
                            st.running += 1;
                            break job;
                        }
                    }
                }
                st = pool
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // SAFETY: `running` was incremented under the lock, so the caller's
        // completion barrier keeps these referents alive while we run.
        let func = unsafe { &*job.func };
        let next = unsafe { &*job.next };
        let panicked = unsafe { &*job.panicked };
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= job.len {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| func(i))).is_err() {
                panicked.store(true, Ordering::Relaxed);
                // Drain the remaining indices so the job still terminates.
                next.store(job.len, Ordering::Relaxed);
                break;
            }
        }
        let mut st = lock(pool);
        st.running -= 1;
        if st.running == 0 {
            pool.done_cv.notify_all();
        }
    }
}

/// Clears the published job and blocks until no worker still holds it.
/// Runs from `Drop` so the barrier also holds when the caller's own closure
/// panics mid-job (the borrowed stack frame must not unwind away first).
struct CompletionBarrier {
    pool: &'static Pool,
}

impl Drop for CompletionBarrier {
    fn drop(&mut self) {
        let mut st = lock(self.pool);
        st.job = None;
        while st.running > 0 {
            st = self
                .pool
                .done_cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Runs `f(0..len)` with up to `extra_workers` pool threads assisting the
/// calling thread. Blocks until every index has been executed. Returns
/// whether any worker panicked.
fn run_job(len: usize, extra_workers: usize, f: &(dyn Fn(usize) + Sync)) -> bool {
    let pool = pool();
    // One job at a time: a concurrent top-level caller would overwrite the
    // job slot and have its job cancelled by our completion barrier.
    // Contended callers wait for the slot instead of degrading to a
    // sequential loop (see the `submission` field docs for why blocking is
    // sound here).
    let _submission = pool
        .submission
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let next = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    // SAFETY: lifetime erasure only; the completion barrier below (dropped
    // even on unwind) guarantees no worker touches the pointers afterwards.
    let func: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    {
        let mut st = lock(pool);
        st.generation += 1;
        st.job = Some(Job {
            func,
            next: &next,
            panicked: &panicked,
            len,
            worker_limit: extra_workers.min(pool.workers),
        });
        pool.work_cv.notify_all();
    }
    let barrier = CompletionBarrier { pool };
    IN_PARALLEL_REGION.with(|flag| flag.set(true));
    let caller_region = CallerRegionReset;
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= len {
            break;
        }
        f(i);
    }
    drop(caller_region);
    drop(barrier);
    panicked.load(Ordering::Relaxed)
}

/// Resets the caller's parallel-region flag even on unwind.
struct CallerRegionReset;

impl Drop for CallerRegionReset {
    fn drop(&mut self) {
        IN_PARALLEL_REGION.with(|flag| flag.set(false));
    }
}

/// True when a parallel call should degrade to a sequential loop.
fn must_run_sequential(len: usize) -> bool {
    len <= 1 || threads() <= 1 || in_parallel_region()
}

/// Runs `f` for every index in `0..len`, possibly in parallel on the
/// persistent pool. This is the primitive behind [`par_map`] and the FFT
/// row/column loops; `f` observes each index exactly once, in no particular
/// order.
///
/// # Panics
///
/// Propagates (as a panic) any panic raised by `f` on a worker thread.
pub fn par_for<F>(len: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if must_run_sequential(len) {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let workers = threads().min(len);
    if run_job(len, workers - 1, &f) {
        panic!("worker thread panicked");
    }
}

/// Applies `f` to every item index in `0..len`, in parallel, collecting
/// results in order.
///
/// `f` must be `Sync` because multiple worker threads call it concurrently.
/// Falls back to a sequential loop when one thread suffices. Results are
/// identical for any thread count (each index is computed exactly once and
/// written to its own slot).
pub fn par_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if must_run_sequential(len) {
        return (0..len).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..len).map(|_| None).collect();
    let out_ptr = SendPtr(out.as_mut_ptr());
    let write = |i: usize| {
        let out_ptr = &out_ptr; // capture the Sync wrapper, not the raw field
        let value = f(i);
        // SAFETY: each index i is claimed by exactly one thread via the
        // atomic work counter, so no two threads write the same slot, and
        // the vector outlives the job's completion barrier.
        unsafe {
            *out_ptr.0.add(i) = Some(value);
        }
    };
    let workers = threads().min(len);
    if run_job(len, workers - 1, &write) {
        panic!("worker thread panicked");
    }
    out.into_iter()
        .map(|v| v.expect("all slots filled"))
        .collect()
}

/// Applies `f` to chunks of `items`, mutating them in place in parallel.
pub fn par_chunks_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    if must_run_sequential(len) {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let base = SendPtr(items.as_mut_ptr());
    let apply = |i: usize| {
        let base = &base; // capture the Sync wrapper, not the raw field
                          // SAFETY: disjoint indices, claimed once each.
        let item = unsafe { &mut *base.0.add(i) };
        f(i, item);
    };
    let workers = threads().min(len);
    if run_job(len, workers - 1, &apply) {
        panic!("worker thread panicked");
    }
}

struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced at indices claimed through the
// atomic work counter, guaranteeing exclusive access per slot.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Serializes tests that mutate the process-global thread count
/// ([`set_threads`]) so they cannot race each other when the test harness
/// runs them concurrently.
#[cfg(test)]
pub(crate) fn thread_count_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let result = par_map(100, |i| i * i);
        let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_chunks_mut_updates_all() {
        let mut v = vec![0usize; 64];
        par_chunks_mut(&mut v, |i, x| *x = i * 3);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn par_for_visits_every_index_once() {
        let counts: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        par_for(counts.len(), |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn thread_override_roundtrip() {
        let _guard = thread_count_test_guard();
        let default = threads();
        assert!(default >= 1);
        set_threads(1);
        assert_eq!(threads(), 1);
        let r = par_map(16, |i| i + 1);
        assert_eq!(r[15], 16);
        set_threads(0);
        assert_eq!(threads(), default);
    }

    #[test]
    fn nested_parallel_calls_degrade_gracefully() {
        // par_map inside par_map must not deadlock: the inner call detects
        // the parallel region and runs sequentially.
        let outer = par_map(8, |i| par_map(8, move |j| i * 8 + j).iter().sum::<usize>());
        let expected: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(outer, expected);
    }

    #[test]
    fn pool_survives_many_jobs() {
        // Exercises job-generation handling: many small jobs back to back.
        for round in 0..200 {
            let v = par_map(17, move |i| i + round);
            assert_eq!(v[0], round);
            assert_eq!(v[16], 16 + round);
        }
    }

    #[test]
    fn long_lived_dispatcher_submits_repeatedly_under_contention() {
        // Regression test for the submission guard: a dedicated
        // dispatcher thread (like the lr-serve batcher) submits jobs back
        // to back while other top-level threads also submit. Contended
        // submissions must queue on the job slot — not deadlock, not lose
        // work — and every job must produce exact results.
        let _guard = thread_count_test_guard();
        set_threads(4); // force the pooled path even on single-core boxes
        let dispatcher = std::thread::spawn(|| {
            for round in 0..150usize {
                let v = par_map(33, move |i| i * 2 + round);
                assert_eq!(v[0], round);
                assert_eq!(v[32], 64 + round);
            }
        });
        let side = std::thread::spawn(|| {
            for round in 0..150usize {
                let mut buf = vec![0usize; 29];
                par_chunks_mut(&mut buf, |i, x| *x = i + round);
                assert_eq!(buf[28], 28 + round);
            }
        });
        for round in 0..150usize {
            let v = par_map(17, move |i| i + 3 * round);
            assert_eq!(v[16], 16 + 3 * round);
        }
        dispatcher.join().expect("dispatcher thread must finish");
        side.join().expect("side thread must finish");
        set_threads(0);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            par_map(64, |i| {
                assert!(i != 13, "boom");
                i
            })
        });
        assert!(result.is_err(), "panic in a parallel item must propagate");
        // The pool must still be usable afterwards.
        assert_eq!(par_map(4, |i| i), vec![0, 1, 2, 3]);
    }
}
