//! Batch parallelism helpers.
//!
//! DONN training parallelizes naturally over the *batch* dimension: each
//! sample's forward/backward pass is independent given shared read-only
//! parameters. These helpers run a closure over a batch using scoped threads
//! (crossbeam), which is how the "accelerated" LightRidge backend uses
//! multi-core CPUs (the paper's GPU backend plays the same role on CUDA).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by [`par_map`] and friends.
///
/// Defaults to the machine's available parallelism; override with
/// [`set_threads`] (the single-thread setting is the "CPU baseline"
/// configuration in the runtime benches).
pub fn threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count (`0` restores the default).
pub fn set_threads(n: usize) {
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
}

/// Applies `f` to every item index in `0..len`, in parallel, collecting
/// results in order.
///
/// `f` must be `Sync` because multiple worker threads call it concurrently.
/// Falls back to a sequential loop when one thread suffices.
pub fn par_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(len.max(1));
    if workers <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..len).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let out_ptr = SendPtr(out.as_mut_ptr());
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let out_ptr = &out_ptr;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let value = f(i);
                    // SAFETY: each index i is claimed by exactly one worker
                    // via the atomic counter, so no two threads write the
                    // same slot, and the vector outlives the scope.
                    unsafe {
                        *out_ptr.0.add(i) = Some(value);
                    }
                }
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter().map(|v| v.expect("all slots filled")).collect()
}

/// Applies `f` to chunks of `items`, mutating them in place in parallel.
pub fn par_chunks_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    let workers = threads().min(len.max(1));
    if workers <= 1 || len <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let base = SendPtr(items.as_mut_ptr());
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let base = &base;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    // SAFETY: disjoint indices, claimed once each.
                    let item = unsafe { &mut *base.0.add(i) };
                    f(i, item);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced at indices claimed through the
// atomic work counter, guaranteeing exclusive access per slot.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let result = par_map(100, |i| i * i);
        let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_chunks_mut_updates_all() {
        let mut v = vec![0usize; 64];
        par_chunks_mut(&mut v, |i, x| *x = i * 3);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn thread_override_roundtrip() {
        let default = threads();
        assert!(default >= 1);
        set_threads(1);
        assert_eq!(threads(), 1);
        let r = par_map(16, |i| i + 1);
        assert_eq!(r[15], 16);
        set_threads(0);
        assert_eq!(threads(), default);
    }
}
