//! Batch and kernel parallelism on persistent worker pools.
//!
//! DONN training parallelizes naturally over the *batch* dimension: each
//! sample's forward/backward pass is independent given shared read-only
//! parameters. Earlier revisions spawned a fresh set of scoped threads
//! (crossbeam) on every [`par_map`] call, which costs two syscalls plus a
//! stack allocation per worker per batch — measurable at emulation batch
//! rates. This module instead keeps **persistent worker pools**:
//!
//! * The lazily-initialized **process-global pool** serves [`par_for`],
//!   [`par_map`], and [`par_chunks_mut`] — training, FFT row/column loops,
//!   and anything else that does not ask for isolation.
//! * [`PoolPartition`] carves out a **dedicated, disjoint worker set** with
//!   its own job slot. Partitions never contend with the global pool or
//!   with each other, which is what lets latency-sensitive serving shards
//!   co-exist with long training jobs in one process (the head-of-line
//!   blocking the single shared job slot used to impose).
//!
//! Mechanics shared by the global pool and every partition:
//!
//! * Workers are spawned once and sleep on a condvar between jobs.
//! * A job is `(closure, atomic index, length)`; workers and the calling
//!   thread race on the atomic to claim indices (work stealing over an
//!   atomic counter), so imbalanced items self-balance.
//! * The caller always participates, clears the job, and blocks until every
//!   worker has retired before returning, which is what makes lending
//!   stack-borrowing closures to worker threads sound.
//! * Nested parallel calls (from inside a worker, or from inside an already
//!   parallel region on the caller) degrade to sequential execution instead
//!   of deadlocking; the FFT row/column loops rely on this when invoked
//!   under batch parallelism.
//! * Concurrent **top-level** callers serialize on the pool's single job
//!   slot: the loser blocks until the slot frees and then runs its own job
//!   on the pool. Callers that cannot afford an unbounded wait (a serving
//!   dispatcher sharing the global pool with training) use the bounded
//!   variants [`try_submit_for`] / [`try_par_chunks_mut_for`], which give
//!   up with [`SubmitTimeout`] when the slot stays busy past a deadline —
//!   a stuck training batch then surfaces as a shed request, not a hang.
//!
//! ## Panic containment
//!
//! A panic raised by a job closure **never kills a pool worker and never
//! wedges the pool**. Each index runs under `catch_unwind` on whichever
//! thread claimed it; the first panic marks the job poisoned and drains
//! the remaining indices so the job still terminates, the completion
//! barrier still retires every worker (workers stay parked on their
//! condvar, not dead), and the panic is re-raised **exactly once, on the
//! submitting thread** after the barrier. Callers that must survive a
//! panicking job (the serving dispatcher) wrap the *submission* in their
//! own `catch_unwind` and treat the re-raise as that job's failure; the
//! pool itself is immediately reusable for the next job either way.
//! Covered by `worker_panic_propagates_to_caller` (global pool) and
//! `partition_survives_panicking_job` (partitions).
//!
//! Results are written by item index, so `par_map` output is **identical
//! for any thread count** — determinism is covered by the test suite.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of worker threads used by [`par_map`] and friends (callers plus
/// pool workers).
///
/// Defaults to the machine's available parallelism; override with
/// [`set_threads`] (the single-thread setting is the "CPU baseline"
/// configuration in the runtime benches).
pub fn threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count (`0` restores the default).
pub fn set_threads(n: usize) {
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
}

thread_local! {
    /// True while this thread is executing inside a parallel region (either
    /// as a pool worker or as a caller driving a job). Nested parallel calls
    /// check it and run sequentially.
    static IN_PARALLEL_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True if the current thread is already inside a parallel region.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(|f| f.get())
}

/// Bounded-wait submission gave up: the pool's job slot stayed busy past
/// the caller's deadline (another top-level job — typically a long training
/// batch — still holds it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitTimeout;

impl std::fmt::Display for SubmitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool job slot stayed busy past the submission deadline")
    }
}

impl std::error::Error for SubmitTimeout {}

/// Shared, lifetime-erased view of one job. The caller guarantees (by
/// blocking until `running == 0`) that these pointers outlive every use.
#[derive(Clone, Copy)]
struct Job {
    func: *const (dyn Fn(usize) + Sync),
    next: *const AtomicUsize,
    panicked: *const AtomicBool,
    len: usize,
    /// Maximum number of pool workers that may join this job.
    worker_limit: usize,
}

// SAFETY: the pointers are dereferenced only between job publication and the
// caller's running==0 barrier, during which the referents are alive.
unsafe impl Send for Job {}

struct PoolState {
    /// Bumped on every published job so sleeping workers can tell old from new.
    generation: u64,
    job: Option<Job>,
    /// Pool workers currently holding a copy of `job`.
    running: usize,
    /// Set when the owning [`PoolPartition`] is dropped; workers exit.
    shutdown: bool,
}

/// One pool instance: the process-global pool and every [`PoolPartition`]
/// are each a `PoolCore` with their own workers and job slot.
struct PoolCore {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// True while a job owns this pool's single job slot: a second
    /// top-level caller must not publish (it would overwrite the live job
    /// and race the completion barrier). Contenders **block** on
    /// `submission_cv` until the slot frees up (or their bounded-wait
    /// deadline passes) and then run on the pool themselves — a long-lived
    /// dispatcher thread (e.g. the `lr-serve` micro-batcher) submits jobs
    /// back to back and must not silently degrade to sequential execution
    /// whenever another top-level caller is mid-job. Blocking here is
    /// deadlock-free: the slot is only ever taken by top-level callers
    /// (nested calls short-circuit in [`must_run_sequential`] before
    /// reaching the pool), and the holder retires its job without needing
    /// any waiter to make progress.
    submission: Mutex<bool>,
    submission_cv: Condvar,
    /// Number of spawned worker threads (callers add one more).
    workers: usize,
}

impl PoolCore {
    fn new(workers: usize) -> Self {
        PoolCore {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                running: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submission: Mutex::new(false),
            submission_cv: Condvar::new(),
            workers,
        }
    }

    /// Claims the job slot, waiting at most `timeout` (forever when
    /// `None`). Returns whether the slot was claimed.
    fn acquire_submission(&self, timeout: Option<Duration>) -> bool {
        let mut busy = self
            .submission
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match timeout {
            None => {
                while *busy {
                    busy = self
                        .submission_cv
                        .wait(busy)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
            Some(timeout) => {
                let deadline = Instant::now() + timeout;
                while *busy {
                    let now = Instant::now();
                    if now >= deadline {
                        return false;
                    }
                    let (guard, _) = self
                        .submission_cv
                        .wait_timeout(busy, deadline - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    busy = guard;
                }
            }
        }
        *busy = true;
        true
    }

    fn release_submission(&self) {
        let mut busy = self
            .submission
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *busy = false;
        drop(busy);
        self.submission_cv.notify_one();
    }
}

fn global_pool() -> &'static Arc<PoolCore> {
    static POOL: OnceLock<Arc<PoolCore>> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .saturating_sub(1);
        let core = Arc::new(PoolCore::new(workers));
        for i in 0..workers {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name(format!("lr-pool-{i}"))
                .spawn(move || worker_loop(core))
                .expect("failed to spawn pool worker");
        }
        core
    })
}

fn lock(core: &PoolCore) -> std::sync::MutexGuard<'_, PoolState> {
    core.state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(core: Arc<PoolCore>) {
    IN_PARALLEL_REGION.with(|f| f.set(true));
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut st = lock(&core);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen_generation {
                    seen_generation = st.generation;
                    if let Some(job) = st.job {
                        if st.running < job.worker_limit {
                            st.running += 1;
                            break job;
                        }
                    }
                }
                st = core
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // SAFETY: `running` was incremented under the lock, so the caller's
        // completion barrier keeps these referents alive while we run.
        let func = unsafe { &*job.func };
        // SAFETY: same lifetime argument as `func` above.
        let next = unsafe { &*job.next };
        // SAFETY: same lifetime argument as `func` above.
        let panicked = unsafe { &*job.panicked };
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= job.len {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| func(i))).is_err() {
                panicked.store(true, Ordering::Relaxed);
                // Drain the remaining indices so the job still terminates.
                next.store(job.len, Ordering::Relaxed);
                break;
            }
        }
        let mut st = lock(&core);
        st.running -= 1;
        if st.running == 0 {
            core.done_cv.notify_all();
        }
    }
}

/// Clears the published job and blocks until no worker still holds it.
/// Runs from `Drop` so the barrier also holds when the caller's own closure
/// panics mid-job (the borrowed stack frame must not unwind away first).
struct CompletionBarrier<'a> {
    core: &'a PoolCore,
}

impl Drop for CompletionBarrier<'_> {
    fn drop(&mut self) {
        let mut st = lock(self.core);
        st.job = None;
        while st.running > 0 {
            st = self
                .core
                .done_cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Frees the job slot on scope exit (including unwind).
struct SubmissionGuard<'a> {
    core: &'a PoolCore,
}

impl Drop for SubmissionGuard<'_> {
    fn drop(&mut self) {
        self.core.release_submission();
    }
}

/// Runs `f(0..len)` on `core` with up to `extra_workers` pool threads
/// assisting the calling thread. Blocks until every index has been
/// executed. `Ok` carries whether any worker panicked; `Err(SubmitTimeout)`
/// means the job slot could not be claimed within `timeout` and **no index
/// was executed**.
fn run_job(
    core: &PoolCore,
    len: usize,
    extra_workers: usize,
    timeout: Option<Duration>,
    f: &(dyn Fn(usize) + Sync),
) -> Result<bool, SubmitTimeout> {
    // One job at a time: a concurrent top-level caller would overwrite the
    // job slot and have its job cancelled by our completion barrier.
    // Contended callers wait for the slot (bounded when `timeout` is set)
    // instead of degrading to a sequential loop (see the `submission` field
    // docs for why blocking is sound here).
    if !core.acquire_submission(timeout) {
        return Err(SubmitTimeout);
    }
    let _submission = SubmissionGuard { core };
    let next = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    // SAFETY: lifetime erasure only; the completion barrier below (dropped
    // even on unwind) guarantees no worker touches the pointers afterwards.
    let func: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    {
        let mut st = lock(core);
        st.generation += 1;
        st.job = Some(Job {
            func,
            next: &next,
            panicked: &panicked,
            len,
            worker_limit: extra_workers.min(core.workers),
        });
        core.work_cv.notify_all();
    }
    let barrier = CompletionBarrier { core };
    IN_PARALLEL_REGION.with(|flag| flag.set(true));
    let caller_region = CallerRegionReset;
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= len {
            break;
        }
        f(i);
    }
    drop(caller_region);
    drop(barrier);
    Ok(panicked.load(Ordering::Relaxed))
}

/// Resets the caller's parallel-region flag even on unwind.
struct CallerRegionReset;

impl Drop for CallerRegionReset {
    fn drop(&mut self) {
        IN_PARALLEL_REGION.with(|flag| flag.set(false));
    }
}

/// True when a parallel call should degrade to a sequential loop.
fn must_run_sequential(len: usize) -> bool {
    len <= 1 || threads() <= 1 || in_parallel_region()
}

/// Drives `f(0..len)` on `core` with `total_threads` participants (caller
/// included), propagating worker panics. The caller has already ruled out
/// the sequential path.
fn pooled_for(
    core: &PoolCore,
    total_threads: usize,
    timeout: Option<Duration>,
    len: usize,
    f: &(dyn Fn(usize) + Sync),
) -> Result<(), SubmitTimeout> {
    let workers = total_threads.min(len);
    if run_job(core, len, workers - 1, timeout, f)? {
        panic!("worker thread panicked");
    }
    Ok(())
}

/// `par_chunks_mut` body shared by the global pool and partitions.
fn pooled_chunks_mut<T, F>(
    core: &PoolCore,
    total_threads: usize,
    timeout: Option<Duration>,
    items: &mut [T],
    f: F,
) -> Result<(), SubmitTimeout>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    let base = SendPtr(items.as_mut_ptr());
    let apply = |i: usize| {
        let base = &base; // capture the Sync wrapper, not the raw field
                          // SAFETY: disjoint indices, claimed once each.
        let item = unsafe { &mut *base.0.add(i) };
        f(i, item);
    };
    pooled_for(core, total_threads, timeout, len, &apply)
}

/// `par_map` body shared by the global pool and partitions.
fn pooled_map<T, F>(
    core: &PoolCore,
    total_threads: usize,
    len: usize,
    f: F,
) -> Result<Vec<T>, SubmitTimeout>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..len).map(|_| None).collect();
    let out_ptr = SendPtr(out.as_mut_ptr());
    let write = |i: usize| {
        let out_ptr = &out_ptr; // capture the Sync wrapper, not the raw field
        let value = f(i);
        // SAFETY: each index i is claimed by exactly one thread via the
        // atomic work counter, so no two threads write the same slot, and
        // the vector outlives the job's completion barrier.
        unsafe {
            *out_ptr.0.add(i) = Some(value);
        }
    };
    pooled_for(core, total_threads, None, len, &write)?;
    Ok(out
        .into_iter()
        .map(|v| v.expect("all slots filled"))
        .collect())
}

/// Runs `f` for every index in `0..len`, possibly in parallel on the
/// persistent global pool. This is the primitive behind [`par_map`] and the
/// FFT row/column loops; `f` observes each index exactly once, in no
/// particular order.
///
/// # Panics
///
/// Propagates (as a panic) any panic raised by `f` on a worker thread.
pub fn par_for<F>(len: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if must_run_sequential(len) {
        for i in 0..len {
            f(i);
        }
        return;
    }
    pooled_for(global_pool(), threads(), None, len, &f)
        .expect("unbounded submission cannot time out");
}

/// Like [`par_for`], but waits at most `timeout` for the global pool's job
/// slot. On [`SubmitTimeout`] **no index has been executed** — the caller
/// decides whether to retry, degrade, or shed the work. Degrades to an
/// inline sequential loop (always `Ok`) whenever [`par_for`] would.
pub fn try_submit_for<F>(timeout: Duration, len: usize, f: F) -> Result<(), SubmitTimeout>
where
    F: Fn(usize) + Sync,
{
    if must_run_sequential(len) {
        for i in 0..len {
            f(i);
        }
        return Ok(());
    }
    pooled_for(global_pool(), threads(), Some(timeout), len, &f)
}

/// Applies `f` to every item index in `0..len`, in parallel, collecting
/// results in order.
///
/// `f` must be `Sync` because multiple worker threads call it concurrently.
/// Falls back to a sequential loop when one thread suffices. Results are
/// identical for any thread count (each index is computed exactly once and
/// written to its own slot).
pub fn par_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if must_run_sequential(len) {
        return (0..len).map(f).collect();
    }
    pooled_map(global_pool(), threads(), len, f).expect("unbounded submission cannot time out")
}

/// Applies `f` to chunks of `items`, mutating them in place in parallel.
pub fn par_chunks_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    if must_run_sequential(len) {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    pooled_chunks_mut(global_pool(), threads(), None, items, f)
        .expect("unbounded submission cannot time out");
}

/// Like [`par_chunks_mut`], but waits at most `timeout` for the global
/// pool's job slot. On [`SubmitTimeout`] **no item has been touched**.
/// Degrades to an inline sequential loop (always `Ok`) whenever
/// [`par_chunks_mut`] would.
pub fn try_par_chunks_mut_for<T, F>(
    timeout: Duration,
    items: &mut [T],
    f: F,
) -> Result<(), SubmitTimeout>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    if must_run_sequential(len) {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return Ok(());
    }
    pooled_chunks_mut(global_pool(), threads(), Some(timeout), items, f)
}

/// A **dedicated, disjoint partition** of worker threads with its own job
/// slot, isolated from the global pool and from every other partition.
///
/// Jobs submitted to a partition never contend with — and are never blocked
/// by — jobs on the global pool or sibling partitions; the `lr-serve`
/// sharded runtime gives each serving shard one partition so a long
/// training batch on the global pool cannot head-of-line-block request
/// batches. Worker threads are spawned at construction and joined on
/// [`Drop`].
///
/// A partition of width 0 owns no threads: its `par_*` methods run inline
/// on the caller (the right configuration for single-core boxes and the
/// zero-allocation contract tests).
pub struct PoolPartition {
    core: Arc<PoolCore>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for PoolPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolPartition")
            .field("width", &self.core.workers)
            .finish()
    }
}

impl PoolPartition {
    /// Spawns a partition owning `workers` dedicated threads (callers add
    /// one more when driving a job).
    pub fn new(workers: usize) -> PoolPartition {
        let core = Arc::new(PoolCore::new(workers));
        let handles = (0..workers)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("lr-part-{i}"))
                    .spawn(move || worker_loop(core))
                    .expect("failed to spawn partition worker")
            })
            .collect();
        PoolPartition { core, handles }
    }

    /// Number of dedicated worker threads (0 means all work runs inline on
    /// the submitting thread).
    pub fn width(&self) -> usize {
        self.core.workers
    }

    /// Threads that participate in one of this partition's jobs: the
    /// dedicated workers plus the submitting caller.
    pub fn threads(&self) -> usize {
        self.core.workers + 1
    }

    /// True when a call on this partition should degrade to a sequential
    /// inline loop.
    fn must_run_sequential(&self, len: usize) -> bool {
        len <= 1 || self.core.workers == 0 || in_parallel_region()
    }

    /// Partition-local [`par_for`].
    pub fn par_for<F>(&self, len: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.must_run_sequential(len) {
            for i in 0..len {
                f(i);
            }
            return;
        }
        pooled_for(&self.core, self.threads(), None, len, &f)
            .expect("unbounded submission cannot time out");
    }

    /// Partition-local [`par_map`].
    pub fn par_map<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.must_run_sequential(len) {
            return (0..len).map(f).collect();
        }
        pooled_map(&self.core, self.threads(), len, f)
            .expect("unbounded submission cannot time out")
    }

    /// Partition-local [`par_chunks_mut`].
    pub fn par_chunks_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let len = items.len();
        if self.must_run_sequential(len) {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        pooled_chunks_mut(&self.core, self.threads(), None, items, f)
            .expect("unbounded submission cannot time out");
    }

    /// Partition-local [`try_par_chunks_mut_for`]: bounded wait on this
    /// partition's job slot. On [`SubmitTimeout`] **no item has been
    /// touched**.
    pub fn try_par_chunks_mut_for<T, F>(
        &self,
        timeout: Duration,
        items: &mut [T],
        f: F,
    ) -> Result<(), SubmitTimeout>
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let len = items.len();
        if self.must_run_sequential(len) {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return Ok(());
        }
        pooled_chunks_mut(&self.core, self.threads(), Some(timeout), items, f)
    }
}

impl Drop for PoolPartition {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.core);
            st.shutdown = true;
        }
        self.core.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced at indices claimed through the
// atomic work counter, guaranteeing exclusive access per slot.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: same per-slot exclusivity argument as `Send` above.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Serializes tests that mutate the process-global thread count
/// ([`set_threads`]) so they cannot race each other when the test harness
/// runs them concurrently.
#[cfg(test)]
pub(crate) fn thread_count_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential() {
        let result = par_map(100, |i| i * i);
        let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_chunks_mut_updates_all() {
        let mut v = vec![0usize; 64];
        par_chunks_mut(&mut v, |i, x| *x = i * 3);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn par_for_visits_every_index_once() {
        let counts: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        par_for(counts.len(), |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn thread_override_roundtrip() {
        let _guard = thread_count_test_guard();
        let default = threads();
        assert!(default >= 1);
        set_threads(1);
        assert_eq!(threads(), 1);
        let r = par_map(16, |i| i + 1);
        assert_eq!(r[15], 16);
        set_threads(0);
        assert_eq!(threads(), default);
    }

    #[test]
    fn nested_parallel_calls_degrade_gracefully() {
        // par_map inside par_map must not deadlock: the inner call detects
        // the parallel region and runs sequentially.
        let outer = par_map(8, |i| par_map(8, move |j| i * 8 + j).iter().sum::<usize>());
        let expected: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(outer, expected);
    }

    #[test]
    fn pool_survives_many_jobs() {
        // Exercises job-generation handling: many small jobs back to back.
        for round in 0..200 {
            let v = par_map(17, move |i| i + round);
            assert_eq!(v[0], round);
            assert_eq!(v[16], 16 + round);
        }
    }

    #[test]
    fn long_lived_dispatcher_submits_repeatedly_under_contention() {
        // Regression test for the submission guard: a dedicated
        // dispatcher thread (like the lr-serve batcher) submits jobs back
        // to back while other top-level threads also submit. Contended
        // submissions must queue on the job slot — not deadlock, not lose
        // work — and every job must produce exact results.
        let _guard = thread_count_test_guard();
        set_threads(4); // force the pooled path even on single-core boxes
        let dispatcher = std::thread::spawn(|| {
            for round in 0..150usize {
                let v = par_map(33, move |i| i * 2 + round);
                assert_eq!(v[0], round);
                assert_eq!(v[32], 64 + round);
            }
        });
        let side = std::thread::spawn(|| {
            for round in 0..150usize {
                let mut buf = vec![0usize; 29];
                par_chunks_mut(&mut buf, |i, x| *x = i + round);
                assert_eq!(buf[28], 28 + round);
            }
        });
        for round in 0..150usize {
            let v = par_map(17, |i| i + 3 * round);
            assert_eq!(v[16], 16 + 3 * round);
        }
        dispatcher.join().expect("dispatcher thread must finish");
        side.join().expect("side thread must finish");
        set_threads(0);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            par_map(64, |i| {
                assert!(i != 13, "boom");
                i
            })
        });
        assert!(result.is_err(), "panic in a parallel item must propagate");
        // The pool must still be usable afterwards.
        assert_eq!(par_map(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn partition_runs_jobs_and_matches_sequential() {
        let part = PoolPartition::new(2);
        assert_eq!(part.width(), 2);
        let v = part.par_map(37, |i| i * 5);
        let expected: Vec<usize> = (0..37).map(|i| i * 5).collect();
        assert_eq!(v, expected);
        let mut buf = vec![0usize; 23];
        part.par_chunks_mut(&mut buf, |i, x| *x = i + 1);
        assert!(buf.iter().enumerate().all(|(i, &x)| x == i + 1));
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        part.par_for(counts.len(), |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn partition_survives_panicking_job() {
        // One panicking job must re-raise exactly once on the submitter
        // and leave the partition's workers alive and parked: the next
        // jobs run normally on the same partition.
        let part = PoolPartition::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            part.par_for(32, |i| {
                assert!(i != 17, "boom");
            });
        }));
        assert!(result.is_err(), "panic in a partition item must propagate");
        for _ in 0..3 {
            let v = part.par_map(16, |i| i + 1);
            assert_eq!(v, (1..=16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_width_partition_runs_inline() {
        let part = PoolPartition::new(0);
        assert_eq!(part.width(), 0);
        assert_eq!(
            part.par_map(9, |i| i * i),
            (0..9).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn partitions_are_isolated_from_each_other() {
        // A slow job on partition A must not delay a job on partition B:
        // B's jobs complete while A's job is still running.
        let a = PoolPartition::new(1);
        let b = PoolPartition::new(1);
        let release = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let slow = scope.spawn(|| {
                a.par_for(2, |_| {
                    while !release.load(Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                });
            });
            // While A is blocked, B must make progress.
            for round in 0..20usize {
                let v = b.par_map(8, move |i| i + round);
                assert_eq!(v[7], 7 + round);
            }
            release.store(true, Ordering::Relaxed);
            slow.join().expect("slow partition job must finish");
        });
    }

    #[test]
    fn partition_is_isolated_from_global_pool() {
        let _guard = thread_count_test_guard();
        set_threads(4); // force the global pooled path even on 1 core
        let part = PoolPartition::new(1);
        let release = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let global_job = scope.spawn(|| {
                par_for(4, |_| {
                    while !release.load(Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                });
            });
            // The global job slot is held indefinitely; partition jobs must
            // still complete immediately.
            for round in 0..20usize {
                let v = part.par_map(8, move |i| i * 2 + round);
                assert_eq!(v[7], 14 + round);
            }
            release.store(true, Ordering::Relaxed);
            global_job.join().expect("global job must finish");
        });
        set_threads(0);
    }

    #[test]
    fn try_submit_times_out_while_slot_is_held_then_recovers() {
        let _guard = thread_count_test_guard();
        set_threads(4); // force the pooled path even on single-core boxes
        let release = AtomicBool::new(false);
        let holder_started = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let holder = scope.spawn(|| {
                par_for(4, |_| {
                    holder_started.store(true, Ordering::Relaxed);
                    while !release.load(Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                });
            });
            while !holder_started.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
            // The slot is busy: a bounded-wait submission must give up
            // without running anything.
            let touched = AtomicUsize::new(0);
            let result = try_submit_for(Duration::from_millis(20), 8, |_| {
                touched.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(result, Err(SubmitTimeout));
            assert_eq!(
                touched.load(Ordering::Relaxed),
                0,
                "timed-out job must not run"
            );

            let mut items = vec![0usize; 8];
            let chunks = try_par_chunks_mut_for(Duration::from_millis(20), &mut items, |i, x| {
                *x = i;
            });
            assert_eq!(chunks, Err(SubmitTimeout));
            assert!(
                items.iter().all(|&x| x == 0),
                "timed-out job must not touch items"
            );

            release.store(true, Ordering::Relaxed);
            holder.join().expect("holder must finish");
            // Slot free again: bounded submission now succeeds.
            let ok = try_par_chunks_mut_for(Duration::from_millis(500), &mut items, |i, x| {
                *x = i + 1;
            });
            assert_eq!(ok, Ok(()));
            assert!(items.iter().enumerate().all(|(i, &x)| x == i + 1));
        });
        set_threads(0);
    }

    #[test]
    fn dropping_partition_joins_workers() {
        let part = PoolPartition::new(3);
        let v = part.par_map(16, |i| i);
        assert_eq!(v.len(), 16);
        drop(part); // must not hang
    }
}
