//! Batched complex fields: `B` co-resident planes in one buffer.
//!
//! [`FieldBatch`] is the batched counterpart of [`Field`](crate::Field): a
//! plane-major (structure-of-arrays) buffer holding `B` complex `rows ×
//! cols` wavefields contiguously, so batched kernels stream one allocation
//! instead of chasing `B` separate `Field`s. Every plane is itself a
//! contiguous row-major field, which is what lets the batched FFT and
//! propagation entry points run the *same* per-plane kernels as the
//! per-sample paths — batched and per-sample execution are bit-identical
//! by construction.
//!
//! A batch distinguishes **capacity** (planes allocated up front) from the
//! **active** plane count ([`FieldBatch::batch`]): steady-state users —
//! the serving runtime's per-worker workspaces, the training shards —
//! allocate capacity once and re-activate a prefix per call, so varying
//! batch sizes stay allocation-free. Growing past capacity reallocates and
//! is intended for setup code only.

use crate::complex::Complex64;
use crate::field::Field;
use std::fmt;

/// A batch of `B` dense row-major complex planes sharing one buffer.
///
/// # Examples
///
/// ```
/// use lr_tensor::{Complex64, Field, FieldBatch};
/// let mut batch = FieldBatch::zeros(3, 4, 4);
/// batch.copy_plane_from(1, &Field::ones(4, 4));
/// assert_eq!(batch.plane(1)[0], Complex64::ONE);
/// assert_eq!(batch.plane(0)[0], Complex64::ZERO);
/// ```
#[derive(Clone, PartialEq)]
pub struct FieldBatch {
    /// Active plane count (`≤ capacity`).
    batch: usize,
    /// Planes allocated in `data`.
    capacity: usize,
    rows: usize,
    cols: usize,
    /// Plane-major buffer: plane `b` occupies
    /// `data[b·rows·cols .. (b+1)·rows·cols]`.
    data: Vec<Complex64>,
}

impl FieldBatch {
    /// Creates a batch of `batch` zeroed planes (capacity = `batch`).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn zeros(batch: usize, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "plane dimensions must be nonzero");
        FieldBatch {
            batch,
            capacity: batch,
            rows,
            cols,
            data: vec![Complex64::ZERO; batch * rows * cols],
        }
    }

    /// Creates an *empty* batch (0 active planes) with room for `capacity`
    /// planes. The workspace-building entry point: allocate once at setup,
    /// then [`FieldBatch::set_batch`] per call without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn with_capacity(capacity: usize, rows: usize, cols: usize) -> Self {
        let mut b = Self::zeros(capacity, rows, cols);
        b.batch = 0;
        b
    }

    /// Number of active planes.
    #[inline(always)]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Planes allocated (active planes never exceed this without a regrow).
    #[inline(always)]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows per plane.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns per plane.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` of one plane.
    #[inline(always)]
    pub fn plane_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Samples per plane.
    #[inline(always)]
    pub fn plane_len(&self) -> usize {
        self.rows * self.cols
    }

    /// Total active samples (`batch · rows · cols`).
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.batch * self.plane_len()
    }

    /// True if no plane is active.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.batch == 0
    }

    /// Sets the active plane count. Stays allocation-free while
    /// `batch ≤ capacity`; growing past capacity reallocates the buffer
    /// (setup-time only — steady-state callers size capacity up front).
    pub fn set_batch(&mut self, batch: usize) {
        if batch > self.capacity {
            self.data.resize(batch * self.plane_len(), Complex64::ZERO);
            self.capacity = batch;
        }
        self.batch = batch;
    }

    /// Immutable view of active plane `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not an active plane.
    #[inline]
    pub fn plane(&self, b: usize) -> &[Complex64] {
        assert!(b < self.batch, "plane index out of range");
        let n = self.plane_len();
        &self.data[b * n..(b + 1) * n]
    }

    /// Mutable view of active plane `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not an active plane.
    #[inline]
    pub fn plane_mut(&mut self, b: usize) -> &mut [Complex64] {
        assert!(b < self.batch, "plane index out of range");
        let n = self.plane_len();
        &mut self.data[b * n..(b + 1) * n]
    }

    /// Iterates the active planes.
    pub fn planes(&self) -> impl Iterator<Item = &[Complex64]> {
        self.data.chunks_exact(self.plane_len()).take(self.batch)
    }

    /// Iterates the active planes mutably.
    pub fn planes_mut(&mut self) -> impl Iterator<Item = &mut [Complex64]> {
        let n = self.plane_len();
        self.data.chunks_exact_mut(n).take(self.batch)
    }

    /// Immutable view of the whole active buffer (plane-major).
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data[..self.len()]
    }

    /// Mutable view of the whole active buffer (plane-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        let n = self.len();
        &mut self.data[..n]
    }

    /// Copies a [`Field`] into active plane `b` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `b` is not active.
    pub fn copy_plane_from(&mut self, b: usize, src: &Field) {
        assert_eq!(
            src.shape(),
            (self.rows, self.cols),
            "copy_plane_from: shape mismatch"
        );
        self.plane_mut(b).copy_from_slice(src.as_slice());
    }

    /// Copies active plane `b` into a [`Field`] without allocating.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `b` is not active.
    pub fn copy_plane_to(&self, b: usize, dst: &mut Field) {
        assert_eq!(
            dst.shape(),
            (self.rows, self.cols),
            "copy_plane_to: shape mismatch"
        );
        dst.as_mut_slice().copy_from_slice(self.plane(b));
    }

    /// Copies every active plane from another batch. Allocation-free while
    /// `src.batch() ≤ capacity`; a larger source grows this batch's buffer
    /// (via [`FieldBatch::set_batch`] — setup-time only, like any capacity
    /// growth under the workspace contract).
    ///
    /// # Panics
    ///
    /// Panics if plane shapes differ.
    pub fn copy_from(&mut self, src: &FieldBatch) {
        assert_eq!(
            src.plane_shape(),
            (self.rows, self.cols),
            "copy_from: plane shape mismatch"
        );
        self.set_batch(src.batch());
        self.as_mut_slice().copy_from_slice(src.as_slice());
    }

    /// Re-encodes real amplitudes into active plane `b` (phase zero) — the
    /// batched counterpart of [`Field::set_amplitudes`].
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() != rows·cols` or `b` is not active.
    pub fn set_plane_amplitudes(&mut self, b: usize, amplitudes: &[f64]) {
        let plane = self.plane_mut(b);
        assert_eq!(
            amplitudes.len(),
            plane.len(),
            "amplitude buffer length must equal rows*cols"
        );
        for (z, &a) in plane.iter_mut().zip(amplitudes) {
            *z = Complex64::from_real(a);
        }
    }

    /// Hadamard-multiplies **every active plane** by one `rows × cols`
    /// field (`plane_b ⊙= rhs` for all `b`) — the one-pass batched
    /// transfer-function application.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` does not match the plane shape.
    pub fn hadamard_broadcast_assign(&mut self, rhs: &Field) {
        assert_eq!(
            rhs.shape(),
            (self.rows, self.cols),
            "hadamard_broadcast_assign: plane shape mismatch"
        );
        let r = rhs.as_slice();
        for plane in self.planes_mut() {
            for (a, &b) in plane.iter_mut().zip(r) {
                *a *= b;
            }
        }
    }

    /// Hadamard-multiplies every active plane by the conjugate of one
    /// field — the batched adjoint of
    /// [`FieldBatch::hadamard_broadcast_assign`].
    ///
    /// # Panics
    ///
    /// Panics if `rhs` does not match the plane shape.
    pub fn hadamard_conj_broadcast_assign(&mut self, rhs: &Field) {
        assert_eq!(
            rhs.shape(),
            (self.rows, self.cols),
            "hadamard_conj_broadcast_assign: plane shape mismatch"
        );
        let r = rhs.as_slice();
        for plane in self.planes_mut() {
            for (a, &b) in plane.iter_mut().zip(r) {
                *a *= b.conj();
            }
        }
    }

    /// Applies `f` to every active sample in place.
    pub fn map_inplace(&mut self, f: impl Fn(Complex64) -> Complex64) {
        for z in self.as_mut_slice() {
            *z = f(*z);
        }
    }

    /// Heap bytes held by the plane buffer (capacity, not active length) —
    /// feeds the serving runtime's resident-memory accounting.
    pub fn resident_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<Complex64>()
    }

    /// True if every active sample is finite.
    pub fn is_finite(&self) -> bool {
        self.as_slice().iter().all(|z| z.is_finite())
    }
}

impl fmt::Debug for FieldBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FieldBatch({}x{}x{}, capacity={})",
            self.batch, self.rows, self.cols, self.capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planes_are_disjoint_and_plane_major() {
        let mut b = FieldBatch::zeros(3, 2, 2);
        b.plane_mut(1)[3] = Complex64::new(7.0, 0.0);
        assert_eq!(b.as_slice()[7].re, 7.0);
        assert_eq!(b.plane(0)[3], Complex64::ZERO);
        assert_eq!(b.plane(2)[3], Complex64::ZERO);
    }

    #[test]
    fn set_batch_within_capacity_keeps_buffer() {
        let mut b = FieldBatch::with_capacity(4, 2, 3);
        assert_eq!(b.batch(), 0);
        let ptr = b.data.as_ptr();
        b.set_batch(4);
        assert_eq!(b.batch(), 4);
        assert_eq!(b.data.as_ptr(), ptr, "no reallocation within capacity");
        b.set_batch(2);
        assert_eq!(b.len(), 12);
        b.set_batch(6);
        assert_eq!(b.capacity(), 6, "growing past capacity reallocates");
    }

    #[test]
    fn field_roundtrip_per_plane() {
        let f = Field::from_fn(3, 4, |r, c| Complex64::new(r as f64, c as f64));
        let mut b = FieldBatch::zeros(2, 3, 4);
        b.copy_plane_from(1, &f);
        let mut out = Field::zeros(3, 4);
        b.copy_plane_to(1, &mut out);
        assert_eq!(out, f);
    }

    #[test]
    fn broadcast_hadamard_matches_per_plane() {
        let m = Field::from_fn(2, 2, |r, c| Complex64::new(1.0 + r as f64, c as f64));
        let mut b = FieldBatch::zeros(2, 2, 2);
        b.map_inplace(|_| Complex64::new(2.0, -1.0));
        let mut expect = Field::filled(2, 2, Complex64::new(2.0, -1.0));
        expect.hadamard_assign(&m);
        b.hadamard_broadcast_assign(&m);
        for plane in b.planes() {
            assert_eq!(plane, expect.as_slice());
        }
        b.hadamard_conj_broadcast_assign(&m);
        expect.hadamard_conj_assign(&m);
        for plane in b.planes() {
            assert_eq!(plane, expect.as_slice());
        }
    }

    #[test]
    fn amplitudes_encode_phase_zero() {
        let mut b = FieldBatch::zeros(1, 2, 2);
        b.set_plane_amplitudes(0, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.plane(0)[2], Complex64::from_real(3.0));
    }

    #[test]
    #[should_panic(expected = "plane index")]
    fn inactive_plane_access_panics() {
        let b = FieldBatch::with_capacity(3, 2, 2);
        let _ = b.plane(0);
    }
}
