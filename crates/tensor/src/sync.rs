//! Swappable sync layer: `std::sync` normally, the vendored model
//! checker under `RUSTFLAGS="--cfg loom"`.
//!
//! [`crate::PinnedCache`]'s only concurrency surface is
//! `Arc::strong_count` (pin detection), so `Arc` is the one primitive
//! routed through the facade; the FFT plan cache and the worker pool
//! keep `parking_lot`/`std` directly — their statics cannot be
//! iteration-scoped, which puts them outside any model's reach
//! (`docs/CONCURRENCY.md` records that boundary).

#[cfg(loom)]
pub(crate) use loom::sync::Arc;
#[cfg(not(loom))]
pub(crate) use std::sync::Arc;
