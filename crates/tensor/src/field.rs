//! Two-dimensional complex-valued field.
//!
//! [`Field`] is the workhorse data structure of the framework: a dense,
//! row-major `rows × cols` array of [`Complex64`] samples representing a
//! scalar optical wavefield `U(x, y)` on a uniform grid. All optics kernels
//! (diffraction, phase modulation, detection) operate on `Field`s, and the
//! training engine stores activations and gradients as `Field`s.

use crate::complex::Complex64;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense, row-major 2-D complex array.
///
/// # Examples
///
/// ```
/// use lr_tensor::{Complex64, Field};
/// let mut f = Field::zeros(4, 4);
/// f[(1, 2)] = Complex64::new(1.0, 0.0);
/// assert_eq!(f.total_power(), 1.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Field {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl Field {
    /// Creates a field of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "field dimensions must be nonzero");
        Field {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates a field filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: Complex64) -> Self {
        assert!(rows > 0 && cols > 0, "field dimensions must be nonzero");
        Field {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a field of ones (a uniform plane wave of unit amplitude).
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, Complex64::ONE)
    }

    /// Builds a field from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        assert!(rows > 0 && cols > 0, "field dimensions must be nonzero");
        Field { rows, cols, data }
    }

    /// Builds a complex field from real amplitudes (phase zero). This is how
    /// input images are encoded onto the laser: `A = I, θ = 0` (paper §3.1).
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() != rows * cols`.
    pub fn from_amplitudes(rows: usize, cols: usize, amplitudes: &[f64]) -> Self {
        assert_eq!(
            amplitudes.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        let data = amplitudes
            .iter()
            .map(|&a| Complex64::from_real(a))
            .collect();
        Field::from_vec(rows, cols, data)
    }

    /// Re-encodes real amplitudes into this field in place (phase zero) —
    /// the allocation-free counterpart of [`Field::from_amplitudes`] for
    /// buffer-reusing batch loops.
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len() != rows * cols`.
    pub fn set_amplitudes(&mut self, amplitudes: &[f64]) {
        assert_eq!(
            amplitudes.len(),
            self.data.len(),
            "buffer length must equal rows*cols"
        );
        for (z, &a) in self.data.iter_mut().zip(amplitudes) {
            *z = Complex64::from_real(a);
        }
    }

    /// Builds a field by evaluating `f(row, col)` at every sample.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Field::from_vec(rows, cols, data)
    }

    /// Number of rows (`y` samples).
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`x` samples).
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of samples.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the field holds no samples. Construction enforces nonzero
    /// dimensions, so this is honest but always `false` in practice.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Heap bytes held by this field's sample buffer (capacity, not
    /// length): what actually returns to the allocator when the field
    /// drops. Used by the serving runtime's resident-memory accounting.
    pub fn resident_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<Complex64>()
    }

    /// Copies every sample from `src` without reallocating — the
    /// zero-allocation alternative to `*self = src.clone()` used by the
    /// propagation workspaces.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[inline]
    pub fn copy_from(&mut self, src: &Field) {
        assert_eq!(self.shape(), src.shape(), "copy_from: shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Immutable view of the row-major sample buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the row-major sample buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the field, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [Complex64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Elementwise complex conjugate.
    pub fn conj(&self) -> Field {
        self.map(|z| z.conj())
    }

    /// Applies `f` to every sample, producing a new field.
    pub fn map(&self, f: impl Fn(Complex64) -> Complex64) -> Field {
        Field {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| f(z)).collect(),
        }
    }

    /// Applies `f` to every sample in place.
    pub fn map_inplace(&mut self, f: impl Fn(Complex64) -> Complex64) {
        for z in &mut self.data {
            *z = f(*z);
        }
    }

    /// Elementwise (Hadamard) product `self ⊙ rhs` — the fused kernel behind
    /// phase modulation and transfer-function application.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, rhs: &Field) -> Field {
        assert_eq!(self.shape(), rhs.shape(), "hadamard: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Field {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place Hadamard product `self ⊙= rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard_assign(&mut self, rhs: &Field) {
        assert_eq!(self.shape(), rhs.shape(), "hadamard_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= b;
        }
    }

    /// In-place Hadamard product with the conjugate of `rhs`
    /// (`self ⊙= conj(rhs)`): the adjoint of [`Field::hadamard_assign`],
    /// used by every backward pass through a linear optical element.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard_conj_assign(&mut self, rhs: &Field) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "hadamard_conj_assign: shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= b.conj();
        }
    }

    /// Scales every sample by a real factor in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for z in &mut self.data {
            *z *= s;
        }
    }

    /// Returns a copy scaled by a real factor.
    pub fn scaled(&self, s: f64) -> Field {
        let mut out = self.clone();
        out.scale_inplace(s);
        out
    }

    /// `self += rhs * s` — fused accumulate used by gradient reductions.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, s: f64, rhs: &Field) {
        assert_eq!(self.shape(), rhs.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b * s;
        }
    }

    /// Per-sample intensity `|U|²` — what a photon detector measures.
    pub fn intensity(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.norm_sqr()).collect()
    }

    /// [`Field::intensity`] into a caller-owned buffer (allocation-free
    /// once `out`'s capacity covers the field) — the serving and deployed
    /// capture hot paths reuse one buffer per worker.
    pub fn intensity_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.data.iter().map(|z| z.norm_sqr()));
    }

    /// Per-sample amplitude `|U|`.
    pub fn amplitude(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.norm()).collect()
    }

    /// Per-sample phase `arg U` in `(-π, π]`.
    pub fn phase(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.arg()).collect()
    }

    /// Total optical power `Σ|U|²`.
    pub fn total_power(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Inner product `⟨self, rhs⟩ = Σ self̄ᵢ·rhsᵢ` (conjugate-linear in
    /// `self`), the Hilbert-space inner product used by the adjoint tests.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn inner(&self, rhs: &Field) -> Complex64 {
        assert_eq!(self.shape(), rhs.shape(), "inner: shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a.conj() * b)
            .sum()
    }

    /// Maximum sample magnitude.
    pub fn max_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm()).fold(0.0, f64::max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> Complex64 {
        self.data.iter().copied().sum()
    }

    /// Embeds this field centered in a larger field of zeros.
    ///
    /// Used for zero-padded propagation and for fitting low-resolution
    /// input images onto a higher-resolution modulator plane.
    ///
    /// # Panics
    ///
    /// Panics if the target is smaller than the source in either dimension.
    pub fn pad_centered(&self, rows: usize, cols: usize) -> Field {
        assert!(
            rows >= self.rows && cols >= self.cols,
            "pad_centered: target must be at least as large as source"
        );
        let mut out = Field::zeros(rows, cols);
        let r0 = (rows - self.rows) / 2;
        let c0 = (cols - self.cols) / 2;
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = &mut out.data[(r0 + r) * cols + c0..(r0 + r) * cols + c0 + self.cols];
            dst.copy_from_slice(src);
        }
        out
    }

    /// Extracts a centered `rows × cols` window.
    ///
    /// # Panics
    ///
    /// Panics if the window is larger than the field in either dimension.
    pub fn crop_centered(&self, rows: usize, cols: usize) -> Field {
        assert!(
            rows <= self.rows && cols <= self.cols,
            "crop_centered: window must fit inside the field"
        );
        let r0 = (self.rows - rows) / 2;
        let c0 = (self.cols - cols) / 2;
        let mut out = Field::zeros(rows, cols);
        for r in 0..rows {
            let src = &self.data[(r0 + r) * self.cols + c0..(r0 + r) * self.cols + c0 + cols];
            out.row_mut(r).copy_from_slice(src);
        }
        out
    }

    /// Nearest-neighbour upsampling by integer factors — how a 28×28 image
    /// is blown up onto a 200×200 SLM in the paper's experiments.
    pub fn upsample(&self, factor_r: usize, factor_c: usize) -> Field {
        assert!(
            factor_r > 0 && factor_c > 0,
            "upsample factors must be nonzero"
        );
        let rows = self.rows * factor_r;
        let cols = self.cols * factor_c;
        Field::from_fn(rows, cols, |r, c| self[(r / factor_r, c / factor_c)])
    }

    /// Transposes the field (rows ↔ cols).
    pub fn transpose(&self) -> Field {
        let mut out = Field::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large fields.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// `fftshift`: swaps quadrants so the zero-frequency sample moves to the
    /// center. For odd sizes this matches the NumPy convention.
    pub fn fftshift(&self) -> Field {
        let sr = self.rows.div_ceil(2);
        let sc = self.cols.div_ceil(2);
        Field::from_fn(self.rows, self.cols, |r, c| {
            self[((r + sr) % self.rows, (c + sc) % self.cols)]
        })
    }

    /// Inverse of [`Field::fftshift`].
    pub fn ifftshift(&self) -> Field {
        let sr = self.rows / 2;
        let sc = self.cols / 2;
        Field::from_fn(self.rows, self.cols, |r, c| {
            self[((r + sr) % self.rows, (c + sc) % self.cols)]
        })
    }

    /// [`Field::fftshift`] written into a caller-owned field (no
    /// allocation).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn fftshift_into(&self, out: &mut Field) {
        assert_eq!(self.shape(), out.shape(), "fftshift_into: shape mismatch");
        fftshift_slice_into(&self.data, self.rows, self.cols, &mut out.data);
    }

    /// [`Field::ifftshift`] written into a caller-owned field (no
    /// allocation).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn ifftshift_into(&self, out: &mut Field) {
        assert_eq!(self.shape(), out.shape(), "ifftshift_into: shape mismatch");
        ifftshift_slice_into(&self.data, self.rows, self.cols, &mut out.data);
    }

    /// Frobenius distance `‖self − rhs‖₂`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn distance(&self, rhs: &Field) -> f64 {
        assert_eq!(self.shape(), rhs.shape(), "distance: shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a - b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// True if every sample is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }
}

/// [`Field::fftshift_into`] on raw row-major `rows × cols` planes — the
/// shared kernel behind both the per-sample and batched Fraunhofer
/// propagation paths (plane slices of a batch have no `Field` wrapper).
///
/// # Panics
///
/// Panics if either slice length differs from `rows·cols`.
pub fn fftshift_slice_into(src: &[Complex64], rows: usize, cols: usize, dst: &mut [Complex64]) {
    shift_slice_into(src, rows, cols, dst, rows.div_ceil(2), cols.div_ceil(2));
}

/// [`Field::ifftshift_into`] on raw row-major planes (see
/// [`fftshift_slice_into`]).
///
/// # Panics
///
/// Panics if either slice length differs from `rows·cols`.
pub fn ifftshift_slice_into(src: &[Complex64], rows: usize, cols: usize, dst: &mut [Complex64]) {
    shift_slice_into(src, rows, cols, dst, rows / 2, cols / 2);
}

fn shift_slice_into(
    src: &[Complex64],
    rows: usize,
    cols: usize,
    dst: &mut [Complex64],
    sr: usize,
    sc: usize,
) {
    assert_eq!(src.len(), rows * cols, "shift: source length mismatch");
    assert_eq!(dst.len(), rows * cols, "shift: destination length mismatch");
    for r in 0..rows {
        let sr_row = (r + sr) % rows;
        let src_row = &src[sr_row * cols..(sr_row + 1) * cols];
        let dst_row = &mut dst[r * cols..(r + 1) * cols];
        for (c, d) in dst_row.iter_mut().enumerate() {
            *d = src_row[(c + sc) % cols];
        }
    }
}

impl Index<(usize, usize)> for Field {
    type Output = Complex64;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Field {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Field> for &Field {
    type Output = Field;
    fn add(self, rhs: &Field) -> Field {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Field {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Field> for &Field {
    type Output = Field;
    fn sub(self, rhs: &Field) -> Field {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a - b)
            .collect();
        Field {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&Field> for Field {
    fn add_assign(&mut self, rhs: &Field) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl Mul<f64> for &Field {
    type Output = Field;
    fn mul(self, rhs: f64) -> Field {
        self.scaled(rhs)
    }
}

impl fmt::Debug for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Field({}x{}, power={:.4e})",
            self.rows,
            self.cols,
            self.total_power()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Field::zeros(3, 5);
        assert_eq!(z.shape(), (3, 5));
        assert_eq!(z.total_power(), 0.0);
        let o = Field::ones(3, 5);
        assert_eq!(o.total_power(), 15.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_panic() {
        let _ = Field::zeros(0, 4);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_length_checked() {
        let _ = Field::from_vec(2, 2, vec![Complex64::ZERO; 3]);
    }

    #[test]
    fn indexing_row_major() {
        let mut f = Field::zeros(2, 3);
        f[(1, 2)] = Complex64::new(7.0, 0.0);
        assert_eq!(f.as_slice()[5].re, 7.0);
        assert_eq!(f.row(1)[2].re, 7.0);
    }

    #[test]
    fn hadamard_matches_manual() {
        let a = Field::from_fn(2, 2, |r, c| Complex64::new(r as f64 + 1.0, c as f64));
        let b = Field::from_fn(2, 2, |r, c| Complex64::new(c as f64, r as f64));
        let h = a.hadamard(&b);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(h[(r, c)], a[(r, c)] * b[(r, c)]);
            }
        }
        let mut a2 = a.clone();
        a2.hadamard_assign(&b);
        assert_eq!(a2, h);
    }

    #[test]
    fn hadamard_conj_is_adjoint_of_hadamard() {
        // <M x, y> == <x, conj(M) y> for elementwise multiplication by M.
        let m = Field::from_fn(3, 3, |r, c| Complex64::new(r as f64 - 1.0, c as f64 + 0.5));
        let x = Field::from_fn(3, 3, |r, c| Complex64::new(c as f64, -(r as f64)));
        let y = Field::from_fn(3, 3, |r, c| Complex64::new(1.0 + r as f64 * c as f64, 2.0));
        let mx = x.hadamard(&m);
        let mut my = y.clone();
        my.hadamard_conj_assign(&m);
        let lhs = mx.inner(&y);
        let rhs = x.inner(&my);
        assert!((lhs - rhs).norm() < 1e-10);
    }

    #[test]
    fn pad_crop_roundtrip() {
        let f = Field::from_fn(3, 4, |r, c| Complex64::new((r * 4 + c) as f64, 0.0));
        let padded = f.pad_centered(7, 8);
        assert_eq!(padded.total_power(), f.total_power());
        let back = padded.crop_centered(3, 4);
        assert_eq!(back, f);
    }

    #[test]
    fn upsample_replicates() {
        let f = Field::from_fn(2, 2, |r, c| Complex64::new((r * 2 + c) as f64, 0.0));
        let u = f.upsample(2, 3);
        assert_eq!(u.shape(), (4, 6));
        assert_eq!(u[(0, 0)], f[(0, 0)]);
        assert_eq!(u[(1, 2)], f[(0, 0)]);
        assert_eq!(u[(3, 5)], f[(1, 1)]);
    }

    #[test]
    fn transpose_involution() {
        let f = Field::from_fn(5, 7, |r, c| Complex64::new(r as f64, c as f64));
        let t = f.transpose();
        assert_eq!(t.shape(), (7, 5));
        assert_eq!(t[(6, 4)], f[(4, 6)]);
        assert_eq!(t.transpose(), f);
    }

    #[test]
    fn fftshift_roundtrip_even_and_odd() {
        for &(r, c) in &[(4, 4), (5, 5), (4, 5), (6, 3)] {
            let f = Field::from_fn(r, c, |i, j| Complex64::new((i * c + j) as f64, 0.0));
            assert_eq!(f.fftshift().ifftshift(), f, "shape {r}x{c}");
        }
    }

    #[test]
    fn fftshift_moves_origin_to_center() {
        let mut f = Field::zeros(4, 4);
        f[(0, 0)] = Complex64::ONE;
        let s = f.fftshift();
        assert_eq!(s[(2, 2)], Complex64::ONE);
    }

    #[test]
    fn inner_product_conjugate_symmetry() {
        let a = Field::from_fn(3, 3, |r, c| Complex64::new(r as f64, c as f64));
        let b = Field::from_fn(3, 3, |r, c| Complex64::new(c as f64 + 1.0, r as f64 - 1.0));
        let ab = a.inner(&b);
        let ba = b.inner(&a);
        assert!((ab - ba.conj()).norm() < 1e-12);
        assert!((a.inner(&a).re - a.total_power()).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Field::ones(2, 2);
        let b = Field::filled(2, 2, Complex64::new(2.0, 0.0));
        a.axpy(0.5, &b);
        assert_eq!(a[(0, 0)], Complex64::new(2.0, 0.0));
    }

    #[test]
    fn intensity_and_power() {
        let f = Field::filled(2, 2, Complex64::new(3.0, 4.0));
        assert!(f.intensity().iter().all(|&i| (i - 25.0).abs() < 1e-12));
        assert!((f.total_power() - 100.0).abs() < 1e-12);
    }
}
