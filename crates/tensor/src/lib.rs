//! # lr-tensor
//!
//! Complex-valued tensor and FFT substrate for
//! [LightRidge-RS](https://github.com/lightridge/lightridge-rs), a Rust
//! reproduction of the LightRidge diffractive optical neural network (DONN)
//! framework (ASPLOS 2023/24).
//!
//! The crate provides the three tensor-level operators the paper identifies
//! as the DONN workload (Fig. 8): complex 2-D FFT ([`Fft2::forward`]),
//! inverse 2-D FFT ([`Fft2::inverse`]), and fused complex elementwise
//! multiplication ([`Field::hadamard_assign`]) — plus the plan cache and
//! batch-parallel execution that give LightRidge its runtime edge over the
//! LightPipes-style baseline.
//!
//! ## Example
//!
//! ```
//! use lr_tensor::{Complex64, Field, Fft2};
//!
//! // A 64×64 field with a centered square aperture.
//! let mut u = Field::from_fn(64, 64, |r, c| {
//!     let inside = (24..40).contains(&r) && (24..40).contains(&c);
//!     if inside { Complex64::ONE } else { Complex64::ZERO }
//! });
//!
//! // Propagate through a (here: identity) spectral transfer function.
//! let h = Field::ones(64, 64);
//! Fft2::new(64, 64).convolve_spectrum(&mut u, &h);
//! assert!((u.total_power() - 256.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

mod batch;
mod complex;
mod fft;
mod field;
pub mod parallel;
mod pinned_cache;
pub mod simd;
mod sync;

pub use batch::FieldBatch;
pub use complex::{Complex64, J};
pub use fft::{
    clear_plan_cache, dft_naive, plan_cache_len, planner, sweep_orphaned_plans, BatchWorkspace,
    Direction, Fft2, Fft2Workspace, FftPlan, PLAN_CACHE_CAP,
};
pub use field::{fftshift_slice_into, ifftshift_slice_into, Field};
pub use pinned_cache::PinnedCache;
