//! Fast Fourier transforms for the optics kernels.
//!
//! The diffraction kernels in LightRidge are built on 2-D FFT convolution
//! (paper Eq. 6–7). This module implements the transforms from scratch:
//!
//! * **Radix-4/radix-2 Cooley-Tukey** (iterative, precomputed twiddles and
//!   bit-reversal permutation) for power-of-two sizes. Stages are fused in
//!   pairs into radix-4 butterflies — half the passes over the data of a
//!   plain radix-2 loop — with a single radix-2 stage first when the stage
//!   count is odd.
//! * **Bluestein's chirp-z algorithm** for arbitrary sizes — the paper's
//!   system resolutions (200², 350², 500²) are *not* powers of two.
//! * A global, thread-safe **plan cache** so repeated propagations at the
//!   same resolution reuse twiddle tables and chirp spectra. Plan reuse is
//!   one of the runtime optimizations that separates LightRidge from the
//!   LightPipes baseline (paper Table 1, Fig. 8).
//! * A **zero-allocation 2-D pipeline**: [`Fft2`] transforms rows in place
//!   and columns through a cache-blocked strided kernel that stages a few
//!   columns at a time in a reusable buffer — no transpose fields are ever
//!   materialized (earlier revisions allocated two full fields per 2-D
//!   transform). Large fields additionally split their row/column loops
//!   across the persistent worker pool (`crate::parallel`).
//! * **Batched entry points**: [`Fft2::fft2_batch_with`] /
//!   [`Fft2::ifft2_batch_with`] (and the direction-generic
//!   [`Fft2::process_batch_with`]) transform every plane of a
//!   [`FieldBatch`] with **one plan lookup** and one shared
//!   [`BatchWorkspace`], streaming the same precomputed twiddles across
//!   all `B` planes. Every plane runs the identical strided
//!   radix-4/Stockham pipeline as the per-sample path
//!   ([`Fft2::process_slice_with`] is the single shared kernel), so
//!   batched and per-sample transforms are **bit-identical** — the
//!   invariant the whole batched propagation stack (lr-optics
//!   `propagate_batch_into`, lr-core `infer_batch_into`, the lr-serve
//!   dispatcher) is built on.
//!
//! # Workspace-reuse contract
//!
//! All per-call scratch lives in an [`Fft2Workspace`] (2-D), a
//! [`BatchWorkspace`] (batched 2-D — one per-plane workspace shared by all
//! planes, sized independently of the batch count), or a plain
//! `Vec<Complex64>` (1-D, from [`FftPlan::make_scratch`]):
//!
//! * **Ownership** — the *caller* owns workspaces and passes them by
//!   `&mut`. [`Fft2::process_with`] performs **zero heap allocations** once
//!   the workspace has warmed up for its shape. The convenience entry
//!   points ([`Fft2::forward`], [`Fft2::inverse`], …) borrow a
//!   thread-local workspace keyed by shape, so they are also
//!   allocation-free in steady state without any API change.
//! * **Thread safety** — plans are immutable after construction and shared
//!   via `Arc`; the global plan cache is a mutex-guarded map touched once
//!   per new length. Workspaces are *not* `Sync`; each thread uses its
//!   own (the thread-local pool guarantees this for implicit calls).
//! * **Parallel mode** — when a field is large (≥ `PAR_MIN_LEN` samples),
//!   the current thread is not already inside a parallel region, and more
//!   than one worker is configured, row/column loops run on the persistent
//!   pool and each worker thread draws scratch from its own thread-local
//!   pool (the caller's workspace is not shared across threads).
//!
//! Normalization convention: forward transforms are unnormalized, inverse
//! transforms carry the `1/N` factor. For the 2-D transforms the inverse
//! therefore scales by `1/(rows·cols)`.

use crate::batch::FieldBatch;
use crate::complex::Complex64;
use crate::field::Field;
use crate::parallel;
use crate::pinned_cache::PinnedCache;
use lr_obs::{KernelKind, KernelTimer};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::f64::consts::PI;
use std::sync::Arc;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `X_k = Σ x_j · e^{-2πi jk/N}` (unnormalized).
    Forward,
    /// `x_j = (1/N) Σ X_k · e^{+2πi jk/N}`.
    Inverse,
}

/// A reusable 1-D FFT plan for a fixed length.
///
/// Plans are cheap to share (`Arc`) and safe to use from multiple threads;
/// per-call scratch is passed in by the caller.
///
/// # Examples
///
/// ```
/// use lr_tensor::{Complex64, FftPlan, Direction};
/// let plan = FftPlan::new(6);
/// let mut data: Vec<Complex64> = (0..6).map(|i| Complex64::new(i as f64, 0.0)).collect();
/// let orig = data.clone();
/// let mut scratch = plan.make_scratch();
/// plan.process(&mut data, Direction::Forward, &mut scratch);
/// plan.process(&mut data, Direction::Inverse, &mut scratch);
/// for (a, b) in data.iter().zip(&orig) {
///     assert!((*a - *b).norm() < 1e-10);
/// }
/// ```
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug)]
enum PlanKind {
    Radix2(Radix2Plan),
    /// Smooth (2·3·5·7-factorable) lengths — the paper's 200/350/500
    /// resolutions — run a Stockham autosort mixed-radix pipeline, several
    /// times cheaper than the Bluestein fallback. The pre-change Bluestein
    /// plan is kept alongside as the `process_reference` oracle.
    Mixed {
        mixed: MixedRadixPlan,
        reference: BluesteinPlan,
    },
    Bluestein(BluesteinPlan),
}

#[derive(Debug)]
struct Radix2Plan {
    /// Bit-reversal permutation indices.
    bitrev: Vec<u32>,
    /// `tw[k] = e^{-2πi k/n}` for `k < n/2` (reference kernel).
    twiddles: Vec<Complex64>,
    /// Per-pass twiddle triples `(wa, wb0, wb1)` for the fused radix-4
    /// stages, laid out sequentially in traversal order so the hot loop
    /// streams them instead of gathering `tw[k·stride]`.
    fused: Vec<FusedStage>,
}

/// One fused pair of stages (sizes `2h` and `4h`) of the radix-4 kernel.
#[derive(Debug)]
struct FusedStage {
    /// Half the first fused stage: quartets span `4·half` elements.
    half: usize,
    /// `[wa_k, wb0_k, wb1_k]` for `k in 1..half` (the `k = 0` lane has the
    /// trivial twiddles `1, 1, −j` and is special-cased).
    tw: Vec<Complex64>,
}

#[derive(Debug)]
struct BluesteinPlan {
    /// Inner power-of-two convolution length `m ≥ 2n-1`.
    m: usize,
    inner: Radix2Plan,
    /// Forward chirp `c_j = e^{-iπ j²/n}` for `j < n`.
    chirp: Vec<Complex64>,
    /// `c_k / m` — the output chirp with the inner-inverse normalization
    /// folded in (one multiply per sample instead of two).
    post_chirp: Vec<Complex64>,
    /// Forward FFT (length `m`) of the wrapped conjugate chirp.
    chirp_spectrum: Vec<Complex64>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be nonzero");
        let kind = if n.is_power_of_two() {
            PlanKind::Radix2(Radix2Plan::new(n))
        } else if let Some(factors) = MixedRadixPlan::factorize(n) {
            PlanKind::Mixed {
                mixed: MixedRadixPlan::new(n, &factors),
                reference: BluesteinPlan::new(n),
            }
        } else {
            PlanKind::Bluestein(BluesteinPlan::new(n))
        };
        FftPlan { n, kind }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the plan length is zero. Construction enforces `n > 0`, so
    /// this is honest but always `false` for plans built through
    /// [`FftPlan::new`].
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True if this plan's fast path uses Bluestein's algorithm (lengths
    /// with a prime factor above 7; the paper's smooth resolutions use the
    /// mixed-radix pipeline instead).
    pub fn is_bluestein(&self) -> bool {
        matches!(self.kind, PlanKind::Bluestein(_))
    }

    /// True if this plan uses the Stockham mixed-radix pipeline
    /// (non-power-of-two, 2·3·5·7-smooth length).
    pub fn is_mixed_radix(&self) -> bool {
        matches!(self.kind, PlanKind::Mixed { .. })
    }

    /// Scratch length this plan needs (`0` for pure radix-2 plans).
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            PlanKind::Radix2(_) => 0,
            // The reference Bluestein buffer (m ≥ 2n−1) also covers the
            // Stockham ping-pong buffer (n).
            PlanKind::Mixed { reference, .. } => reference.m,
            PlanKind::Bluestein(b) => b.m,
        }
    }

    /// Allocates a scratch buffer sized for this plan. Reuse it across calls
    /// to avoid per-transform allocation.
    pub fn make_scratch(&self) -> Vec<Complex64> {
        vec![Complex64::ZERO; self.scratch_len()]
    }

    /// Transforms `data` in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn process(&self, data: &mut [Complex64], dir: Direction, scratch: &mut Vec<Complex64>) {
        self.process_impl(data, dir, scratch, false);
    }

    /// Transforms `data` in place with the pre-optimization kernels: plain
    /// radix-2 butterflies, no stage fusion. Kept as the bit-level oracle
    /// for the radix-4 path and as the baseline the perf artifacts
    /// (`BENCH_kernels.json`) compare against.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn process_reference(
        &self,
        data: &mut [Complex64],
        dir: Direction,
        scratch: &mut Vec<Complex64>,
    ) {
        self.process_impl(data, dir, scratch, true);
    }

    fn process_impl(
        &self,
        data: &mut [Complex64],
        dir: Direction,
        scratch: &mut Vec<Complex64>,
        reference: bool,
    ) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        match dir {
            Direction::Forward => self.forward(data, scratch, reference),
            Direction::Inverse => {
                if let (PlanKind::Radix2(p), false) = (&self.kind, reference) {
                    // Conjugated-twiddle kernel: bit-identical to the
                    // conj(F(conj(·)))/n sandwich, two passes cheaper.
                    p.backward_noscale(data);
                    let inv_n = 1.0 / self.n as f64;
                    for z in data.iter_mut() {
                        *z *= inv_n;
                    }
                    return;
                }
                // x = conj(F(conj(X))) / n
                for z in data.iter_mut() {
                    *z = z.conj();
                }
                self.forward(data, scratch, reference);
                let inv_n = 1.0 / self.n as f64;
                for z in data.iter_mut() {
                    *z = z.conj() * inv_n;
                }
            }
        }
    }

    fn forward(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>, reference: bool) {
        match &self.kind {
            PlanKind::Radix2(p) => {
                if reference {
                    p.forward_reference(data);
                } else {
                    p.forward(data);
                }
            }
            PlanKind::Mixed {
                mixed,
                reference: oracle,
            } => {
                if reference {
                    oracle.forward_reference(data, scratch);
                } else {
                    mixed.forward(data, scratch);
                }
            }
            PlanKind::Bluestein(p) => p.forward(data, scratch, reference),
        }
    }
}

impl Radix2Plan {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two());
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        let twiddles: Vec<Complex64> = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / n as f64))
            .collect();
        // Precompute the fused-stage twiddle stream: after the optional
        // leading radix-2 stage, each radix-4 pass fuses stages of size
        // `2h` and `4h`; its lane-k twiddles are wa = e^{-2πik/2h},
        // wb0 = e^{-2πik/4h}, wb1 = e^{-2πi(k+h)/4h}.
        let mut fused = Vec::new();
        let mut len = if bits % 2 == 1 { 4 } else { 2 };
        while len * 2 <= n {
            let h = len / 2;
            let stride1 = n / len;
            let stride2 = n / (len * 2);
            let mut tw = Vec::with_capacity(3 * (h - 1));
            for k in 1..h {
                tw.push(twiddles[k * stride1]);
                tw.push(twiddles[k * stride2]);
                tw.push(twiddles[(k + h) * stride2]);
            }
            fused.push(FusedStage { half: h, tw });
            len *= 4;
        }
        Radix2Plan {
            bitrev,
            twiddles,
            fused,
        }
    }

    /// Bit-reversal permutation shared by both butterfly kernels.
    #[inline]
    fn permute(&self, data: &mut [Complex64]) {
        for (i, &r) in self.bitrev.iter().enumerate() {
            let r = r as usize;
            if i < r {
                data.swap(i, r);
            }
        }
    }

    /// Iterative decimation-in-time FFT with stages fused in pairs into
    /// radix-4 butterflies (one pass over the data per pair instead of
    /// two). `e^{-2πi/n}` kernel.
    fn forward(&self, data: &mut [Complex64]) {
        self.butterflies::<false>(data);
    }

    /// The unnormalized inverse (`e^{+2πi/n}` kernel, no `1/n`): the same
    /// butterfly network with conjugated twiddles. Lets Bluestein's inner
    /// inverse run without the two extra conjugation passes of
    /// `conj(F(conj(·)))`.
    fn backward_noscale(&self, data: &mut [Complex64]) {
        self.butterflies::<true>(data);
    }

    /// Radix-4 butterfly network over bit-reversed data. The twiddle
    /// stream is precomputed per stage in traversal order; the `k = 0`
    /// lane (twiddles `1, 1, ∓j`) is special-cased to pure adds/swaps.
    fn butterflies<const INV: bool>(&self, data: &mut [Complex64]) {
        #[inline(always)]
        fn mul_tw<const INV: bool>(a: Complex64, w: Complex64) -> Complex64 {
            if INV {
                a * w.conj()
            } else {
                a * w
            }
        }
        let n = data.len();
        if n <= 1 {
            return;
        }
        self.permute(data);
        let ptr = data.as_mut_ptr();
        if n.trailing_zeros() & 1 == 1 {
            // Odd stage count: one radix-2 stage (twiddle 1) brings the
            // remaining count even so the radix-4 passes can finish the job.
            let mut base = 0;
            while base < n {
                // SAFETY: base + 1 < n (n is an even power of two here).
                unsafe {
                    let a = *ptr.add(base);
                    let b = *ptr.add(base + 1);
                    *ptr.add(base) = a + b;
                    *ptr.add(base + 1) = a - b;
                }
                base += 2;
            }
        }
        for stage in &self.fused {
            let h = stage.half;
            let block = 4 * h;
            let tw = stage.tw.as_ptr();
            let mut base = 0;
            while base < n {
                // SAFETY: every index below is < base + 4h ≤ n, and the
                // twiddle stream holds 3·(h−1) entries read at ti < 3(h−1).
                unsafe {
                    // k = 0: wa = wb0 = 1, wb1 = ∓j — no multiplies.
                    let p0 = ptr.add(base);
                    let p1 = ptr.add(base + h);
                    let p2 = ptr.add(base + 2 * h);
                    let p3 = ptr.add(base + 3 * h);
                    let (a0, a1, a2, a3) = (*p0, *p1, *p2, *p3);
                    let u0 = a0 + a1;
                    let u1 = a0 - a1;
                    let u2 = a2 + a3;
                    let u3 = a2 - a3;
                    let v1 = if INV {
                        Complex64::new(-u3.im, u3.re)
                    } else {
                        Complex64::new(u3.im, -u3.re)
                    };
                    *p0 = u0 + u2;
                    *p2 = u0 - u2;
                    *p1 = u1 + v1;
                    *p3 = u1 - v1;
                    let mut ti = 0;
                    for k in 1..h {
                        let wa = *tw.add(ti);
                        let wb0 = *tw.add(ti + 1);
                        let wb1 = *tw.add(ti + 2);
                        ti += 3;
                        let p0 = ptr.add(base + k);
                        let p1 = ptr.add(base + k + h);
                        let p2 = ptr.add(base + k + 2 * h);
                        let p3 = ptr.add(base + k + 3 * h);
                        let a0 = *p0;
                        let a1 = mul_tw::<INV>(*p1, wa);
                        let a2 = *p2;
                        let a3 = mul_tw::<INV>(*p3, wa);
                        let u0 = a0 + a1;
                        let u1 = a0 - a1;
                        let u2 = a2 + a3;
                        let u3 = a2 - a3;
                        let v0 = mul_tw::<INV>(u2, wb0);
                        let v1 = mul_tw::<INV>(u3, wb1);
                        *p0 = u0 + v0;
                        *p2 = u0 - v0;
                        *p1 = u1 + v1;
                        *p3 = u1 - v1;
                    }
                }
                base += block;
            }
        }
    }

    /// The pre-optimization butterfly loop: one radix-2 pass per stage.
    fn forward_reference(&self, data: &mut [Complex64]) {
        let n = data.len();
        if n <= 1 {
            return;
        }
        self.permute(data);
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for base in (0..n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * stride];
                    let a = data[base + k];
                    let b = data[base + k + half] * w;
                    data[base + k] = a + b;
                    data[base + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

impl BluesteinPlan {
    fn new(n: usize) -> Self {
        let m = (2 * n - 1).next_power_of_two();
        let inner = Radix2Plan::new(m);
        // c_j = e^{-iπ j²/n}. j² is reduced mod 2n in integer arithmetic so
        // the phase argument stays small and fully precise for large n.
        let two_n = 2 * n as u64;
        let chirp: Vec<Complex64> = (0..n as u64)
            .map(|j| Complex64::cis(-PI * ((j * j) % two_n) as f64 / n as f64))
            .collect();
        // Wrapped conjugate chirp B: B[0..n) = conj(c), B[m-j] = conj(c_j).
        let mut b = vec![Complex64::ZERO; m];
        for j in 0..n {
            b[j] = chirp[j].conj();
            if j > 0 {
                b[m - j] = chirp[j].conj();
            }
        }
        inner.forward(&mut b);
        let inv_m = 1.0 / m as f64;
        let post_chirp = chirp.iter().map(|&c| c * inv_m).collect();
        BluesteinPlan {
            m,
            inner,
            chirp,
            post_chirp,
            chirp_spectrum: b,
        }
    }

    fn forward(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>, reference: bool) {
        if reference {
            self.forward_reference(data, scratch);
            return;
        }
        let n = data.len();
        let m = self.m;
        if scratch.len() != m {
            scratch.clear();
            scratch.resize(m, Complex64::ZERO);
        }
        // a_j = x_j · c_j, zero padded to m (only the tail needs clearing —
        // the head is overwritten).
        for ((s, &x), &c) in scratch.iter_mut().zip(data.iter()).zip(&self.chirp) {
            *s = x * c;
        }
        scratch[n..m].fill(Complex64::ZERO);
        self.inner.forward(scratch);
        // Pointwise multiply with the chirp spectrum (the circular
        // convolution theorem), then the unnormalized inner inverse.
        for (s, &h) in scratch.iter_mut().zip(&self.chirp_spectrum) {
            *s *= h;
        }
        self.inner.backward_noscale(scratch);
        // X_k = c_k/m · conv_k.
        for ((x, &s), &c) in data.iter_mut().zip(scratch.iter()).zip(&self.post_chirp) {
            *x = s * c;
        }
    }

    /// The pre-optimization Bluestein pipeline: full-buffer re-zeroing,
    /// radix-2 inner transforms, and the conj-sandwich inner inverse.
    fn forward_reference(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>) {
        let n = data.len();
        let m = self.m;
        scratch.clear();
        scratch.resize(m, Complex64::ZERO);
        for j in 0..n {
            scratch[j] = data[j] * self.chirp[j];
        }
        self.inner.forward_reference(scratch);
        for (s, &h) in scratch.iter_mut().zip(&self.chirp_spectrum) {
            *s *= h;
        }
        for z in scratch.iter_mut() {
            *z = z.conj();
        }
        self.inner.forward_reference(scratch);
        let inv_m = 1.0 / m as f64;
        for k in 0..n {
            data[k] = scratch[k].conj() * inv_m * self.chirp[k];
        }
    }
}

/// Stockham autosort mixed-radix FFT (decimation in frequency) for
/// 2·3·5·7-smooth lengths — which covers every resolution the paper
/// evaluates (200 = 2³·5², 350 = 2·5²·7, 500 = 2²·5³). Compared to the
/// Bluestein fallback this avoids the two length-`m ≥ 2n` inner transforms
/// and all chirp passes: one streaming pass per factor, ping-ponging
/// between the data and one scratch buffer, no permutation pass.
#[derive(Debug)]
struct MixedRadixPlan {
    n: usize,
    stages: Vec<MixedStage>,
}

/// One radix-`r` Stockham pass. Entering sub-transform length is
/// `n' = radix·m`; `s` is the product of previously processed radices.
#[derive(Debug)]
struct MixedStage {
    radix: usize,
    m: usize,
    s: usize,
    /// `tw[p·r + u] = e^{−2πi·p·u/n'}` — the post-butterfly twiddles.
    tw: Vec<Complex64>,
    /// `roots[u·r + t] = e^{−2πi·t·u/r}` — the r-point DFT matrix, rows
    /// laid out per output `u` for sequential access.
    roots: Vec<Complex64>,
}

impl MixedRadixPlan {
    /// Returns the stage radix sequence if `n` is 2·3·5·7-smooth (and not
    /// a power of two, which the dedicated radix-2 plan handles), else
    /// `None`. Radix-4/2 stages run first (short strides), the pricier
    /// odd radices last where the inner stride-`s` loops are long.
    fn factorize(n: usize) -> Option<Vec<usize>> {
        let mut rem = n;
        let mut count = [0usize; 4]; // twos, threes, fives, sevens
        for (i, p) in [2usize, 3, 5, 7].into_iter().enumerate() {
            while rem.is_multiple_of(p) {
                rem /= p;
                count[i] += 1;
            }
        }
        if rem != 1 {
            return None;
        }
        let mut factors = Vec::new();
        factors.extend(std::iter::repeat_n(4, count[0] / 2));
        if count[0] % 2 == 1 {
            factors.push(2);
        }
        factors.extend(std::iter::repeat_n(3, count[1]));
        factors.extend(std::iter::repeat_n(5, count[2]));
        factors.extend(std::iter::repeat_n(7, count[3]));
        Some(factors)
    }

    fn new(n: usize, factors: &[usize]) -> Self {
        let mut stages = Vec::with_capacity(factors.len());
        let mut np = n; // sub-transform length entering the stage
        let mut s = 1;
        for &r in factors {
            let m = np / r;
            let mut tw = Vec::with_capacity(m * r);
            for p in 0..m {
                for u in 0..r {
                    tw.push(Complex64::cis(-2.0 * PI * (p * u) as f64 / np as f64));
                }
            }
            let mut roots = Vec::with_capacity(r * r);
            for u in 0..r {
                for t in 0..r {
                    roots.push(Complex64::cis(-2.0 * PI * ((t * u) % r) as f64 / r as f64));
                }
            }
            stages.push(MixedStage {
                radix: r,
                m,
                s,
                tw,
                roots,
            });
            np = m;
            s *= r;
        }
        debug_assert_eq!(np, 1, "factorization must cover n");
        MixedRadixPlan { n, stages }
    }

    fn forward(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>) {
        let n = self.n;
        if scratch.len() < n {
            scratch.resize(n, Complex64::ZERO);
        }
        let scratch = &mut scratch[..n];
        let mut in_data = true;
        for stage in &self.stages {
            if in_data {
                Self::step(stage, data, scratch);
            } else {
                Self::step(stage, scratch, data);
            }
            in_data = !in_data;
        }
        if !in_data {
            data.copy_from_slice(scratch);
        }
    }

    /// One Stockham DIF pass: gather `r` points strided `s·m` apart, apply
    /// the r-point DFT, twiddle by `w^{p·u}`, scatter with stride `s`.
    /// All indices stay below `n' · s = n` by the stage invariants.
    fn step(stage: &MixedStage, src: &[Complex64], dst: &mut [Complex64]) {
        let (r, m, s) = (stage.radix, stage.m, stage.s);
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        match r {
            2 => {
                for p in 0..m {
                    // u = 0 twiddle is 1; only the u = 1 lane twiddles.
                    let w = stage.tw[p * 2 + 1];
                    for q in 0..s {
                        // SAFETY: q + s·(p + m·t) < s·m·r = n and
                        // q + s·(r·p + u) < n (see method docs).
                        unsafe {
                            let a = *sp.add(q + s * p);
                            let b = *sp.add(q + s * (p + m));
                            *dp.add(q + s * (2 * p)) = a + b;
                            *dp.add(q + s * (2 * p + 1)) = (a - b) * w;
                        }
                    }
                }
            }
            4 => {
                for p in 0..m {
                    let w1 = stage.tw[p * 4 + 1];
                    let w2 = stage.tw[p * 4 + 2];
                    let w3 = stage.tw[p * 4 + 3];
                    for q in 0..s {
                        // SAFETY: as above; all indices < n.
                        unsafe {
                            let a0 = *sp.add(q + s * p);
                            let a1 = *sp.add(q + s * (p + m));
                            let a2 = *sp.add(q + s * (p + 2 * m));
                            let a3 = *sp.add(q + s * (p + 3 * m));
                            let t0 = a0 + a2;
                            let t1 = a1 + a3;
                            let t2 = a0 - a2;
                            let t3 = a1 - a3;
                            // -j·t3 and +j·t3
                            let jt3 = Complex64::new(t3.im, -t3.re);
                            *dp.add(q + s * (4 * p)) = t0 + t1;
                            *dp.add(q + s * (4 * p + 1)) = (t2 + jt3) * w1;
                            *dp.add(q + s * (4 * p + 2)) = (t0 - t1) * w2;
                            *dp.add(q + s * (4 * p + 3)) = (t2 - jt3) * w3;
                        }
                    }
                }
            }
            _ => {
                let mut at = [Complex64::ZERO; 8];
                for p in 0..m {
                    let wrow = &stage.tw[p * r..(p + 1) * r];
                    for q in 0..s {
                        // SAFETY: as above; all indices < n, r ≤ 7 < at.len().
                        unsafe {
                            for (t, a) in at[..r].iter_mut().enumerate() {
                                *a = *sp.add(q + s * (p + m * t));
                            }
                            for (u, &w) in wrow.iter().enumerate() {
                                let row = &stage.roots[u * r..u * r + r];
                                let mut acc = at[0];
                                for t in 1..r {
                                    acc += at[t] * row[t];
                                }
                                *dp.add(q + s * (r * p + u)) = acc * w;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Global plan cache keyed by transform length. Eviction semantics live
/// in [`PinnedCache`]: entries pinned by a live `Fft2` (and therefore a
/// live model or propagator) are never evicted; only plans orphaned by
/// their last user dropping are reclaimable.
static PLAN_CACHE: Mutex<Option<PinnedCache<usize, FftPlan>>> = Mutex::new(None);

/// Soft capacity of the plan cache. A DSE sweep over grid sizes produces a
/// stream of single-use lengths; past the cap, inserting a new plan first
/// evicts **orphaned** entries (refcount-held by nobody but the cache),
/// stalest hit first. Entries pinned by live plans are never evicted, so
/// the cache may exceed the cap while more than `PLAN_CACHE_CAP` distinct
/// lengths are simultaneously alive — in that state the cache is not the
/// retainer.
pub const PLAN_CACHE_CAP: usize = 64;

/// Returns a cached plan for length `n`, creating it on first use.
///
/// The cache is process-global and thread-safe; this is the fast path used
/// by all LightRidge propagation kernels. The LightPipes-style baseline
/// deliberately bypasses it to model plan-per-call overhead. Capacity
/// eviction is refcount-aware (see [`PLAN_CACHE_CAP`]); retired-model
/// cleanup goes through [`sweep_orphaned_plans`].
pub fn planner(n: usize) -> Arc<FftPlan> {
    let mut guard = PLAN_CACHE.lock();
    let cache = guard.get_or_insert_with(PinnedCache::new);
    if let Some(hit) = cache.hit(&n) {
        return hit;
    }
    let plan = Arc::new(FftPlan::new(n));
    cache.insert(n, Arc::clone(&plan), PLAN_CACHE_CAP);
    plan
}

/// Drops every cached plan that nothing outside the cache references any
/// more, returning how many were evicted. The serving runtime calls this
/// after reclaiming a retired model: the model's `Fft2`s (and their plan
/// `Arc`s) are gone by then, so its prewarmed plans show up here as
/// orphans — while plans shared with still-live models stay pinned and
/// survive, preserving flat first-request latency for the survivors.
pub fn sweep_orphaned_plans() -> usize {
    PLAN_CACHE
        .lock()
        .as_mut()
        .map_or(0, PinnedCache::sweep_orphans)
}

/// Clears the global plan cache (used by the runtime ablation benches).
pub fn clear_plan_cache() {
    *PLAN_CACHE.lock() = None;
}

/// Number of plans currently cached.
pub fn plan_cache_len() -> usize {
    PLAN_CACHE.lock().as_ref().map_or(0, PinnedCache::len)
}

/// Number of columns staged together by the strided column kernel. 32
/// columns of `f64` complex samples are 512 bytes per row — a handful of
/// cache lines — so the gather/scatter runs at near-streaming bandwidth.
const COL_BLOCK: usize = 32;

/// Fields with at least this many samples split their row/column FFT loops
/// across the persistent worker pool (200² and larger at the paper's
/// resolutions).
const PAR_MIN_LEN: usize = 32_768;

/// Owned scratch for one [`Fft2`] shape.
///
/// Holds the Bluestein convolution buffers for both axes plus the staging
/// buffer of the cache-blocked column kernel. Allocated once per shape
/// (`Fft2::make_workspace`) and reused for every subsequent transform; see
/// the module docs for the full workspace-reuse contract.
#[derive(Debug, Clone)]
pub struct Fft2Workspace {
    rows: usize,
    cols: usize,
    /// Bluestein scratch for the row (length-`cols`) plan.
    row_scratch: Vec<Complex64>,
    /// Bluestein scratch for the column (length-`rows`) plan.
    col_scratch: Vec<Complex64>,
    /// Column staging: up to [`COL_BLOCK`] columns stored contiguously.
    col_block: Vec<Complex64>,
}

impl Fft2Workspace {
    /// Shape this workspace serves.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Heap bytes held by this workspace's scratch buffers (capacity, not
    /// length). Feeds the serving runtime's resident-memory accounting.
    pub fn resident_bytes(&self) -> usize {
        (self.row_scratch.capacity() + self.col_scratch.capacity() + self.col_block.capacity())
            * std::mem::size_of::<Complex64>()
    }
}

/// Caller-owned scratch for the batched 2-D entry points
/// ([`Fft2::fft2_batch_with`] / [`Fft2::ifft2_batch_with`] /
/// [`Fft2::process_batch_with`]).
///
/// Per-plane scratch is independent of the batch count — every plane of a
/// [`FieldBatch`] reuses the one wrapped [`Fft2Workspace`] — so a single
/// `BatchWorkspace` serves any `B` at its shape with **zero allocations**
/// in steady state, exactly like the per-sample workspace contract (see
/// the module docs).
#[derive(Debug, Clone)]
pub struct BatchWorkspace {
    fft: Fft2Workspace,
}

impl BatchWorkspace {
    /// Plane shape this workspace serves.
    pub fn shape(&self) -> (usize, usize) {
        self.fft.shape()
    }

    /// The wrapped per-plane 2-D workspace.
    pub fn fft_mut(&mut self) -> &mut Fft2Workspace {
        &mut self.fft
    }

    /// Heap bytes held by this workspace's scratch buffers.
    pub fn resident_bytes(&self) -> usize {
        self.fft.resident_bytes()
    }
}

/// A 2-D FFT engine for a fixed field shape, holding one plan per axis.
///
/// # Examples
///
/// ```
/// use lr_tensor::{Complex64, Field, Fft2};
/// let fft = Fft2::new(4, 6);
/// let f = Field::from_fn(4, 6, |r, c| Complex64::new((r + c) as f64, 0.0));
/// let mut g = f.clone();
/// fft.forward(&mut g);
/// fft.inverse(&mut g);
/// assert!(f.distance(&g) < 1e-10);
/// ```
///
/// Allocation-sensitive callers own their scratch explicitly:
///
/// ```
/// use lr_tensor::{Complex64, Field, Fft2, Direction};
/// let fft = Fft2::new(8, 8);
/// let mut ws = fft.make_workspace();
/// let mut f = Field::ones(8, 8);
/// fft.process_with(&mut f, Direction::Forward, &mut ws); // no allocation
/// ```
#[derive(Debug, Clone)]
pub struct Fft2 {
    rows: usize,
    cols: usize,
    row_plan: Arc<FftPlan>,
    col_plan: Arc<FftPlan>,
}

/// Scoped kernel timer for one FFT pass, attributed to the algorithm the
/// plan actually dispatches to (Stockham mixed-radix or Bluestein chirp-z;
/// pure radix-2/4 plans are only charged to the pass itself). Free when
/// kernel profiling is disabled — `KernelTimer::start*` returns an inert
/// guard without reading the clock.
#[inline]
fn pass_timer(kind: KernelKind, plan: &FftPlan) -> KernelTimer {
    if plan.is_bluestein() {
        KernelTimer::start_attributed(kind, KernelKind::Bluestein)
    } else if plan.is_mixed_radix() {
        KernelTimer::start_attributed(kind, KernelKind::Stockham)
    } else {
        KernelTimer::start(kind)
    }
}

impl Fft2 {
    /// Builds (or fetches from the global cache) plans for a `rows × cols`
    /// field.
    pub fn new(rows: usize, cols: usize) -> Self {
        Fft2 {
            rows,
            cols,
            row_plan: planner(cols),
            col_plan: planner(rows),
        }
    }

    /// Field shape this engine transforms.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Allocates a workspace sized for this engine's shape.
    pub fn make_workspace(&self) -> Fft2Workspace {
        Fft2Workspace {
            rows: self.rows,
            cols: self.cols,
            row_scratch: self.row_plan.make_scratch(),
            col_scratch: self.col_plan.make_scratch(),
            col_block: vec![Complex64::ZERO; self.rows * COL_BLOCK.min(self.cols)],
        }
    }

    /// Allocates a batched workspace sized for this engine's shape (valid
    /// for any batch count — per-plane scratch is batch-independent).
    pub fn make_batch_workspace(&self) -> BatchWorkspace {
        BatchWorkspace {
            fft: self.make_workspace(),
        }
    }

    /// In-place forward 2-D FFT.
    ///
    /// # Panics
    ///
    /// Panics if `field` does not match the planned shape.
    pub fn forward(&self, field: &mut Field) {
        self.process(field, Direction::Forward);
    }

    /// In-place inverse 2-D FFT (scaled by `1/(rows·cols)`).
    ///
    /// # Panics
    ///
    /// Panics if `field` does not match the planned shape.
    pub fn inverse(&self, field: &mut Field) {
        self.process(field, Direction::Inverse);
    }

    /// In-place 2-D transform in the given direction, using a thread-local
    /// workspace (allocation-free once warm for this shape).
    pub fn process(&self, field: &mut Field, dir: Direction) {
        with_tls_workspace(self, |fft, ws| fft.process_with(field, dir, ws));
    }

    /// In-place 2-D transform using caller-owned scratch. Performs no heap
    /// allocation (in sequential mode; see the module docs for how large
    /// fields borrow per-thread scratch in parallel mode instead).
    ///
    /// # Panics
    ///
    /// Panics if `field` or `workspace` does not match the planned shape.
    pub fn process_with(&self, field: &mut Field, dir: Direction, workspace: &mut Fft2Workspace) {
        assert_eq!(field.shape(), (self.rows, self.cols), "Fft2 shape mismatch");
        self.process_slice_with(field.as_mut_slice(), dir, workspace);
    }

    /// In-place 2-D transform of one row-major `rows × cols` plane given as
    /// a raw sample slice — the single shared kernel behind both the
    /// per-sample ([`Fft2::process_with`]) and batched
    /// ([`Fft2::process_batch_with`]) entry points, which is what makes
    /// them bit-identical. Zero heap allocation (sequential mode).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` or `workspace` does not match the planned
    /// shape.
    pub fn process_slice_with(
        &self,
        data: &mut [Complex64],
        dir: Direction,
        workspace: &mut Fft2Workspace,
    ) {
        assert_eq!(
            data.len(),
            self.rows * self.cols,
            "Fft2 plane length mismatch"
        );
        assert_eq!(
            workspace.shape(),
            (self.rows, self.cols),
            "Fft2 workspace shape mismatch"
        );
        let parallel_ok = self.rows * self.cols >= PAR_MIN_LEN
            && parallel::threads() > 1
            && !parallel::in_parallel_region();
        {
            let _t = pass_timer(KernelKind::FftRows, &self.row_plan);
            if parallel_ok {
                self.rows_pass_parallel(data, dir);
            } else {
                self.rows_pass(data, dir, &mut workspace.row_scratch);
            }
        }
        {
            let _t = pass_timer(KernelKind::FftCols, &self.col_plan);
            if parallel_ok {
                self.cols_pass_parallel(data, dir);
            } else {
                self.cols_pass(data, dir, workspace);
            }
        }
    }

    /// Transforms every active plane of `batch` in place: one shared
    /// workspace, one set of plans, the twiddle/chirp tables streamed over
    /// all `B` planes. Bit-identical to `B` separate
    /// [`Fft2::process_with`] calls (see [`Fft2::process_slice_with`]).
    ///
    /// # Panics
    ///
    /// Panics if the batch's plane shape or `workspace` does not match the
    /// planned shape.
    pub fn process_batch_with(
        &self,
        batch: &mut FieldBatch,
        dir: Direction,
        workspace: &mut BatchWorkspace,
    ) {
        assert_eq!(
            batch.plane_shape(),
            (self.rows, self.cols),
            "Fft2 batch plane shape mismatch"
        );
        for plane in batch.planes_mut() {
            self.process_slice_with(plane, dir, &mut workspace.fft);
        }
    }

    /// Batched forward 2-D FFT over every active plane (see
    /// [`Fft2::process_batch_with`]).
    pub fn fft2_batch_with(&self, batch: &mut FieldBatch, workspace: &mut BatchWorkspace) {
        self.process_batch_with(batch, Direction::Forward, workspace);
    }

    /// Batched inverse 2-D FFT (scaled by `1/(rows·cols)` per plane; see
    /// [`Fft2::process_batch_with`]).
    pub fn ifft2_batch_with(&self, batch: &mut FieldBatch, workspace: &mut BatchWorkspace) {
        self.process_batch_with(batch, Direction::Inverse, workspace);
    }

    /// Row transforms, sequential, in place.
    fn rows_pass(&self, data: &mut [Complex64], dir: Direction, scratch: &mut Vec<Complex64>) {
        for r in 0..self.rows {
            self.row_plan
                .process(&mut data[r * self.cols..(r + 1) * self.cols], dir, scratch);
        }
    }

    /// Column transforms through the cache-blocked strided kernel: gather up
    /// to [`COL_BLOCK`] columns into contiguous staging, transform each, and
    /// scatter back. No full-field transpose is ever materialized.
    fn cols_pass(&self, data: &mut [Complex64], dir: Direction, workspace: &mut Fft2Workspace) {
        let (rows, cols) = (self.rows, self.cols);
        let block = &mut workspace.col_block;
        let scratch = &mut workspace.col_scratch;
        let mut c0 = 0;
        while c0 < cols {
            let bw = COL_BLOCK.min(cols - c0);
            // SAFETY: `data` is exclusively borrowed and all column indices
            // are in bounds; see gather/scatter docs.
            unsafe {
                gather_columns(data.as_ptr(), rows, cols, c0, bw, block);
            }
            for k in 0..bw {
                self.col_plan
                    .process(&mut block[k * rows..(k + 1) * rows], dir, scratch);
            }
            // SAFETY: same exclusive borrow and in-bounds argument as the
            // gather above; the write-back targets the same columns.
            unsafe {
                scatter_columns(block, rows, cols, c0, bw, data.as_mut_ptr());
            }
            c0 += bw;
        }
    }

    /// Row transforms split across the worker pool; per-thread scratch.
    fn rows_pass_parallel(&self, data: &mut [Complex64], dir: Direction) {
        let (rows, cols) = (self.rows, self.cols);
        let tasks = parallel::threads().min(rows).max(1) * 4;
        let chunk = rows.div_ceil(tasks);
        let tasks = rows.div_ceil(chunk);
        let base = RowsPtr(data.as_mut_ptr());
        let plan = &self.row_plan;
        parallel::par_for(tasks, |t| {
            let base = &base; // capture the Sync wrapper, not the raw field
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(rows);
            with_thread_scratch(plan.scratch_len(), |scratch| {
                for r in lo..hi {
                    // SAFETY: tasks own disjoint row ranges of the buffer,
                    // which outlives par_for's completion barrier.
                    let row = unsafe { std::slice::from_raw_parts_mut(base.0.add(r * cols), cols) };
                    plan.process(row, dir, scratch);
                }
            });
        });
    }

    /// Column blocks split across the worker pool; per-thread staging.
    fn cols_pass_parallel(&self, data: &mut [Complex64], dir: Direction) {
        let (rows, cols) = (self.rows, self.cols);
        let blocks = cols.div_ceil(COL_BLOCK);
        let base = RowsPtr(data.as_mut_ptr());
        let plan = &self.col_plan;
        parallel::par_for(blocks, |b| {
            let base = &base; // capture the Sync wrapper, not the raw field
            let c0 = b * COL_BLOCK;
            let bw = COL_BLOCK.min(cols - c0);
            with_thread_scratch(rows * bw, |block| {
                with_thread_scratch(plan.scratch_len(), |scratch| {
                    // SAFETY: tasks touch disjoint column ranges [c0, c0+bw)
                    // through raw pointer arithmetic only — no task ever
                    // forms a reference spanning another task's columns —
                    // and the buffer outlives par_for's completion barrier.
                    unsafe {
                        gather_columns(base.0, rows, cols, c0, bw, block);
                    }
                    for k in 0..bw {
                        plan.process(&mut block[k * rows..(k + 1) * rows], dir, scratch);
                    }
                    // SAFETY: write-back to this task's own disjoint
                    // columns — the same argument as the gather above.
                    unsafe {
                        scatter_columns(block, rows, cols, c0, bw, base.0);
                    }
                });
            });
        });
    }

    /// The pre-optimization 2-D pipeline: transform rows, materialize the
    /// transpose, transform the former columns as rows, transpose back —
    /// two full field allocations and copies per call, plain radix-2
    /// butterflies. Kept as the numerical oracle for the strided kernel and
    /// as the baseline the perf artifacts compare against.
    ///
    /// # Panics
    ///
    /// Panics if `field` does not match the planned shape.
    pub fn process_reference(&self, field: &mut Field, dir: Direction) {
        assert_eq!(field.shape(), (self.rows, self.cols), "Fft2 shape mismatch");
        let mut scratch = self.row_plan.make_scratch();
        for r in 0..self.rows {
            self.row_plan
                .process_reference(field.row_mut(r), dir, &mut scratch);
        }
        let mut t = field.transpose();
        let mut scratch = self.col_plan.make_scratch();
        for r in 0..self.cols {
            self.col_plan
                .process_reference(t.row_mut(r), dir, &mut scratch);
        }
        *field = t.transpose();
    }

    /// Fused `IFFT2( FFT2(field) ⊙ transfer )` — a single-pass free-space
    /// propagation step. This is the operator-fusion fast path the paper's
    /// runtime evaluation credits for part of the speedup.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match.
    pub fn convolve_spectrum(&self, field: &mut Field, transfer: &Field) {
        self.forward(field);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            field.hadamard_assign(transfer);
        }
        self.inverse(field);
    }

    /// [`Fft2::convolve_spectrum`] with caller-owned scratch (zero
    /// allocation in sequential mode).
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match.
    pub fn convolve_spectrum_with(
        &self,
        field: &mut Field,
        transfer: &Field,
        workspace: &mut Fft2Workspace,
    ) {
        self.process_with(field, Direction::Forward, workspace);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            field.hadamard_assign(transfer);
        }
        self.process_with(field, Direction::Inverse, workspace);
    }

    /// Adjoint of [`Fft2::convolve_spectrum`]: propagates a gradient with the
    /// conjugated transfer function. Under the `(1, 1/N)` normalization the
    /// adjoint of `F⁻¹ diag(H) F` is exactly `F⁻¹ diag(H̄) F`.
    pub fn convolve_spectrum_adjoint(&self, grad: &mut Field, transfer: &Field) {
        self.forward(grad);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            grad.hadamard_conj_assign(transfer);
        }
        self.inverse(grad);
    }

    /// [`Fft2::convolve_spectrum_adjoint`] with caller-owned scratch.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match.
    pub fn convolve_spectrum_adjoint_with(
        &self,
        grad: &mut Field,
        transfer: &Field,
        workspace: &mut Fft2Workspace,
    ) {
        self.process_with(grad, Direction::Forward, workspace);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            grad.hadamard_conj_assign(transfer);
        }
        self.process_with(grad, Direction::Inverse, workspace);
    }

    /// [`Fft2::convolve_spectrum_with`] on one raw row-major plane — the
    /// shared kernel behind both the per-sample and batched spectral
    /// propagation paths.
    ///
    /// # Panics
    ///
    /// Panics if lengths or `workspace` do not match the planned shape.
    pub fn convolve_spectrum_slice_with(
        &self,
        data: &mut [Complex64],
        transfer: &Field,
        workspace: &mut Fft2Workspace,
    ) {
        assert_eq!(
            transfer.shape(),
            (self.rows, self.cols),
            "transfer shape mismatch"
        );
        self.process_slice_with(data, Direction::Forward, workspace);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            for (a, &h) in data.iter_mut().zip(transfer.as_slice()) {
                *a *= h;
            }
        }
        self.process_slice_with(data, Direction::Inverse, workspace);
    }

    /// [`Fft2::convolve_spectrum_adjoint_with`] on one raw row-major plane.
    ///
    /// # Panics
    ///
    /// Panics if lengths or `workspace` do not match the planned shape.
    pub fn convolve_spectrum_adjoint_slice_with(
        &self,
        data: &mut [Complex64],
        transfer: &Field,
        workspace: &mut Fft2Workspace,
    ) {
        assert_eq!(
            transfer.shape(),
            (self.rows, self.cols),
            "transfer shape mismatch"
        );
        self.process_slice_with(data, Direction::Forward, workspace);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            for (a, &h) in data.iter_mut().zip(transfer.as_slice()) {
                *a *= h.conj();
            }
        }
        self.process_slice_with(data, Direction::Inverse, workspace);
    }
}

/// Copies columns `[c0, c0+bw)` of a row-major `rows × cols` buffer into
/// column-major staging (`block[k·rows + r] = data[r·cols + c0 + k]`).
///
/// Takes a raw base pointer so concurrent tasks working on *disjoint*
/// column ranges of one buffer never materialize overlapping `&`/`&mut`
/// slices (which would be UB even with disjoint element access).
///
/// # Safety
///
/// `data` must point to at least `rows·cols` readable elements that no
/// other thread writes in the accessed columns during the call, and
/// `c0 + bw ≤ cols` must hold.
#[inline]
unsafe fn gather_columns(
    data: *const Complex64,
    rows: usize,
    cols: usize,
    c0: usize,
    bw: usize,
    block: &mut [Complex64],
) {
    debug_assert!(c0 + bw <= cols && block.len() >= rows * bw);
    for r in 0..rows {
        for k in 0..bw {
            // SAFETY: r·cols + c0 + k < rows·cols by the caller contract.
            block[k * rows + r] = unsafe { *data.add(r * cols + c0 + k) };
        }
    }
}

/// Inverse of [`gather_columns`].
///
/// # Safety
///
/// `data` must point to at least `rows·cols` writable elements whose
/// columns `[c0, c0+bw)` no other thread accesses during the call, and
/// `c0 + bw ≤ cols` must hold.
#[inline]
unsafe fn scatter_columns(
    block: &[Complex64],
    rows: usize,
    cols: usize,
    c0: usize,
    bw: usize,
    data: *mut Complex64,
) {
    debug_assert!(c0 + bw <= cols && block.len() >= rows * bw);
    for r in 0..rows {
        for k in 0..bw {
            // SAFETY: r·cols + c0 + k < rows·cols by the caller contract.
            unsafe {
                *data.add(r * cols + c0 + k) = block[k * rows + r];
            }
        }
    }
}

/// Shared-buffer pointer handed to disjoint parallel tasks.
#[derive(Clone, Copy)]
struct RowsPtr(*mut Complex64);
// SAFETY: tasks dereference disjoint index ranges only (see call sites).
unsafe impl Send for RowsPtr {}
// SAFETY: same disjointness argument as `Send` above — shared references
// to the wrapper never alias writes to the same indices.
unsafe impl Sync for RowsPtr {}

thread_local! {
    /// Per-thread pool of scratch buffers for the parallel FFT loops.
    static THREAD_SCRATCH: RefCell<Vec<Vec<Complex64>>> = const { RefCell::new(Vec::new()) };
    /// Per-thread [`Fft2Workspace`] cache backing the implicit entry points.
    static TLS_WORKSPACES: RefCell<Vec<Fft2Workspace>> = const { RefCell::new(Vec::new()) };
}

/// Lends a per-thread scratch buffer of length exactly `min_len` to `f`.
/// Buffers are recycled, so steady-state use allocates nothing. Contents
/// are **unspecified** (only growth is zeroed — no full re-zeroing pass);
/// every consumer fully overwrites what it reads.
fn with_thread_scratch<R>(min_len: usize, f: impl FnOnce(&mut Vec<Complex64>) -> R) -> R {
    let mut buf = THREAD_SCRATCH.with(|pool| {
        let mut pool = pool.borrow_mut();
        let found = pool.iter().position(|b| b.capacity() >= min_len);
        match found {
            Some(i) => pool.swap_remove(i),
            None => Vec::with_capacity(min_len),
        }
    });
    buf.resize(min_len, Complex64::ZERO);
    let out = f(&mut buf);
    THREAD_SCRATCH.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < 8 {
            pool.push(buf);
        }
    });
    out
}

/// Lends the thread-local workspace for `fft`'s shape to `f`, creating it
/// on first use for that shape on this thread.
fn with_tls_workspace<R>(fft: &Fft2, f: impl FnOnce(&Fft2, &mut Fft2Workspace) -> R) -> R {
    let shape = fft.shape();
    let mut ws = TLS_WORKSPACES.with(|cache| {
        let mut cache = cache.borrow_mut();
        match cache.iter().position(|w| w.shape() == shape) {
            Some(i) => cache.swap_remove(i),
            None => fft.make_workspace(),
        }
    });
    let out = f(fft, &mut ws);
    TLS_WORKSPACES.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() < 8 {
            cache.push(ws);
        }
    });
    out
}

/// Naive `O(n²)` DFT used as a reference in tests.
pub fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let w = Complex64::cis(sign * 2.0 * PI * (j * k % n) as f64 / n as f64);
            acc += x * w;
        }
        *o = match dir {
            Direction::Forward => acc,
            Direction::Inverse => acc / n as f64,
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(n: usize) {
        let plan = FftPlan::new(n);
        let mut data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let orig = data.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut data, Direction::Forward, &mut scratch);
        plan.process(&mut data, Direction::Inverse, &mut scratch);
        for (a, b) in data.iter().zip(&orig) {
            assert!((*a - *b).norm() < 1e-9, "roundtrip failed for n={n}");
        }
    }

    #[test]
    fn roundtrip_power_of_two() {
        for n in [1, 2, 4, 8, 32, 64, 256, 1024] {
            roundtrip(n);
        }
    }

    #[test]
    fn roundtrip_arbitrary_sizes() {
        for n in [3, 5, 6, 7, 12, 100, 200, 350, 500] {
            roundtrip(n);
        }
    }

    fn against_naive(n: usize) {
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let expected = dft_naive(&input, Direction::Forward);
        let plan = FftPlan::new(n);
        let mut data = input.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut data, Direction::Forward, &mut scratch);
        for (a, b) in data.iter().zip(&expected) {
            assert!(
                (*a - *b).norm() < 1e-8 * (n as f64),
                "mismatch vs naive DFT at n={n}"
            );
        }
    }

    #[test]
    fn matches_naive_dft() {
        // Powers of two cover both the even (4, 16, 64, 256) and odd
        // (2, 8, 32, 128) stage-count paths of the radix-4 kernel.
        for n in [2, 3, 4, 5, 8, 16, 20, 31, 32, 64, 100, 128, 256] {
            against_naive(n);
        }
    }

    #[test]
    fn radix4_agrees_with_reference_butterflies() {
        for n in [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
            let plan = FftPlan::new(n);
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let mut fast = input.clone();
            let mut slow = input;
            let mut scratch = plan.make_scratch();
            plan.process(&mut fast, Direction::Forward, &mut scratch);
            plan.process_reference(&mut slow, Direction::Forward, &mut scratch);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(
                    (*a - *b).norm() <= 1e-12 * (1.0 + b.norm()),
                    "radix-4 diverged from radix-2 at n={n}"
                );
            }
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 16;
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        let plan = FftPlan::new(n);
        let mut scratch = plan.make_scratch();
        plan.process(&mut data, Direction::Forward, &mut scratch);
        for z in &data {
            assert!((*z - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn parseval_1d() {
        let n = 200; // Bluestein path
        let data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let plan = FftPlan::new(n);
        let mut spec = data.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut spec, Direction::Forward, &mut scratch);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum();
        assert!(
            (freq_energy / n as f64 - time_energy).abs() < 1e-8 * time_energy,
            "Parseval violated"
        );
    }

    #[test]
    fn plan_reports_shape_facts() {
        // 200 = 2³·5² is smooth → mixed-radix fast path, Bluestein oracle.
        let plan = FftPlan::new(200);
        assert_eq!(plan.len(), 200);
        assert!(!plan.is_empty());
        assert!(plan.is_mixed_radix());
        assert!(!plan.is_bluestein());
        assert_eq!(plan.scratch_len(), 512); // (2·200-1).next_power_of_two()
                                             // 211 is prime → true Bluestein path.
        let prime = FftPlan::new(211);
        assert!(prime.is_bluestein());
        assert!(!prime.is_mixed_radix());
        let pow2 = FftPlan::new(64);
        assert!(!pow2.is_bluestein());
        assert!(!pow2.is_mixed_radix());
        assert_eq!(pow2.scratch_len(), 0);
    }

    #[test]
    fn mixed_radix_factorization() {
        assert_eq!(MixedRadixPlan::factorize(200), Some(vec![4, 2, 5, 5]));
        assert_eq!(MixedRadixPlan::factorize(350), Some(vec![2, 5, 5, 7]));
        assert_eq!(MixedRadixPlan::factorize(500), Some(vec![4, 5, 5, 5]));
        assert_eq!(MixedRadixPlan::factorize(630), Some(vec![2, 3, 3, 5, 7]));
        assert_eq!(MixedRadixPlan::factorize(211), None); // prime
        assert_eq!(MixedRadixPlan::factorize(2 * 11), None); // factor 11
    }

    #[test]
    fn mixed_radix_matches_bluestein_reference_on_paper_sizes() {
        for n in [200usize, 350, 500, 105, 98, 45] {
            let plan = FftPlan::new(n);
            assert!(plan.is_mixed_radix(), "expected mixed-radix for {n}");
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.23).sin(), (i as f64 * 0.71).cos()))
                .collect();
            let mut fast = input.clone();
            let mut slow = input;
            let mut scratch = plan.make_scratch();
            plan.process(&mut fast, Direction::Forward, &mut scratch);
            plan.process_reference(&mut slow, Direction::Forward, &mut scratch);
            let scale = (n as f64).sqrt();
            for (a, b) in fast.iter().zip(&slow) {
                assert!(
                    (*a - *b).norm() <= 1e-10 * scale * (1.0 + b.norm()),
                    "mixed-radix diverged from Bluestein oracle at n={n}"
                );
            }
        }
    }

    #[test]
    fn fft2_roundtrip_mixed_sizes() {
        for &(r, c) in &[(4, 4), (8, 16), (5, 7), (20, 20), (3, 8), (40, 33)] {
            let fft = Fft2::new(r, c);
            let f = Field::from_fn(r, c, |i, j| {
                Complex64::new((i * c + j) as f64, (i + j) as f64)
            });
            let mut g = f.clone();
            fft.forward(&mut g);
            fft.inverse(&mut g);
            assert!(f.distance(&g) < 1e-8, "fft2 roundtrip {r}x{c}");
        }
    }

    #[test]
    fn fft2_workspace_path_matches_implicit_path() {
        for &(r, c) in &[(8, 8), (5, 12), (33, 50)] {
            let fft = Fft2::new(r, c);
            let f = Field::from_fn(r, c, |i, j| {
                Complex64::new((i as f64 * 0.7).cos(), (j as f64 * 0.3).sin())
            });
            let mut implicit = f.clone();
            fft.forward(&mut implicit);
            let mut ws = fft.make_workspace();
            let mut explicit = f.clone();
            fft.process_with(&mut explicit, Direction::Forward, &mut ws);
            assert_eq!(implicit, explicit, "workspace path diverged at {r}x{c}");
        }
    }

    #[test]
    fn fft2_strided_matches_reference_transpose_path() {
        for &(r, c) in &[(8, 8), (20, 20), (16, 50), (50, 16), (33, 40)] {
            let fft = Fft2::new(r, c);
            let f = Field::from_fn(r, c, |i, j| {
                Complex64::new((i as f64 * 1.1).sin() + 0.2, (j as f64 * 0.9).cos())
            });
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut fast = f.clone();
                fft.process(&mut fast, dir);
                let mut slow = f.clone();
                fft.process_reference(&mut slow, dir);
                let scale = slow.max_norm().max(1.0);
                for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                    assert!(
                        (*a - *b).norm() <= 1e-12 * scale,
                        "strided kernel diverged from transpose reference at {r}x{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn fft2_separable_impulse() {
        // FFT2 of a centered impulse is a pure phase ramp; of an origin
        // impulse it is flat ones.
        let fft = Fft2::new(8, 8);
        let mut f = Field::zeros(8, 8);
        f[(0, 0)] = Complex64::ONE;
        fft.forward(&mut f);
        for z in f.as_slice() {
            assert!((*z - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn fft2_dc_component_is_sum() {
        let fft = Fft2::new(6, 10);
        let f = Field::from_fn(6, 10, |i, j| Complex64::new(i as f64, j as f64));
        let total = f.sum();
        let mut g = f.clone();
        fft.forward(&mut g);
        assert!((g[(0, 0)] - total).norm() < 1e-9);
    }

    #[test]
    fn convolve_spectrum_identity_transfer() {
        let fft = Fft2::new(8, 8);
        let f = Field::from_fn(8, 8, |i, j| Complex64::new(i as f64, j as f64));
        let h = Field::ones(8, 8);
        let mut g = f.clone();
        fft.convolve_spectrum(&mut g, &h);
        assert!(f.distance(&g) < 1e-9);
        let mut ws = fft.make_workspace();
        let mut g2 = f.clone();
        fft.convolve_spectrum_with(&mut g2, &h, &mut ws);
        assert!(f.distance(&g2) < 1e-9);
    }

    #[test]
    fn convolve_adjoint_identity() {
        // <A x, y> == <x, A^H y> for A = IFFT ∘ diag(H) ∘ FFT.
        let fft = Fft2::new(8, 8);
        let h = Field::from_fn(8, 8, |i, j| {
            Complex64::cis(0.3 * i as f64 + 0.17 * j as f64) * (1.0 + 0.1 * j as f64)
        });
        let x = Field::from_fn(8, 8, |i, j| {
            Complex64::new((i * j) as f64 * 0.1, i as f64 - j as f64)
        });
        let y = Field::from_fn(8, 8, |i, j| Complex64::new((i + 2 * j) as f64 * 0.05, 1.0));
        let mut ax = x.clone();
        fft.convolve_spectrum(&mut ax, &h);
        let mut ahy = y.clone();
        fft.convolve_spectrum_adjoint(&mut ahy, &h);
        let lhs = ax.inner(&y);
        let rhs = x.inner(&ahy);
        assert!(
            (lhs - rhs).norm() < 1e-8,
            "adjoint identity violated: {lhs:?} vs {rhs:?}"
        );
    }

    /// Serializes the tests that clear, flood, or assert on the global
    /// plan cache — they would invalidate each other's expectations if the
    /// harness interleaved them.
    static CACHE_TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Pin/orphan semantics of the registry-tied sweep, asserted per key
    /// (never on global cache length — other tests share the process
    /// cache): a pinned plan survives `sweep_orphaned_plans` and keeps
    /// returning the same `Arc`; once its last external reference drops,
    /// the sweep evicts it and the next `planner` call rebuilds.
    #[test]
    fn sweep_evicts_orphaned_plans_but_never_pinned_ones() {
        let _serial = CACHE_TEST_LOCK.lock();
        // Unique lengths no other test uses.
        let pinned = planner(1187);
        sweep_orphaned_plans();
        assert!(
            Arc::ptr_eq(&pinned, &planner(1187)),
            "a pinned plan must survive the sweep"
        );
        drop(pinned);
        let orphan = planner(1193);
        let before_sweep = planner(1193);
        assert!(Arc::ptr_eq(&orphan, &before_sweep));
        drop(orphan);
        drop(before_sweep);
        sweep_orphaned_plans();
        // 1187 and 1193 are both orphans now; a rebuild yields new plans.
        let rebuilt = planner(1193);
        assert_eq!(rebuilt.len(), 1193);
        assert_eq!(Arc::strong_count(&rebuilt), 2, "cache + this binding");
    }

    /// Capacity eviction picks the stalest orphan and never a pinned
    /// entry, so live models keep their prewarmed plans across DSE-style
    /// insert storms.
    #[test]
    fn capacity_eviction_spares_pinned_plans() {
        let _serial = CACHE_TEST_LOCK.lock();
        let pinned = planner(2099);
        // Flood the cache far past the cap with orphaned single-use plans.
        for n in 0..(2 * PLAN_CACHE_CAP) {
            drop(planner(3 * n + 3001));
        }
        assert!(
            Arc::ptr_eq(&pinned, &planner(2099)),
            "a pinned plan must survive capacity eviction"
        );
        assert!(
            plan_cache_len() <= PLAN_CACHE_CAP + 64,
            "orphan flood must not grow the cache unboundedly (len {})",
            plan_cache_len()
        );
    }

    #[test]
    fn plan_cache_shares_plans() {
        let _serial = CACHE_TEST_LOCK.lock();
        clear_plan_cache();
        let a = planner(64);
        let b = planner(64);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(plan_cache_len(), 1);
        let _c = planner(128);
        assert_eq!(plan_cache_len(), 2);
        clear_plan_cache();
        assert_eq!(plan_cache_len(), 0);
    }

    #[test]
    fn linearity() {
        let n = 48; // power-of-two? no: 48 = 16*3 -> Bluestein path
        let plan = FftPlan::new(n);
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.5)).collect();
        let y: Vec<Complex64> = (0..n).map(|i| Complex64::new(1.0, -(i as f64))).collect();
        let alpha = Complex64::new(0.3, -0.8);

        let mut combo: Vec<Complex64> = x.iter().zip(&y).map(|(&a, &b)| a * alpha + b).collect();
        let mut fx = x.clone();
        let mut fy = y.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut combo, Direction::Forward, &mut scratch);
        plan.process(&mut fx, Direction::Forward, &mut scratch);
        plan.process(&mut fy, Direction::Forward, &mut scratch);
        for k in 0..n {
            let expect = fx[k] * alpha + fy[k];
            assert!((combo[k] - expect).norm() < 1e-7, "linearity failed at {k}");
        }
    }

    #[test]
    fn fft2_parallel_path_matches_sequential() {
        // 256×256 = 65536 samples crosses PAR_MIN_LEN, engaging the pooled
        // row/column loops when threads are available.
        let _guard = parallel::thread_count_test_guard();
        let n = 256;
        let fft = Fft2::new(n, n);
        let f = Field::from_fn(n, n, |r, c| {
            Complex64::new((r as f64 * 0.01).sin(), (c as f64 * 0.02).cos())
        });
        // Force threads() > 1 so the pooled branch runs even on a
        // single-core machine (the caller then claims every task itself).
        parallel::set_threads(4);
        let mut par = f.clone();
        fft.forward(&mut par);
        parallel::set_threads(1);
        let mut seq = f.clone();
        fft.forward(&mut seq);
        parallel::set_threads(0);
        assert_eq!(
            par, seq,
            "pooled FFT loops must be bit-identical to sequential"
        );
    }
}
