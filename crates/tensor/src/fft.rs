//! Fast Fourier transforms for the optics kernels.
//!
//! The diffraction kernels in LightRidge are built on 2-D FFT convolution
//! (paper Eq. 6–7). This module implements the transforms from scratch:
//!
//! * **Radix-2 Cooley-Tukey** (iterative, precomputed twiddles and
//!   bit-reversal permutation) for power-of-two sizes.
//! * **Bluestein's chirp-z algorithm** for arbitrary sizes — the paper's
//!   system resolutions (200², 350², 500²) are *not* powers of two.
//! * A global, thread-safe **plan cache** so repeated propagations at the
//!   same resolution reuse twiddle tables and chirp spectra. Plan reuse is
//!   one of the runtime optimizations that separates LightRidge from the
//!   LightPipes baseline (paper Table 1, Fig. 8).
//!
//! Normalization convention: forward transforms are unnormalized, inverse
//! transforms carry the `1/N` factor. For the 2-D transforms the inverse
//! therefore scales by `1/(rows·cols)`.

use crate::complex::Complex64;
use crate::field::Field;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::Arc;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `X_k = Σ x_j · e^{-2πi jk/N}` (unnormalized).
    Forward,
    /// `x_j = (1/N) Σ X_k · e^{+2πi jk/N}`.
    Inverse,
}

/// A reusable 1-D FFT plan for a fixed length.
///
/// Plans are cheap to share (`Arc`) and safe to use from multiple threads;
/// per-call scratch is passed in by the caller.
///
/// # Examples
///
/// ```
/// use lr_tensor::{Complex64, FftPlan, Direction};
/// let plan = FftPlan::new(6);
/// let mut data: Vec<Complex64> = (0..6).map(|i| Complex64::new(i as f64, 0.0)).collect();
/// let orig = data.clone();
/// let mut scratch = plan.make_scratch();
/// plan.process(&mut data, Direction::Forward, &mut scratch);
/// plan.process(&mut data, Direction::Inverse, &mut scratch);
/// for (a, b) in data.iter().zip(&orig) {
///     assert!((*a - *b).norm() < 1e-10);
/// }
/// ```
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug)]
enum PlanKind {
    Radix2(Radix2Plan),
    Bluestein(BluesteinPlan),
}

#[derive(Debug)]
struct Radix2Plan {
    /// Bit-reversal permutation indices.
    bitrev: Vec<u32>,
    /// `tw[k] = e^{-2πi k/n}` for `k < n/2`.
    twiddles: Vec<Complex64>,
}

#[derive(Debug)]
struct BluesteinPlan {
    /// Inner power-of-two convolution length `m ≥ 2n-1`.
    m: usize,
    inner: Radix2Plan,
    /// Forward chirp `c_j = e^{-iπ j²/n}` for `j < n`.
    chirp: Vec<Complex64>,
    /// Forward FFT (length `m`) of the wrapped conjugate chirp.
    chirp_spectrum: Vec<Complex64>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be nonzero");
        let kind = if n.is_power_of_two() {
            PlanKind::Radix2(Radix2Plan::new(n))
        } else {
            PlanKind::Bluestein(BluesteinPlan::new(n))
        };
        FftPlan { n, kind }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (`n > 0` is enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if this plan uses Bluestein's algorithm (non-power-of-two size).
    pub fn is_bluestein(&self) -> bool {
        matches!(self.kind, PlanKind::Bluestein(_))
    }

    /// Allocates a scratch buffer sized for this plan. Reuse it across calls
    /// to avoid per-transform allocation.
    pub fn make_scratch(&self) -> Vec<Complex64> {
        match &self.kind {
            PlanKind::Radix2(_) => Vec::new(),
            PlanKind::Bluestein(b) => vec![Complex64::ZERO; b.m],
        }
    }

    /// Transforms `data` in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn process(&self, data: &mut [Complex64], dir: Direction, scratch: &mut Vec<Complex64>) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        match dir {
            Direction::Forward => self.forward(data, scratch),
            Direction::Inverse => {
                // x = conj(F(conj(X))) / n
                for z in data.iter_mut() {
                    *z = z.conj();
                }
                self.forward(data, scratch);
                let inv_n = 1.0 / self.n as f64;
                for z in data.iter_mut() {
                    *z = z.conj() * inv_n;
                }
            }
        }
    }

    fn forward(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>) {
        match &self.kind {
            PlanKind::Radix2(p) => p.forward(data),
            PlanKind::Bluestein(p) => p.forward(data, scratch),
        }
    }
}

impl Radix2Plan {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two());
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| if bits == 0 { 0 } else { i.reverse_bits() >> (32 - bits) })
            .collect();
        let twiddles = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / n as f64))
            .collect();
        Radix2Plan { bitrev, twiddles }
    }

    /// Iterative decimation-in-time radix-2 FFT.
    fn forward(&self, data: &mut [Complex64]) {
        let n = data.len();
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for (i, &r) in self.bitrev.iter().enumerate() {
            let r = r as usize;
            if i < r {
                data.swap(i, r);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for base in (0..n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * stride];
                    let a = data[base + k];
                    let b = data[base + k + half] * w;
                    data[base + k] = a + b;
                    data[base + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

impl BluesteinPlan {
    fn new(n: usize) -> Self {
        let m = (2 * n - 1).next_power_of_two();
        let inner = Radix2Plan::new(m);
        // c_j = e^{-iπ j²/n}. j² is reduced mod 2n in integer arithmetic so
        // the phase argument stays small and fully precise for large n.
        let two_n = 2 * n as u64;
        let chirp: Vec<Complex64> = (0..n as u64)
            .map(|j| Complex64::cis(-PI * ((j * j) % two_n) as f64 / n as f64))
            .collect();
        // Wrapped conjugate chirp B: B[0..n) = conj(c), B[m-j] = conj(c_j).
        let mut b = vec![Complex64::ZERO; m];
        for j in 0..n {
            b[j] = chirp[j].conj();
            if j > 0 {
                b[m - j] = chirp[j].conj();
            }
        }
        inner.forward(&mut b);
        BluesteinPlan { m, inner, chirp, chirp_spectrum: b }
    }

    fn forward(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>) {
        let n = data.len();
        let m = self.m;
        scratch.clear();
        scratch.resize(m, Complex64::ZERO);
        // a_j = x_j · c_j, zero padded to m.
        for j in 0..n {
            scratch[j] = data[j] * self.chirp[j];
        }
        self.inner.forward(scratch);
        // Pointwise multiply with the chirp spectrum (the circular
        // convolution theorem), then inverse transform.
        for (s, &h) in scratch.iter_mut().zip(&self.chirp_spectrum) {
            *s *= h;
        }
        // Inverse inner FFT via conjugation.
        for z in scratch.iter_mut() {
            *z = z.conj();
        }
        self.inner.forward(scratch);
        let inv_m = 1.0 / m as f64;
        // X_k = c_k · conv_k.
        for k in 0..n {
            data[k] = scratch[k].conj() * inv_m * self.chirp[k];
        }
    }
}

/// Global plan cache keyed by transform length.
static PLAN_CACHE: Mutex<Option<HashMap<usize, Arc<FftPlan>>>> = Mutex::new(None);

/// Returns a cached plan for length `n`, creating it on first use.
///
/// The cache is process-global and thread-safe; this is the fast path used
/// by all LightRidge propagation kernels. The LightPipes-style baseline
/// deliberately bypasses it to model plan-per-call overhead.
pub fn planner(n: usize) -> Arc<FftPlan> {
    let mut guard = PLAN_CACHE.lock();
    let cache = guard.get_or_insert_with(HashMap::new);
    cache.entry(n).or_insert_with(|| Arc::new(FftPlan::new(n))).clone()
}

/// Clears the global plan cache (used by the runtime ablation benches).
pub fn clear_plan_cache() {
    *PLAN_CACHE.lock() = None;
}

/// Number of plans currently cached.
pub fn plan_cache_len() -> usize {
    PLAN_CACHE.lock().as_ref().map_or(0, |c| c.len())
}

/// A 2-D FFT engine for a fixed field shape, holding one plan per axis.
///
/// # Examples
///
/// ```
/// use lr_tensor::{Complex64, Field, Fft2};
/// let fft = Fft2::new(4, 6);
/// let f = Field::from_fn(4, 6, |r, c| Complex64::new((r + c) as f64, 0.0));
/// let mut g = f.clone();
/// fft.forward(&mut g);
/// fft.inverse(&mut g);
/// assert!(f.distance(&g) < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct Fft2 {
    rows: usize,
    cols: usize,
    row_plan: Arc<FftPlan>,
    col_plan: Arc<FftPlan>,
}

impl Fft2 {
    /// Builds (or fetches from the global cache) plans for a `rows × cols`
    /// field.
    pub fn new(rows: usize, cols: usize) -> Self {
        Fft2 {
            rows,
            cols,
            row_plan: planner(cols),
            col_plan: planner(rows),
        }
    }

    /// Field shape this engine transforms.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// In-place forward 2-D FFT.
    ///
    /// # Panics
    ///
    /// Panics if `field` does not match the planned shape.
    pub fn forward(&self, field: &mut Field) {
        self.process(field, Direction::Forward);
    }

    /// In-place inverse 2-D FFT (scaled by `1/(rows·cols)`).
    ///
    /// # Panics
    ///
    /// Panics if `field` does not match the planned shape.
    pub fn inverse(&self, field: &mut Field) {
        self.process(field, Direction::Inverse);
    }

    /// In-place 2-D transform in the given direction.
    pub fn process(&self, field: &mut Field, dir: Direction) {
        assert_eq!(field.shape(), (self.rows, self.cols), "Fft2 shape mismatch");
        let mut scratch = self.row_plan.make_scratch();
        for r in 0..self.rows {
            self.row_plan.process(field.row_mut(r), dir, &mut scratch);
        }
        let mut t = field.transpose();
        let mut scratch = self.col_plan.make_scratch();
        for r in 0..self.cols {
            self.col_plan.process(t.row_mut(r), dir, &mut scratch);
        }
        *field = t.transpose();
    }

    /// Fused `IFFT2( FFT2(field) ⊙ transfer )` — a single-pass free-space
    /// propagation step. This is the operator-fusion fast path the paper's
    /// runtime evaluation credits for part of the speedup.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match.
    pub fn convolve_spectrum(&self, field: &mut Field, transfer: &Field) {
        self.forward(field);
        field.hadamard_assign(transfer);
        self.inverse(field);
    }

    /// Adjoint of [`Fft2::convolve_spectrum`]: propagates a gradient with the
    /// conjugated transfer function. Under the `(1, 1/N)` normalization the
    /// adjoint of `F⁻¹ diag(H) F` is exactly `F⁻¹ diag(H̄) F`.
    pub fn convolve_spectrum_adjoint(&self, grad: &mut Field, transfer: &Field) {
        self.forward(grad);
        grad.hadamard_conj_assign(transfer);
        self.inverse(grad);
    }
}

/// Naive `O(n²)` DFT used as a reference in tests.
pub fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let w = Complex64::cis(sign * 2.0 * PI * (j * k % n) as f64 / n as f64);
            acc += x * w;
        }
        *o = match dir {
            Direction::Forward => acc,
            Direction::Inverse => acc / n as f64,
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(n: usize) {
        let plan = FftPlan::new(n);
        let mut data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let orig = data.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut data, Direction::Forward, &mut scratch);
        plan.process(&mut data, Direction::Inverse, &mut scratch);
        for (a, b) in data.iter().zip(&orig) {
            assert!((*a - *b).norm() < 1e-9, "roundtrip failed for n={n}");
        }
    }

    #[test]
    fn roundtrip_power_of_two() {
        for n in [1, 2, 4, 8, 64, 256, 1024] {
            roundtrip(n);
        }
    }

    #[test]
    fn roundtrip_arbitrary_sizes() {
        for n in [3, 5, 6, 7, 12, 100, 200, 350, 500] {
            roundtrip(n);
        }
    }

    fn against_naive(n: usize) {
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let expected = dft_naive(&input, Direction::Forward);
        let plan = FftPlan::new(n);
        let mut data = input.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut data, Direction::Forward, &mut scratch);
        for (a, b) in data.iter().zip(&expected) {
            assert!((*a - *b).norm() < 1e-8 * (n as f64), "mismatch vs naive DFT at n={n}");
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2, 3, 4, 5, 8, 16, 20, 31, 64, 100] {
            against_naive(n);
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 16;
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        let plan = FftPlan::new(n);
        let mut scratch = plan.make_scratch();
        plan.process(&mut data, Direction::Forward, &mut scratch);
        for z in &data {
            assert!((*z - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn parseval_1d() {
        let n = 200; // Bluestein path
        let data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let plan = FftPlan::new(n);
        let mut spec = data.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut spec, Direction::Forward, &mut scratch);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum();
        assert!(
            (freq_energy / n as f64 - time_energy).abs() < 1e-8 * time_energy,
            "Parseval violated"
        );
    }

    #[test]
    fn fft2_roundtrip_mixed_sizes() {
        for &(r, c) in &[(4, 4), (8, 16), (5, 7), (20, 20), (3, 8)] {
            let fft = Fft2::new(r, c);
            let f = Field::from_fn(r, c, |i, j| Complex64::new((i * c + j) as f64, (i + j) as f64));
            let mut g = f.clone();
            fft.forward(&mut g);
            fft.inverse(&mut g);
            assert!(f.distance(&g) < 1e-8, "fft2 roundtrip {r}x{c}");
        }
    }

    #[test]
    fn fft2_separable_impulse() {
        // FFT2 of a centered impulse is a pure phase ramp; of an origin
        // impulse it is flat ones.
        let fft = Fft2::new(8, 8);
        let mut f = Field::zeros(8, 8);
        f[(0, 0)] = Complex64::ONE;
        fft.forward(&mut f);
        for z in f.as_slice() {
            assert!((*z - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn fft2_dc_component_is_sum() {
        let fft = Fft2::new(6, 10);
        let f = Field::from_fn(6, 10, |i, j| Complex64::new(i as f64, j as f64));
        let total = f.sum();
        let mut g = f.clone();
        fft.forward(&mut g);
        assert!((g[(0, 0)] - total).norm() < 1e-9);
    }

    #[test]
    fn convolve_spectrum_identity_transfer() {
        let fft = Fft2::new(8, 8);
        let f = Field::from_fn(8, 8, |i, j| Complex64::new(i as f64, j as f64));
        let h = Field::ones(8, 8);
        let mut g = f.clone();
        fft.convolve_spectrum(&mut g, &h);
        assert!(f.distance(&g) < 1e-9);
    }

    #[test]
    fn convolve_adjoint_identity() {
        // <A x, y> == <x, A^H y> for A = IFFT ∘ diag(H) ∘ FFT.
        let fft = Fft2::new(8, 8);
        let h = Field::from_fn(8, 8, |i, j| {
            Complex64::cis(0.3 * i as f64 + 0.17 * j as f64) * (1.0 + 0.1 * j as f64)
        });
        let x = Field::from_fn(8, 8, |i, j| Complex64::new((i * j) as f64 * 0.1, i as f64 - j as f64));
        let y = Field::from_fn(8, 8, |i, j| Complex64::new((i + 2 * j) as f64 * 0.05, 1.0));
        let mut ax = x.clone();
        fft.convolve_spectrum(&mut ax, &h);
        let mut ahy = y.clone();
        fft.convolve_spectrum_adjoint(&mut ahy, &h);
        let lhs = ax.inner(&y);
        let rhs = x.inner(&ahy);
        assert!((lhs - rhs).norm() < 1e-8, "adjoint identity violated: {lhs:?} vs {rhs:?}");
    }

    #[test]
    fn plan_cache_shares_plans() {
        clear_plan_cache();
        let a = planner(64);
        let b = planner(64);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(plan_cache_len(), 1);
        let _c = planner(128);
        assert_eq!(plan_cache_len(), 2);
        clear_plan_cache();
        assert_eq!(plan_cache_len(), 0);
    }

    #[test]
    fn linearity() {
        let n = 48; // power-of-two? no: 48 = 16*3 -> Bluestein path
        let plan = FftPlan::new(n);
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.5)).collect();
        let y: Vec<Complex64> = (0..n).map(|i| Complex64::new(1.0, -(i as f64))).collect();
        let alpha = Complex64::new(0.3, -0.8);

        let mut combo: Vec<Complex64> =
            x.iter().zip(&y).map(|(&a, &b)| a * alpha + b).collect();
        let mut fx = x.clone();
        let mut fy = y.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut combo, Direction::Forward, &mut scratch);
        plan.process(&mut fx, Direction::Forward, &mut scratch);
        plan.process(&mut fy, Direction::Forward, &mut scratch);
        for k in 0..n {
            let expect = fx[k] * alpha + fy[k];
            assert!((combo[k] - expect).norm() < 1e-7, "linearity failed at {k}");
        }
    }
}
