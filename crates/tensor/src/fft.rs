//! Fast Fourier transforms for the optics kernels.
//!
//! The diffraction kernels in LightRidge are built on 2-D FFT convolution
//! (paper Eq. 6–7). This module implements the transforms from scratch:
//!
//! * **Radix-4/radix-2 Cooley-Tukey** (iterative, precomputed twiddles and
//!   bit-reversal permutation) for power-of-two sizes. Stages are fused in
//!   pairs into radix-4 butterflies — half the passes over the data of a
//!   plain radix-2 loop — with a single radix-2 stage first when the stage
//!   count is odd.
//! * **Bluestein's chirp-z algorithm** for arbitrary sizes — the paper's
//!   system resolutions (200², 350², 500²) are *not* powers of two.
//! * **Rader's algorithm** for prime lengths `p` whose `p − 1` is
//!   2·3·5·7-smooth: the length-`p` DFT becomes a length-`p−1` cyclic
//!   convolution run through the radix-2 or Stockham pipeline — one
//!   inner transform pair at size `p−1` instead of Bluestein's two at
//!   `m ≥ 2p−1`. This retires the Bluestein fallback for most primes
//!   (e.g. 197, 211); only primes like 23 or 199 whose `p − 1` has a
//!   factor above 7 still take the chirp-z path.
//! * A global, thread-safe **plan cache** so repeated propagations at the
//!   same resolution reuse twiddle tables and chirp spectra. Plan reuse is
//!   one of the runtime optimizations that separates LightRidge from the
//!   LightPipes baseline (paper Table 1, Fig. 8).
//! * A **zero-allocation 2-D pipeline**: [`Fft2`] transforms rows in place
//!   and columns through a cache-blocked strided kernel that stages a few
//!   columns at a time in a reusable buffer — no transpose fields are ever
//!   materialized (earlier revisions allocated two full fields per 2-D
//!   transform). Large fields additionally split their row/column loops
//!   across the persistent worker pool (`crate::parallel`).
//! * **Batched entry points**: [`Fft2::fft2_batch_with`] /
//!   [`Fft2::ifft2_batch_with`] (and the direction-generic
//!   [`Fft2::process_batch_with`]) transform every plane of a
//!   [`FieldBatch`] with **one plan lookup** and one shared
//!   [`BatchWorkspace`], streaming the same precomputed twiddles across
//!   all `B` planes. Every plane runs the identical strided
//!   radix-4/Stockham pipeline as the per-sample path
//!   ([`Fft2::process_slice_with`] is the single shared kernel), so
//!   batched and per-sample transforms are **bit-identical** — the
//!   invariant the whole batched propagation stack (lr-optics
//!   `propagate_batch_into`, lr-core `infer_batch_into`, the lr-serve
//!   dispatcher) is built on.
//!
//! # Workspace-reuse contract
//!
//! All per-call scratch lives in an [`Fft2Workspace`] (2-D), a
//! [`BatchWorkspace`] (batched 2-D — one per-plane workspace shared by all
//! planes, sized independently of the batch count), or a plain
//! `Vec<Complex64>` (1-D, from [`FftPlan::make_scratch`]):
//!
//! * **Ownership** — the *caller* owns workspaces and passes them by
//!   `&mut`. [`Fft2::process_with`] performs **zero heap allocations** once
//!   the workspace has warmed up for its shape. The convenience entry
//!   points ([`Fft2::forward`], [`Fft2::inverse`], …) borrow a
//!   thread-local workspace keyed by shape, so they are also
//!   allocation-free in steady state without any API change.
//! * **Thread safety** — plans are immutable after construction and shared
//!   via `Arc`; the global plan cache is a mutex-guarded map touched once
//!   per new length. Workspaces are *not* `Sync`; each thread uses its
//!   own (the thread-local pool guarantees this for implicit calls).
//! * **Parallel mode** — when a field is large (≥ `PAR_MIN_LEN` samples),
//!   the current thread is not already inside a parallel region, and more
//!   than one worker is configured, row/column loops run on the persistent
//!   pool and each worker thread draws scratch from its own thread-local
//!   pool (the caller's workspace is not shared across threads).
//!
//! Normalization convention: forward transforms are unnormalized, inverse
//! transforms carry the `1/N` factor. For the 2-D transforms the inverse
//! therefore scales by `1/(rows·cols)`.
//!
//! # Plan selection
//!
//! [`FftPlan::new`] picks, in order: the radix-4/8/2 power-of-two kernel;
//! the Stockham mixed-radix pipeline for 2·3·5·7-smooth lengths; Rader's
//! algorithm for primes `p` with smooth `p − 1`; Bluestein's chirp-z for
//! everything else. Power-of-two plans with an odd stage count open with
//! one **radix-8** stage (split-radix-style: three fused radix-2 levels,
//! two non-trivial twiddles) instead of the old radix-2 stage, so the
//! remaining passes are pure radix-4. Every fast path keeps its
//! pre-optimization oracle: `process_reference` runs plain radix-2 /
//! reference-Bluestein kernels and the fast paths agree with it to
//! ≤ 1e-12 relative (`radix4_agrees_with_reference_butterflies`).
//!
//! # Cross-plane SIMD (batched entry points)
//!
//! The batched entry points ([`Fft2::process_batch_with`],
//! [`Fft2::convolve_spectrum_batch_with`], …) vectorize **across batch
//! lanes**: groups of `L ∈ {2, 4}` co-resident planes are packed into a
//! split re/im, lane-major layout (element `i` holds
//! `[re₀‥re_{L−1}, im₀‥im_{L−1}]`), so one twiddle load drives `L` planes
//! through the identical butterfly and every complex multiply is plain
//! lanewise arithmetic — no shuffles. The lane width comes from
//! [`crate::simd::dispatch`] (SSE2 baseline / AVX2 by runtime detection on
//! x86-64, NEON on aarch64, scalar elsewhere; `LR_SIMD=scalar|x2|x4`
//! overrides), and the kernel profile attributes batched FFT time to
//! `simd_scalar` / `simd_sse2` / `simd_avx2` / `simd_neon` cells.
//!
//! **Equivalence contract** (the renegotiated workspace-reuse contract):
//! every vector lane executes the *exact scalar operation sequence* of the
//! per-plane kernel, so batched results stay **bitwise identical** to the
//! per-sample path at every dispatch level — including forced-scalar
//! (`LR_SIMD=scalar`), which simply routes each plane through
//! [`Fft2::process_slice_with`] unchanged. The serve-path bit-identity
//! guarantee is therefore preserved unconditionally for the FFT and
//! transfer-apply kernels. The one tolerance-renegotiated entry point is
//! the detector readout ([`crate::simd::sum_norm_sqr`]): its lane-partial
//! reduction re-associates the intensity sum, and scalar remains the
//! oracle within a documented **≤ 1e-12 relative** tolerance (batched and
//! per-sample detector readouts share one kernel, so batched-vs-per-sample
//! stays exact; only SIMD-vs-scalar is tolerance-checked).
//!
//! SIMD staging buffers live in [`Fft2Workspace`] but are **empty until a
//! batched entry point is used** (or [`Fft2::prepare_batch_workspace`]
//! sizes them eagerly), so per-sample workspaces pay nothing. Pooled
//! multi-thread execution (`PAR_MIN_LEN`) keeps the scalar per-plane
//! kernels — lane packing engages on the sequential path only.

use crate::batch::FieldBatch;
use crate::complex::Complex64;
use crate::field::Field;
use crate::parallel;
use crate::pinned_cache::PinnedCache;
use crate::simd::{self, SimdF64, SimdLevel};
use lr_obs::{KernelKind, KernelTimer};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::f64::consts::PI;
use std::sync::Arc;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `X_k = Σ x_j · e^{-2πi jk/N}` (unnormalized).
    Forward,
    /// `x_j = (1/N) Σ X_k · e^{+2πi jk/N}`.
    Inverse,
}

/// A reusable 1-D FFT plan for a fixed length.
///
/// Plans are cheap to share (`Arc`) and safe to use from multiple threads;
/// per-call scratch is passed in by the caller.
///
/// # Examples
///
/// ```
/// use lr_tensor::{Complex64, FftPlan, Direction};
/// let plan = FftPlan::new(6);
/// let mut data: Vec<Complex64> = (0..6).map(|i| Complex64::new(i as f64, 0.0)).collect();
/// let orig = data.clone();
/// let mut scratch = plan.make_scratch();
/// plan.process(&mut data, Direction::Forward, &mut scratch);
/// plan.process(&mut data, Direction::Inverse, &mut scratch);
/// for (a, b) in data.iter().zip(&orig) {
///     assert!((*a - *b).norm() < 1e-10);
/// }
/// ```
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug)]
enum PlanKind {
    Radix2(Radix2Plan),
    /// Smooth (2·3·5·7-factorable) lengths — the paper's 200/350/500
    /// resolutions — run a Stockham autosort mixed-radix pipeline, several
    /// times cheaper than the Bluestein fallback. The pre-change Bluestein
    /// plan is kept alongside as the `process_reference` oracle.
    Mixed {
        mixed: MixedRadixPlan,
        reference: BluesteinPlan,
    },
    /// Prime lengths `p` with 2·3·5·7-smooth `p − 1` run Rader's
    /// prime-length algorithm (a length-`p−1` cyclic convolution). The
    /// Bluestein plan these lengths previously used is kept alongside as
    /// the `process_reference` oracle.
    Rader {
        rader: RaderPlan,
        reference: BluesteinPlan,
    },
    Bluestein(BluesteinPlan),
}

#[derive(Debug)]
struct Radix2Plan {
    /// Bit-reversal permutation indices.
    bitrev: Vec<u32>,
    /// `tw[k] = e^{-2πi k/n}` for `k < n/2` (reference kernel).
    twiddles: Vec<Complex64>,
    /// Opening stage when the radix-4 pass count alone cannot cover `n`.
    leading: Leading,
    /// Per-pass twiddle triples `(wa, wb0, wb1)` for the fused radix-4
    /// stages, laid out sequentially in traversal order so the hot loop
    /// streams them instead of gathering `tw[k·stride]`.
    fused: Vec<FusedStage>,
}

/// Opening butterfly stage of the power-of-two kernel. An even stage count
/// needs none; an odd count opens with one split-radix-style **radix-8**
/// butterfly (three fused radix-2 levels, twiddles `1, w₈, −j, w₈³` — two
/// complex multiplies per octet) except for `n = 2`, which keeps the plain
/// radix-2 pair.
#[derive(Debug)]
enum Leading {
    None,
    Radix2,
    Radix8 {
        /// `e^{−2πi/8}`.
        w1: Complex64,
        /// `e^{−2πi·3/8}`.
        w3: Complex64,
    },
}

/// One fused pair of stages (sizes `2h` and `4h`) of the radix-4 kernel.
#[derive(Debug)]
struct FusedStage {
    /// Half the first fused stage: quartets span `4·half` elements.
    half: usize,
    /// `[wa_k, wb0_k, wb1_k]` for `k in 1..half` (the `k = 0` lane has the
    /// trivial twiddles `1, 1, −j` and is special-cased).
    tw: Vec<Complex64>,
}

#[derive(Debug)]
struct BluesteinPlan {
    /// Inner power-of-two convolution length `m ≥ 2n-1`.
    m: usize,
    inner: Radix2Plan,
    /// Forward chirp `c_j = e^{-iπ j²/n}` for `j < n`.
    chirp: Vec<Complex64>,
    /// `c_k / m` — the output chirp with the inner-inverse normalization
    /// folded in (one multiply per sample instead of two).
    post_chirp: Vec<Complex64>,
    /// Forward FFT (length `m`) of the wrapped conjugate chirp.
    chirp_spectrum: Vec<Complex64>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be nonzero");
        let kind = if n.is_power_of_two() {
            PlanKind::Radix2(Radix2Plan::new(n))
        } else if let Some(factors) = MixedRadixPlan::factorize(n) {
            PlanKind::Mixed {
                mixed: MixedRadixPlan::new(n, &factors),
                reference: BluesteinPlan::new(n),
            }
        } else if let Some(rader) = RaderPlan::try_new(n) {
            PlanKind::Rader {
                rader,
                reference: BluesteinPlan::new(n),
            }
        } else {
            PlanKind::Bluestein(BluesteinPlan::new(n))
        };
        FftPlan { n, kind }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the plan length is zero. Construction enforces `n > 0`, so
    /// this is honest but always `false` for plans built through
    /// [`FftPlan::new`].
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True if this plan's fast path uses Bluestein's algorithm (lengths
    /// with a prime factor above 7; the paper's smooth resolutions use the
    /// mixed-radix pipeline instead).
    pub fn is_bluestein(&self) -> bool {
        matches!(self.kind, PlanKind::Bluestein(_))
    }

    /// True if this plan uses the Stockham mixed-radix pipeline
    /// (non-power-of-two, 2·3·5·7-smooth length).
    pub fn is_mixed_radix(&self) -> bool {
        matches!(self.kind, PlanKind::Mixed { .. })
    }

    /// True if this plan uses Rader's prime-length algorithm (prime `n`
    /// with 2·3·5·7-smooth `n − 1`).
    pub fn is_rader(&self) -> bool {
        matches!(self.kind, PlanKind::Rader { .. })
    }

    /// Scratch length this plan needs (`0` for pure radix-2 plans).
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            PlanKind::Radix2(_) => 0,
            // The reference Bluestein buffer (m ≥ 2n−1) also covers the
            // Stockham ping-pong buffer (n).
            PlanKind::Mixed { reference, .. } => reference.m,
            // m ≥ 2n−1 also covers Rader's needs: the length-(n−1)
            // convolution buffer plus (for a mixed-radix inner plan) its
            // ping-pong scratch — at most 2(n−1) elements.
            PlanKind::Rader { reference, .. } => reference.m,
            PlanKind::Bluestein(b) => b.m,
        }
    }

    /// Allocates a scratch buffer sized for this plan. Reuse it across calls
    /// to avoid per-transform allocation.
    pub fn make_scratch(&self) -> Vec<Complex64> {
        vec![Complex64::ZERO; self.scratch_len()]
    }

    /// Transforms `data` in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn process(&self, data: &mut [Complex64], dir: Direction, scratch: &mut Vec<Complex64>) {
        self.process_impl(data, dir, scratch, false);
    }

    /// Transforms `data` in place with the pre-optimization kernels: plain
    /// radix-2 butterflies, no stage fusion. Kept as the bit-level oracle
    /// for the radix-4 path and as the baseline the perf artifacts
    /// (`BENCH_kernels.json`) compare against.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn process_reference(
        &self,
        data: &mut [Complex64],
        dir: Direction,
        scratch: &mut Vec<Complex64>,
    ) {
        self.process_impl(data, dir, scratch, true);
    }

    fn process_impl(
        &self,
        data: &mut [Complex64],
        dir: Direction,
        scratch: &mut Vec<Complex64>,
        reference: bool,
    ) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        match dir {
            Direction::Forward => self.forward(data, scratch, reference),
            Direction::Inverse => {
                if let (PlanKind::Radix2(p), false) = (&self.kind, reference) {
                    // Conjugated-twiddle kernel: bit-identical to the
                    // conj(F(conj(·)))/n sandwich, two passes cheaper.
                    p.backward_noscale(data);
                    let inv_n = 1.0 / self.n as f64;
                    for z in data.iter_mut() {
                        *z *= inv_n;
                    }
                    return;
                }
                // x = conj(F(conj(X))) / n
                for z in data.iter_mut() {
                    *z = z.conj();
                }
                self.forward(data, scratch, reference);
                let inv_n = 1.0 / self.n as f64;
                for z in data.iter_mut() {
                    *z = z.conj() * inv_n;
                }
            }
        }
    }

    fn forward(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>, reference: bool) {
        match &self.kind {
            PlanKind::Radix2(p) => {
                if reference {
                    p.forward_reference(data);
                } else {
                    p.forward(data);
                }
            }
            PlanKind::Mixed {
                mixed,
                reference: oracle,
            } => {
                if reference {
                    oracle.forward_reference(data, scratch);
                } else {
                    mixed.forward(data, scratch);
                }
            }
            PlanKind::Rader {
                rader,
                reference: oracle,
            } => {
                if reference {
                    oracle.forward_reference(data, scratch);
                } else {
                    rader.forward(data, scratch);
                }
            }
            PlanKind::Bluestein(p) => p.forward(data, scratch, reference),
        }
    }

    /// Lane-packed variant of [`FftPlan::process`]: transforms `V::LANES`
    /// independent length-`n` signals stored in the split re/im lane-major
    /// layout (element `i` at `data[i·2L..]` holds `L` re then `L` im
    /// values). Every lane performs the scalar kernel's exact operation
    /// sequence, so per-lane results are bitwise identical to
    /// [`FftPlan::process`]. `scratch` must hold `scratch_len()·2L` f64s.
    #[cfg_attr(not(debug_assertions), inline(always))]
    fn process_v<V: SimdF64>(&self, data: &mut [f64], dir: Direction, scratch: &mut [f64]) {
        debug_assert_eq!(data.len(), self.n * 2 * V::LANES);
        match dir {
            Direction::Forward => self.forward_v::<V>(data, scratch),
            Direction::Inverse => {
                if let PlanKind::Radix2(p) = &self.kind {
                    // Mirrors the scalar conjugated-twiddle inverse.
                    p.butterflies_v::<V, true>(data);
                    scale_packed::<V>(data, 1.0 / self.n as f64);
                    return;
                }
                // x = conj(F(conj(X))) / n — the scalar sandwich, lanewise.
                conj_packed::<V>(data);
                self.forward_v::<V>(data, scratch);
                conj_scale_packed::<V>(data, 1.0 / self.n as f64);
            }
        }
    }

    #[cfg_attr(not(debug_assertions), inline(always))]
    fn forward_v<V: SimdF64>(&self, data: &mut [f64], scratch: &mut [f64]) {
        match &self.kind {
            PlanKind::Radix2(p) => p.butterflies_v::<V, false>(data),
            PlanKind::Mixed { mixed, .. } => mixed.forward_slice_v::<V>(data, scratch),
            PlanKind::Rader { rader, .. } => rader.forward_v::<V>(data, scratch),
            PlanKind::Bluestein(p) => p.forward_v::<V>(data, scratch),
        }
    }
}

/// A complex number per vector lane, in split re/im form. The arithmetic
/// mirrors [`Complex64`]'s formulas operation-for-operation, which is what
/// makes the lane-packed kernels bitwise identical to the scalar path.
#[derive(Clone, Copy)]
struct VComplex<V> {
    re: V,
    im: V,
}

impl<V: SimdF64> VComplex<V> {
    /// Broadcasts one complex value (a twiddle) to all lanes.
    #[inline(always)]
    fn splat(z: Complex64) -> Self {
        VComplex {
            re: V::splat(z.re),
            im: V::splat(z.im),
        }
    }

    /// Loads one packed element (`L` re values then `L` im values).
    ///
    /// # Safety
    ///
    /// `p` must be valid for reading `2·LANES` f64s.
    #[inline(always)]
    unsafe fn load(p: *const f64) -> Self {
        // SAFETY: caller provides 2·LANES readable f64s at `p`.
        unsafe {
            VComplex {
                re: V::load(p),
                im: V::load(p.add(V::LANES)),
            }
        }
    }

    /// Stores one packed element.
    ///
    /// # Safety
    ///
    /// `p` must be valid for writing `2·LANES` f64s.
    #[inline(always)]
    unsafe fn store(self, p: *mut f64) {
        // SAFETY: caller provides 2·LANES writable f64s at `p`.
        unsafe {
            self.re.store(p);
            self.im.store(p.add(V::LANES));
        }
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        VComplex {
            re: self.re.add(o.re),
            im: self.im.add(o.im),
        }
    }

    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        VComplex {
            re: self.re.sub(o.re),
            im: self.im.sub(o.im),
        }
    }

    /// Complex multiply, in exactly [`Complex64`]'s operation order:
    /// `re = a.re·b.re − a.im·b.im`, `im = a.re·b.im + a.im·b.re`.
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        VComplex {
            re: self.re.mul(o.re).sub(self.im.mul(o.im)),
            im: self.re.mul(o.im).add(self.im.mul(o.re)),
        }
    }

    /// `∓j` rotation exactly as the scalar butterflies write it:
    /// forward `(im, −re)`, inverse `(−im, re)`.
    #[inline(always)]
    fn rot<const INV: bool>(self) -> Self {
        if INV {
            VComplex {
                re: self.im.neg(),
                im: self.re,
            }
        } else {
            VComplex {
                re: self.im,
                im: self.re.neg(),
            }
        }
    }
}

/// Lanewise `*z *= s` over a whole packed buffer (every f64 scales).
#[cfg_attr(not(debug_assertions), inline(always))]
fn scale_packed<V: SimdF64>(data: &mut [f64], s: f64) {
    let s = V::splat(s);
    let ptr = data.as_mut_ptr();
    let vecs = data.len() / V::LANES;
    for i in 0..vecs {
        // SAFETY: (i+1)·LANES ≤ data.len() — packed buffers are a multiple
        // of 2·LANES long.
        unsafe {
            let p = ptr.add(i * V::LANES);
            V::load(p).mul(s).store(p);
        }
    }
}

/// Lanewise `*z = z.conj()` over a packed buffer (negates im halves).
#[cfg_attr(not(debug_assertions), inline(always))]
fn conj_packed<V: SimdF64>(data: &mut [f64]) {
    let stride = 2 * V::LANES;
    let count = data.len() / stride;
    let ptr = data.as_mut_ptr();
    for i in 0..count {
        // SAFETY: element i's im half spans [i·2L+L, (i+1)·2L) ≤ len.
        unsafe {
            let p = ptr.add(i * stride + V::LANES);
            V::load(p).neg().store(p);
        }
    }
}

/// Lanewise `*z = z.conj() * s` over a packed buffer.
#[cfg_attr(not(debug_assertions), inline(always))]
fn conj_scale_packed<V: SimdF64>(data: &mut [f64], s: f64) {
    let s = V::splat(s);
    let stride = 2 * V::LANES;
    let count = data.len() / stride;
    let ptr = data.as_mut_ptr();
    for i in 0..count {
        // SAFETY: both halves of element i lie inside the packed buffer.
        unsafe {
            let pre = ptr.add(i * stride);
            let pim = pre.add(V::LANES);
            V::load(pre).mul(s).store(pre);
            V::load(pim).neg().mul(s).store(pim);
        }
    }
}

/// Lanewise `*z *= h[i]` (or `h[i].conj()`) over a packed buffer, one
/// broadcast complex coefficient per element — the transfer-function and
/// Rader/Bluestein spectrum multiplies.
#[cfg_attr(not(debug_assertions), inline(always))]
fn mul_coeffs_packed<V: SimdF64>(data: &mut [f64], coeffs: &[Complex64], conj: bool) {
    let stride = 2 * V::LANES;
    debug_assert!(data.len() >= coeffs.len() * stride);
    let ptr = data.as_mut_ptr();
    for (i, &h) in coeffs.iter().enumerate() {
        let h = if conj { h.conj() } else { h };
        let hv = VComplex::<V>::splat(h);
        // SAFETY: i < coeffs.len() ≤ data.len()/2L packed elements.
        unsafe {
            let p = ptr.add(i * stride);
            VComplex::<V>::load(p).mul(hv).store(p);
        }
    }
}

/// Packs `LANES` contiguous row-major planes into the split re/im
/// lane-major layout: packed element `i` is `[re₀‥re_{L−1}, im₀‥im_{L−1}]`
/// at offset `i·2L`, lane `l` carrying plane `l` of the group.
#[cfg_attr(not(debug_assertions), inline(always))]
fn pack_group<V: SimdF64>(group: &[Complex64], packed: &mut [f64]) {
    let lanes = V::LANES;
    let n = group.len() / lanes;
    debug_assert_eq!(packed.len(), n * 2 * lanes);
    // Complex64 is repr(C) { re, im }: a plane is interleaved re/im pairs.
    let src = group.as_ptr() as *const f64;
    let dst = packed.as_mut_ptr();
    for l in 0..lanes {
        for i in 0..n {
            // SAFETY: (l·n + i) < lanes·n samples of `group` (2 f64s each);
            // the packed offsets are < n·2·lanes.
            unsafe {
                *dst.add(i * 2 * lanes + l) = *src.add((l * n + i) * 2);
                *dst.add(i * 2 * lanes + lanes + l) = *src.add((l * n + i) * 2 + 1);
            }
        }
    }
}

/// Inverse of [`pack_group`].
#[cfg_attr(not(debug_assertions), inline(always))]
fn unpack_group<V: SimdF64>(packed: &[f64], group: &mut [Complex64]) {
    let lanes = V::LANES;
    let n = group.len() / lanes;
    debug_assert_eq!(packed.len(), n * 2 * lanes);
    let src = packed.as_ptr();
    let dst = group.as_mut_ptr() as *mut f64;
    for l in 0..lanes {
        for i in 0..n {
            // SAFETY: same bounds as `pack_group`, directions swapped.
            unsafe {
                *dst.add((l * n + i) * 2) = *src.add(i * 2 * lanes + l);
                *dst.add((l * n + i) * 2 + 1) = *src.add(i * 2 * lanes + lanes + l);
            }
        }
    }
}

impl Radix2Plan {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two());
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        let twiddles: Vec<Complex64> = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / n as f64))
            .collect();
        // Precompute the fused-stage twiddle stream: after the optional
        // leading radix-8 (or radix-2 for n = 2) stage, each radix-4 pass
        // fuses stages of size `2h` and `4h`; its lane-k twiddles are
        // wa = e^{-2πik/2h}, wb0 = e^{-2πik/4h}, wb1 = e^{-2πi(k+h)/4h}.
        let (leading, first_len) = if bits.is_multiple_of(2) {
            (Leading::None, 2)
        } else if bits == 1 {
            (Leading::Radix2, 4)
        } else {
            (
                Leading::Radix8 {
                    w1: twiddles[n / 8],
                    w3: twiddles[3 * n / 8],
                },
                16,
            )
        };
        let mut fused = Vec::new();
        let mut len = first_len;
        while len * 2 <= n {
            let h = len / 2;
            let stride1 = n / len;
            let stride2 = n / (len * 2);
            let mut tw = Vec::with_capacity(3 * (h - 1));
            for k in 1..h {
                tw.push(twiddles[k * stride1]);
                tw.push(twiddles[k * stride2]);
                tw.push(twiddles[(k + h) * stride2]);
            }
            fused.push(FusedStage { half: h, tw });
            len *= 4;
        }
        Radix2Plan {
            bitrev,
            twiddles,
            leading,
            fused,
        }
    }

    /// Bit-reversal permutation shared by both butterfly kernels.
    #[inline]
    fn permute(&self, data: &mut [Complex64]) {
        for (i, &r) in self.bitrev.iter().enumerate() {
            let r = r as usize;
            if i < r {
                data.swap(i, r);
            }
        }
    }

    /// Iterative decimation-in-time FFT with stages fused in pairs into
    /// radix-4 butterflies (one pass over the data per pair instead of
    /// two). `e^{-2πi/n}` kernel.
    fn forward(&self, data: &mut [Complex64]) {
        self.butterflies::<false>(data);
    }

    /// The unnormalized inverse (`e^{+2πi/n}` kernel, no `1/n`): the same
    /// butterfly network with conjugated twiddles. Lets Bluestein's inner
    /// inverse run without the two extra conjugation passes of
    /// `conj(F(conj(·)))`.
    fn backward_noscale(&self, data: &mut [Complex64]) {
        self.butterflies::<true>(data);
    }

    /// Radix-4 butterfly network over bit-reversed data. The twiddle
    /// stream is precomputed per stage in traversal order; the `k = 0`
    /// lane (twiddles `1, 1, ∓j`) is special-cased to pure adds/swaps.
    fn butterflies<const INV: bool>(&self, data: &mut [Complex64]) {
        #[inline(always)]
        fn mul_tw<const INV: bool>(a: Complex64, w: Complex64) -> Complex64 {
            if INV {
                a * w.conj()
            } else {
                a * w
            }
        }
        let n = data.len();
        if n <= 1 {
            return;
        }
        self.permute(data);
        let ptr = data.as_mut_ptr();
        match &self.leading {
            Leading::None => {}
            Leading::Radix2 => {
                // n = 2: a single radix-2 pair (twiddle 1).
                let mut base = 0;
                while base < n {
                    // SAFETY: base + 1 < n (n is even here).
                    unsafe {
                        let a = *ptr.add(base);
                        let b = *ptr.add(base + 1);
                        *ptr.add(base) = a + b;
                        *ptr.add(base + 1) = a - b;
                    }
                    base += 2;
                }
            }
            Leading::Radix8 { w1, w3 } => {
                // Odd stage count, n ≥ 8: one radix-8 butterfly — the exact
                // composition of the three opening radix-2 levels (lengths
                // 2, 4, 8) with twiddles 1, ∓j, w₈^{±1}, w₈^{±3} — brings
                // the remaining count even for the radix-4 passes.
                let (w1, w3) = if INV {
                    (w1.conj(), w3.conj())
                } else {
                    (*w1, *w3)
                };
                let rot = |x: Complex64| {
                    if INV {
                        Complex64::new(-x.im, x.re)
                    } else {
                        Complex64::new(x.im, -x.re)
                    }
                };
                let mut base = 0;
                while base < n {
                    // SAFETY: base + 7 < n (n is a multiple of 8 here).
                    unsafe {
                        let a0 = *ptr.add(base);
                        let a1 = *ptr.add(base + 1);
                        let a2 = *ptr.add(base + 2);
                        let a3 = *ptr.add(base + 3);
                        let a4 = *ptr.add(base + 4);
                        let a5 = *ptr.add(base + 5);
                        let a6 = *ptr.add(base + 6);
                        let a7 = *ptr.add(base + 7);
                        // Level 1 (pairs).
                        let b0 = a0 + a1;
                        let b1 = a0 - a1;
                        let b2 = a2 + a3;
                        let b3 = a2 - a3;
                        let b4 = a4 + a5;
                        let b5 = a4 - a5;
                        let b6 = a6 + a7;
                        let b7 = a6 - a7;
                        // Level 2 (quartets, twiddles 1 and ∓j).
                        let t3 = rot(b3);
                        let t7 = rot(b7);
                        let c0 = b0 + b2;
                        let c2 = b0 - b2;
                        let c1 = b1 + t3;
                        let c3 = b1 - t3;
                        let c4 = b4 + b6;
                        let c6 = b4 - b6;
                        let c5 = b5 + t7;
                        let c7 = b5 - t7;
                        // Level 3 (octet, twiddles 1, w₈, ∓j, w₈³).
                        let e5 = c5 * w1;
                        let t6 = rot(c6);
                        let e7 = c7 * w3;
                        *ptr.add(base) = c0 + c4;
                        *ptr.add(base + 4) = c0 - c4;
                        *ptr.add(base + 1) = c1 + e5;
                        *ptr.add(base + 5) = c1 - e5;
                        *ptr.add(base + 2) = c2 + t6;
                        *ptr.add(base + 6) = c2 - t6;
                        *ptr.add(base + 3) = c3 + e7;
                        *ptr.add(base + 7) = c3 - e7;
                    }
                    base += 8;
                }
            }
        }
        for stage in &self.fused {
            let h = stage.half;
            let block = 4 * h;
            let tw = stage.tw.as_ptr();
            let mut base = 0;
            while base < n {
                // SAFETY: every index below is < base + 4h ≤ n, and the
                // twiddle stream holds 3·(h−1) entries read at ti < 3(h−1).
                unsafe {
                    // k = 0: wa = wb0 = 1, wb1 = ∓j — no multiplies.
                    let p0 = ptr.add(base);
                    let p1 = ptr.add(base + h);
                    let p2 = ptr.add(base + 2 * h);
                    let p3 = ptr.add(base + 3 * h);
                    let (a0, a1, a2, a3) = (*p0, *p1, *p2, *p3);
                    let u0 = a0 + a1;
                    let u1 = a0 - a1;
                    let u2 = a2 + a3;
                    let u3 = a2 - a3;
                    let v1 = if INV {
                        Complex64::new(-u3.im, u3.re)
                    } else {
                        Complex64::new(u3.im, -u3.re)
                    };
                    *p0 = u0 + u2;
                    *p2 = u0 - u2;
                    *p1 = u1 + v1;
                    *p3 = u1 - v1;
                    let mut ti = 0;
                    for k in 1..h {
                        let wa = *tw.add(ti);
                        let wb0 = *tw.add(ti + 1);
                        let wb1 = *tw.add(ti + 2);
                        ti += 3;
                        let p0 = ptr.add(base + k);
                        let p1 = ptr.add(base + k + h);
                        let p2 = ptr.add(base + k + 2 * h);
                        let p3 = ptr.add(base + k + 3 * h);
                        let a0 = *p0;
                        let a1 = mul_tw::<INV>(*p1, wa);
                        let a2 = *p2;
                        let a3 = mul_tw::<INV>(*p3, wa);
                        let u0 = a0 + a1;
                        let u1 = a0 - a1;
                        let u2 = a2 + a3;
                        let u3 = a2 - a3;
                        let v0 = mul_tw::<INV>(u2, wb0);
                        let v1 = mul_tw::<INV>(u3, wb1);
                        *p0 = u0 + v0;
                        *p2 = u0 - v0;
                        *p1 = u1 + v1;
                        *p3 = u1 - v1;
                    }
                }
                base += block;
            }
        }
    }

    /// Lane-packed mirror of [`Radix2Plan::butterflies`]: the identical
    /// permutation/leading/fused-stage network with every scalar operation
    /// replaced by its lanewise counterpart in the same order, so each
    /// lane's result is bitwise identical to the scalar kernel.
    #[cfg_attr(not(debug_assertions), inline(always))]
    fn butterflies_v<V: SimdF64, const INV: bool>(&self, data: &mut [f64]) {
        #[inline(always)]
        fn mul_tw_v<V: SimdF64, const INV: bool>(a: VComplex<V>, w: Complex64) -> VComplex<V> {
            let w = if INV { w.conj() } else { w };
            a.mul(VComplex::splat(w))
        }
        let stride = 2 * V::LANES;
        let n = data.len() / stride;
        if n <= 1 {
            return;
        }
        let ptr = data.as_mut_ptr();
        for (i, &r) in self.bitrev.iter().enumerate() {
            let r = r as usize;
            if i < r {
                // SAFETY: i, r < n and i ≠ r — disjoint in-bounds packed
                // elements swap as whole lane groups.
                unsafe {
                    let a = VComplex::<V>::load(ptr.add(i * stride));
                    let b = VComplex::<V>::load(ptr.add(r * stride));
                    a.store(ptr.add(r * stride));
                    b.store(ptr.add(i * stride));
                }
            }
        }
        match &self.leading {
            Leading::None => {}
            Leading::Radix2 => {
                let mut base = 0;
                while base < n {
                    // SAFETY: base + 1 < n (n is even here).
                    unsafe {
                        let pa = ptr.add(base * stride);
                        let pb = ptr.add((base + 1) * stride);
                        let a = VComplex::<V>::load(pa);
                        let b = VComplex::<V>::load(pb);
                        a.add(b).store(pa);
                        a.sub(b).store(pb);
                    }
                    base += 2;
                }
            }
            Leading::Radix8 { w1, w3 } => {
                let (w1, w3) = if INV {
                    (w1.conj(), w3.conj())
                } else {
                    (*w1, *w3)
                };
                let w1 = VComplex::<V>::splat(w1);
                let w3 = VComplex::<V>::splat(w3);
                let mut base = 0;
                while base < n {
                    // SAFETY: base + 7 < n (n is a multiple of 8 here); the
                    // octet's packed elements are disjoint and in bounds.
                    unsafe {
                        let a0 = VComplex::<V>::load(ptr.add(base * stride));
                        let a1 = VComplex::<V>::load(ptr.add((base + 1) * stride));
                        let a2 = VComplex::<V>::load(ptr.add((base + 2) * stride));
                        let a3 = VComplex::<V>::load(ptr.add((base + 3) * stride));
                        let a4 = VComplex::<V>::load(ptr.add((base + 4) * stride));
                        let a5 = VComplex::<V>::load(ptr.add((base + 5) * stride));
                        let a6 = VComplex::<V>::load(ptr.add((base + 6) * stride));
                        let a7 = VComplex::<V>::load(ptr.add((base + 7) * stride));
                        let b0 = a0.add(a1);
                        let b1 = a0.sub(a1);
                        let b2 = a2.add(a3);
                        let b3 = a2.sub(a3);
                        let b4 = a4.add(a5);
                        let b5 = a4.sub(a5);
                        let b6 = a6.add(a7);
                        let b7 = a6.sub(a7);
                        let t3 = b3.rot::<INV>();
                        let t7 = b7.rot::<INV>();
                        let c0 = b0.add(b2);
                        let c2 = b0.sub(b2);
                        let c1 = b1.add(t3);
                        let c3 = b1.sub(t3);
                        let c4 = b4.add(b6);
                        let c6 = b4.sub(b6);
                        let c5 = b5.add(t7);
                        let c7 = b5.sub(t7);
                        let e5 = c5.mul(w1);
                        let t6 = c6.rot::<INV>();
                        let e7 = c7.mul(w3);
                        c0.add(c4).store(ptr.add(base * stride));
                        c0.sub(c4).store(ptr.add((base + 4) * stride));
                        c1.add(e5).store(ptr.add((base + 1) * stride));
                        c1.sub(e5).store(ptr.add((base + 5) * stride));
                        c2.add(t6).store(ptr.add((base + 2) * stride));
                        c2.sub(t6).store(ptr.add((base + 6) * stride));
                        c3.add(e7).store(ptr.add((base + 3) * stride));
                        c3.sub(e7).store(ptr.add((base + 7) * stride));
                    }
                    base += 8;
                }
            }
        }
        for stage in &self.fused {
            let h = stage.half;
            let block = 4 * h;
            let tw = stage.tw.as_ptr();
            let mut base = 0;
            while base < n {
                // SAFETY: every packed element index below is
                // < base + 4h ≤ n, and the twiddle stream holds 3·(h−1)
                // entries read at ti < 3(h−1) — as in the scalar kernel.
                unsafe {
                    let p0 = ptr.add(base * stride);
                    let p1 = ptr.add((base + h) * stride);
                    let p2 = ptr.add((base + 2 * h) * stride);
                    let p3 = ptr.add((base + 3 * h) * stride);
                    let a0 = VComplex::<V>::load(p0);
                    let a1 = VComplex::<V>::load(p1);
                    let a2 = VComplex::<V>::load(p2);
                    let a3 = VComplex::<V>::load(p3);
                    let u0 = a0.add(a1);
                    let u1 = a0.sub(a1);
                    let u2 = a2.add(a3);
                    let u3 = a2.sub(a3);
                    let v1 = u3.rot::<INV>();
                    u0.add(u2).store(p0);
                    u0.sub(u2).store(p2);
                    u1.add(v1).store(p1);
                    u1.sub(v1).store(p3);
                    let mut ti = 0;
                    for k in 1..h {
                        let wa = *tw.add(ti);
                        let wb0 = *tw.add(ti + 1);
                        let wb1 = *tw.add(ti + 2);
                        ti += 3;
                        let p0 = ptr.add((base + k) * stride);
                        let p1 = ptr.add((base + k + h) * stride);
                        let p2 = ptr.add((base + k + 2 * h) * stride);
                        let p3 = ptr.add((base + k + 3 * h) * stride);
                        let a0 = VComplex::<V>::load(p0);
                        let a1 = mul_tw_v::<V, INV>(VComplex::load(p1), wa);
                        let a2 = VComplex::<V>::load(p2);
                        let a3 = mul_tw_v::<V, INV>(VComplex::load(p3), wa);
                        let u0 = a0.add(a1);
                        let u1 = a0.sub(a1);
                        let u2 = a2.add(a3);
                        let u3 = a2.sub(a3);
                        let v0 = mul_tw_v::<V, INV>(u2, wb0);
                        let v1 = mul_tw_v::<V, INV>(u3, wb1);
                        u0.add(v0).store(p0);
                        u0.sub(v0).store(p2);
                        u1.add(v1).store(p1);
                        u1.sub(v1).store(p3);
                    }
                }
                base += block;
            }
        }
    }

    /// The pre-optimization butterfly loop: one radix-2 pass per stage.
    fn forward_reference(&self, data: &mut [Complex64]) {
        let n = data.len();
        if n <= 1 {
            return;
        }
        self.permute(data);
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for base in (0..n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * stride];
                    let a = data[base + k];
                    let b = data[base + k + half] * w;
                    data[base + k] = a + b;
                    data[base + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

impl BluesteinPlan {
    fn new(n: usize) -> Self {
        let m = (2 * n - 1).next_power_of_two();
        let inner = Radix2Plan::new(m);
        // c_j = e^{-iπ j²/n}. j² is reduced mod 2n in integer arithmetic so
        // the phase argument stays small and fully precise for large n.
        let two_n = 2 * n as u64;
        let chirp: Vec<Complex64> = (0..n as u64)
            .map(|j| Complex64::cis(-PI * ((j * j) % two_n) as f64 / n as f64))
            .collect();
        // Wrapped conjugate chirp B: B[0..n) = conj(c), B[m-j] = conj(c_j).
        let mut b = vec![Complex64::ZERO; m];
        for j in 0..n {
            b[j] = chirp[j].conj();
            if j > 0 {
                b[m - j] = chirp[j].conj();
            }
        }
        inner.forward(&mut b);
        let inv_m = 1.0 / m as f64;
        let post_chirp = chirp.iter().map(|&c| c * inv_m).collect();
        BluesteinPlan {
            m,
            inner,
            chirp,
            post_chirp,
            chirp_spectrum: b,
        }
    }

    fn forward(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>, reference: bool) {
        if reference {
            self.forward_reference(data, scratch);
            return;
        }
        let n = data.len();
        let m = self.m;
        if scratch.len() != m {
            scratch.clear();
            scratch.resize(m, Complex64::ZERO);
        }
        // a_j = x_j · c_j, zero padded to m (only the tail needs clearing —
        // the head is overwritten).
        for ((s, &x), &c) in scratch.iter_mut().zip(data.iter()).zip(&self.chirp) {
            *s = x * c;
        }
        scratch[n..m].fill(Complex64::ZERO);
        self.inner.forward(scratch);
        // Pointwise multiply with the chirp spectrum (the circular
        // convolution theorem), then the unnormalized inner inverse.
        for (s, &h) in scratch.iter_mut().zip(&self.chirp_spectrum) {
            *s *= h;
        }
        self.inner.backward_noscale(scratch);
        // X_k = c_k/m · conv_k.
        for ((x, &s), &c) in data.iter_mut().zip(scratch.iter()).zip(&self.post_chirp) {
            *x = s * c;
        }
    }

    /// Lane-packed mirror of [`BluesteinPlan::forward`]; `scratch` must
    /// hold at least `m·2L` f64s.
    #[cfg_attr(not(debug_assertions), inline(always))]
    fn forward_v<V: SimdF64>(&self, data: &mut [f64], scratch: &mut [f64]) {
        let stride = 2 * V::LANES;
        let n = data.len() / stride;
        let m = self.m;
        let buf = &mut scratch[..m * stride];
        {
            let dp = data.as_ptr();
            let bp = buf.as_mut_ptr();
            for j in 0..n {
                // SAFETY: j < n ≤ m packed elements on both sides.
                unsafe {
                    let x = VComplex::<V>::load(dp.add(j * stride));
                    x.mul(VComplex::splat(self.chirp[j]))
                        .store(bp.add(j * stride));
                }
            }
        }
        buf[n * stride..].fill(0.0);
        self.inner.butterflies_v::<V, false>(buf);
        mul_coeffs_packed::<V>(buf, &self.chirp_spectrum, false);
        self.inner.butterflies_v::<V, true>(buf);
        {
            let bp = buf.as_ptr();
            let dp = data.as_mut_ptr();
            for k in 0..n {
                // SAFETY: k < n ≤ m packed elements on both sides.
                unsafe {
                    let s = VComplex::<V>::load(bp.add(k * stride));
                    s.mul(VComplex::splat(self.post_chirp[k]))
                        .store(dp.add(k * stride));
                }
            }
        }
    }

    /// The pre-optimization Bluestein pipeline: full-buffer re-zeroing,
    /// radix-2 inner transforms, and the conj-sandwich inner inverse.
    fn forward_reference(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>) {
        let n = data.len();
        let m = self.m;
        scratch.clear();
        scratch.resize(m, Complex64::ZERO);
        for j in 0..n {
            scratch[j] = data[j] * self.chirp[j];
        }
        self.inner.forward_reference(scratch);
        for (s, &h) in scratch.iter_mut().zip(&self.chirp_spectrum) {
            *s *= h;
        }
        for z in scratch.iter_mut() {
            *z = z.conj();
        }
        self.inner.forward_reference(scratch);
        let inv_m = 1.0 / m as f64;
        for k in 0..n {
            data[k] = scratch[k].conj() * inv_m * self.chirp[k];
        }
    }
}

/// Rader's prime-length FFT: for prime `p`, the nonzero outputs
/// `X[g^{−t}]` are `x₀` plus the length-`q = p−1` cyclic convolution of
/// the generator-permuted input `a[m] = x[g^m]` with `b[r] = W^{g^{−r}}`
/// (`W = e^{−2πi/p}`, `g` a primitive root mod `p`). The convolution runs
/// through the radix-2 kernel when `q` is a power of two, else the
/// Stockham pipeline — applicable exactly when `q` is 2·3·5·7-smooth.
/// `DFT(b)/q` is precomputed; the runtime cost is one forward + one
/// unnormalized inverse at length `q`, versus Bluestein's pair at
/// `m ≥ 2p−1`.
#[derive(Debug)]
struct RaderPlan {
    p: usize,
    /// `perm_in[m] = g^m mod p` — gather order for `a`.
    perm_in: Vec<u32>,
    /// `perm_out[t] = g^{−t} mod p` — scatter target for `x₀ + conv[t]`.
    perm_out: Vec<u32>,
    /// Forward inner transform of `b[r] = W^{g^{−r}} / q` (the `1/q`
    /// normalization of the unnormalized inner inverse folded in).
    b_spec: Vec<Complex64>,
    inner: RaderInner,
}

#[derive(Debug)]
enum RaderInner {
    Radix2(Radix2Plan),
    Mixed(MixedRadixPlan),
}

impl RaderPlan {
    /// Builds a plan for prime `p` with 2·3·5·7-smooth `p − 1`; `None` if
    /// `p` does not qualify (then Bluestein stays the fallback).
    fn try_new(p: usize) -> Option<Self> {
        if p < 3 || p > u32::MAX as usize || !is_prime(p) {
            return None;
        }
        let q = p - 1;
        let inner = if q.is_power_of_two() {
            RaderInner::Radix2(Radix2Plan::new(q))
        } else {
            RaderInner::Mixed(MixedRadixPlan::new(q, &MixedRadixPlan::factorize(q)?))
        };
        let g = primitive_root(p as u64);
        let g_inv = mod_pow(g, (p - 2) as u64, p as u64);
        let mut perm_in = Vec::with_capacity(q);
        let mut perm_out = Vec::with_capacity(q);
        let (mut f, mut fi) = (1u64, 1u64);
        for _ in 0..q {
            perm_in.push(f as u32);
            perm_out.push(fi as u32);
            f = f * g % p as u64;
            fi = fi * g_inv % p as u64;
        }
        let inv_q = 1.0 / q as f64;
        let mut b: Vec<Complex64> = perm_out
            .iter()
            .map(|&e| Complex64::cis(-2.0 * PI * e as f64 / p as f64) * inv_q)
            .collect();
        let mut scratch = vec![Complex64::ZERO; q];
        match &inner {
            RaderInner::Radix2(plan) => plan.forward(&mut b),
            RaderInner::Mixed(plan) => plan.forward_slice(&mut b, &mut scratch),
        }
        Some(RaderPlan {
            p,
            perm_in,
            perm_out,
            b_spec: b,
            inner,
        })
    }

    fn forward(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>) {
        let q = self.p - 1;
        let need = match self.inner {
            RaderInner::Radix2(_) => q,
            RaderInner::Mixed(_) => 2 * q,
        };
        if scratch.len() < need {
            scratch.resize(need, Complex64::ZERO);
        }
        let (a, rest) = scratch.split_at_mut(q);
        let x0 = data[0];
        let mut x0_sum = x0;
        for (am, &idx) in a.iter_mut().zip(&self.perm_in) {
            let v = data[idx as usize];
            *am = v;
            x0_sum += v;
        }
        match &self.inner {
            RaderInner::Radix2(plan) => {
                plan.forward(a);
                for (z, &h) in a.iter_mut().zip(&self.b_spec) {
                    *z *= h;
                }
                plan.backward_noscale(a);
            }
            RaderInner::Mixed(plan) => {
                let rest = &mut rest[..q];
                plan.forward_slice(a, rest);
                for (z, &h) in a.iter_mut().zip(&self.b_spec) {
                    *z *= h;
                }
                // Unnormalized inverse via the conj sandwich (the 1/q is
                // folded into b_spec).
                for z in a.iter_mut() {
                    *z = z.conj();
                }
                plan.forward_slice(a, rest);
                for z in a.iter_mut() {
                    *z = z.conj();
                }
            }
        }
        // X[0] = Σ x; X[g^{−t}] = x₀ + conv[t].
        data[0] = x0_sum;
        for (cv, &idx) in a.iter().zip(&self.perm_out) {
            data[idx as usize] = x0 + *cv;
        }
    }

    /// Lane-packed mirror of [`RaderPlan::forward`]; `scratch` must hold
    /// at least `2q·2L` f64s.
    #[cfg_attr(not(debug_assertions), inline(always))]
    fn forward_v<V: SimdF64>(&self, data: &mut [f64], scratch: &mut [f64]) {
        let stride = 2 * V::LANES;
        let q = self.p - 1;
        let (a, rest) = scratch.split_at_mut(q * stride);
        let x0;
        let mut x0_sum;
        {
            let dp = data.as_ptr();
            let ap = a.as_mut_ptr();
            // SAFETY: element 0 of a p-element packed buffer.
            x0 = unsafe { VComplex::<V>::load(dp) };
            x0_sum = x0;
            for (mi, &idx) in self.perm_in.iter().enumerate() {
                // SAFETY: 1 ≤ idx < p elements of data; mi < q elements
                // of the convolution buffer.
                unsafe {
                    let v = VComplex::<V>::load(dp.add(idx as usize * stride));
                    v.store(ap.add(mi * stride));
                    x0_sum = x0_sum.add(v);
                }
            }
        }
        match &self.inner {
            RaderInner::Radix2(plan) => {
                plan.butterflies_v::<V, false>(a);
                mul_coeffs_packed::<V>(a, &self.b_spec, false);
                plan.butterflies_v::<V, true>(a);
            }
            RaderInner::Mixed(plan) => {
                let rest = &mut rest[..q * stride];
                plan.forward_slice_v::<V>(a, rest);
                mul_coeffs_packed::<V>(a, &self.b_spec, false);
                conj_packed::<V>(a);
                plan.forward_slice_v::<V>(a, rest);
                conj_packed::<V>(a);
            }
        }
        {
            let ap = a.as_ptr();
            let dp = data.as_mut_ptr();
            // SAFETY: element 0 of the packed output.
            unsafe { x0_sum.store(dp) };
            for (t, &idx) in self.perm_out.iter().enumerate() {
                // SAFETY: t < q convolution elements; 1 ≤ idx < p outputs.
                unsafe {
                    let conv = VComplex::<V>::load(ap.add(t * stride));
                    x0.add(conv).store(dp.add(idx as usize * stride));
                }
            }
        }
    }
}

/// Deterministic trial-division primality (plan construction only).
fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// `b^e mod m` by square-and-multiply (`m < 2³²`, so products fit u64).
fn mod_pow(mut b: u64, mut e: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    b %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = acc * b % m;
        }
        b = b * b % m;
        e >>= 1;
    }
    acc
}

/// Smallest primitive root mod prime `p`: the first `g` with
/// `g^{(p−1)/f} ≠ 1` for every prime factor `f` of `p − 1`.
fn primitive_root(p: u64) -> u64 {
    let q = p - 1;
    let mut factors = Vec::new();
    let mut rem = q;
    let mut d = 2;
    while d * d <= rem {
        if rem.is_multiple_of(d) {
            factors.push(d);
            while rem.is_multiple_of(d) {
                rem /= d;
            }
        }
        d += 1;
    }
    if rem > 1 {
        factors.push(rem);
    }
    (2..p)
        .find(|&g| factors.iter().all(|&f| mod_pow(g, q / f, p) != 1))
        .expect("every prime has a primitive root")
}

/// Stockham autosort mixed-radix FFT (decimation in frequency) for
/// 2·3·5·7-smooth lengths — which covers every resolution the paper
/// evaluates (200 = 2³·5², 350 = 2·5²·7, 500 = 2²·5³). Compared to the
/// Bluestein fallback this avoids the two length-`m ≥ 2n` inner transforms
/// and all chirp passes: one streaming pass per factor, ping-ponging
/// between the data and one scratch buffer, no permutation pass.
#[derive(Debug)]
struct MixedRadixPlan {
    n: usize,
    stages: Vec<MixedStage>,
}

/// One radix-`r` Stockham pass. Entering sub-transform length is
/// `n' = radix·m`; `s` is the product of previously processed radices.
#[derive(Debug)]
struct MixedStage {
    radix: usize,
    m: usize,
    s: usize,
    /// `tw[p·r + u] = e^{−2πi·p·u/n'}` — the post-butterfly twiddles.
    tw: Vec<Complex64>,
    /// `roots[u·r + t] = e^{−2πi·t·u/r}` — the r-point DFT matrix, rows
    /// laid out per output `u` for sequential access.
    roots: Vec<Complex64>,
}

impl MixedRadixPlan {
    /// Returns the stage radix sequence if `n` is 2·3·5·7-smooth (and not
    /// a power of two, which the dedicated radix-2 plan handles), else
    /// `None`. Radix-4/2 stages run first (short strides), the pricier
    /// odd radices last where the inner stride-`s` loops are long.
    fn factorize(n: usize) -> Option<Vec<usize>> {
        let mut rem = n;
        let mut count = [0usize; 4]; // twos, threes, fives, sevens
        for (i, p) in [2usize, 3, 5, 7].into_iter().enumerate() {
            while rem.is_multiple_of(p) {
                rem /= p;
                count[i] += 1;
            }
        }
        if rem != 1 {
            return None;
        }
        let mut factors = Vec::new();
        factors.extend(std::iter::repeat_n(4, count[0] / 2));
        if count[0] % 2 == 1 {
            factors.push(2);
        }
        factors.extend(std::iter::repeat_n(3, count[1]));
        factors.extend(std::iter::repeat_n(5, count[2]));
        factors.extend(std::iter::repeat_n(7, count[3]));
        Some(factors)
    }

    fn new(n: usize, factors: &[usize]) -> Self {
        let mut stages = Vec::with_capacity(factors.len());
        let mut np = n; // sub-transform length entering the stage
        let mut s = 1;
        for &r in factors {
            let m = np / r;
            let mut tw = Vec::with_capacity(m * r);
            for p in 0..m {
                for u in 0..r {
                    tw.push(Complex64::cis(-2.0 * PI * (p * u) as f64 / np as f64));
                }
            }
            let mut roots = Vec::with_capacity(r * r);
            for u in 0..r {
                for t in 0..r {
                    roots.push(Complex64::cis(-2.0 * PI * ((t * u) % r) as f64 / r as f64));
                }
            }
            stages.push(MixedStage {
                radix: r,
                m,
                s,
                tw,
                roots,
            });
            np = m;
            s *= r;
        }
        debug_assert_eq!(np, 1, "factorization must cover n");
        MixedRadixPlan { n, stages }
    }

    fn forward(&self, data: &mut [Complex64], scratch: &mut Vec<Complex64>) {
        let n = self.n;
        if scratch.len() < n {
            scratch.resize(n, Complex64::ZERO);
        }
        self.forward_slice(data, &mut scratch[..n]);
    }

    /// [`MixedRadixPlan::forward`] over a caller-sliced ping-pong buffer of
    /// exactly `n` elements (lets Rader's plan carve its scratch out of one
    /// shared allocation).
    fn forward_slice(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        debug_assert_eq!(scratch.len(), self.n);
        let mut in_data = true;
        for stage in &self.stages {
            if in_data {
                Self::step(stage, data, scratch);
            } else {
                Self::step(stage, scratch, data);
            }
            in_data = !in_data;
        }
        if !in_data {
            data.copy_from_slice(scratch);
        }
    }

    /// Lane-packed mirror of [`MixedRadixPlan::forward_slice`]; `scratch`
    /// must hold at least `n·2L` f64s.
    #[cfg_attr(not(debug_assertions), inline(always))]
    fn forward_slice_v<V: SimdF64>(&self, data: &mut [f64], scratch: &mut [f64]) {
        let stride = 2 * V::LANES;
        let scratch = &mut scratch[..self.n * stride];
        let mut in_data = true;
        for stage in &self.stages {
            if in_data {
                Self::step_v::<V>(stage, data, scratch);
            } else {
                Self::step_v::<V>(stage, scratch, data);
            }
            in_data = !in_data;
        }
        if !in_data {
            data.copy_from_slice(scratch);
        }
    }

    /// One Stockham DIF pass: gather `r` points strided `s·m` apart, apply
    /// the r-point DFT, twiddle by `w^{p·u}`, scatter with stride `s`.
    /// All indices stay below `n' · s = n` by the stage invariants.
    fn step(stage: &MixedStage, src: &[Complex64], dst: &mut [Complex64]) {
        let (r, m, s) = (stage.radix, stage.m, stage.s);
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        match r {
            2 => {
                for p in 0..m {
                    // u = 0 twiddle is 1; only the u = 1 lane twiddles.
                    let w = stage.tw[p * 2 + 1];
                    for q in 0..s {
                        // SAFETY: q + s·(p + m·t) < s·m·r = n and
                        // q + s·(r·p + u) < n (see method docs).
                        unsafe {
                            let a = *sp.add(q + s * p);
                            let b = *sp.add(q + s * (p + m));
                            *dp.add(q + s * (2 * p)) = a + b;
                            *dp.add(q + s * (2 * p + 1)) = (a - b) * w;
                        }
                    }
                }
            }
            4 => {
                for p in 0..m {
                    let w1 = stage.tw[p * 4 + 1];
                    let w2 = stage.tw[p * 4 + 2];
                    let w3 = stage.tw[p * 4 + 3];
                    for q in 0..s {
                        // SAFETY: as above; all indices < n.
                        unsafe {
                            let a0 = *sp.add(q + s * p);
                            let a1 = *sp.add(q + s * (p + m));
                            let a2 = *sp.add(q + s * (p + 2 * m));
                            let a3 = *sp.add(q + s * (p + 3 * m));
                            let t0 = a0 + a2;
                            let t1 = a1 + a3;
                            let t2 = a0 - a2;
                            let t3 = a1 - a3;
                            // -j·t3 and +j·t3
                            let jt3 = Complex64::new(t3.im, -t3.re);
                            *dp.add(q + s * (4 * p)) = t0 + t1;
                            *dp.add(q + s * (4 * p + 1)) = (t2 + jt3) * w1;
                            *dp.add(q + s * (4 * p + 2)) = (t0 - t1) * w2;
                            *dp.add(q + s * (4 * p + 3)) = (t2 - jt3) * w3;
                        }
                    }
                }
            }
            _ => {
                let mut at = [Complex64::ZERO; 8];
                for p in 0..m {
                    let wrow = &stage.tw[p * r..(p + 1) * r];
                    for q in 0..s {
                        // SAFETY: as above; all indices < n, r ≤ 7 < at.len().
                        unsafe {
                            for (t, a) in at[..r].iter_mut().enumerate() {
                                *a = *sp.add(q + s * (p + m * t));
                            }
                            for (u, &w) in wrow.iter().enumerate() {
                                let row = &stage.roots[u * r..u * r + r];
                                let mut acc = at[0];
                                for t in 1..r {
                                    acc += at[t] * row[t];
                                }
                                *dp.add(q + s * (r * p + u)) = acc * w;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Lane-packed mirror of [`MixedRadixPlan::step`]: the same index
    /// invariants, every element offset scaled by the packed stride `2L`.
    #[cfg_attr(not(debug_assertions), inline(always))]
    fn step_v<V: SimdF64>(stage: &MixedStage, src: &[f64], dst: &mut [f64]) {
        let stride = 2 * V::LANES;
        let (r, m, s) = (stage.radix, stage.m, stage.s);
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        match r {
            2 => {
                for p in 0..m {
                    let w = VComplex::<V>::splat(stage.tw[p * 2 + 1]);
                    for q in 0..s {
                        // SAFETY: same index invariants as the scalar step;
                        // packed offsets scale element indices by 2L.
                        unsafe {
                            let a = VComplex::<V>::load(sp.add((q + s * p) * stride));
                            let b = VComplex::<V>::load(sp.add((q + s * (p + m)) * stride));
                            a.add(b).store(dp.add((q + s * (2 * p)) * stride));
                            a.sub(b)
                                .mul(w)
                                .store(dp.add((q + s * (2 * p + 1)) * stride));
                        }
                    }
                }
            }
            4 => {
                for p in 0..m {
                    let w1 = VComplex::<V>::splat(stage.tw[p * 4 + 1]);
                    let w2 = VComplex::<V>::splat(stage.tw[p * 4 + 2]);
                    let w3 = VComplex::<V>::splat(stage.tw[p * 4 + 3]);
                    for q in 0..s {
                        // SAFETY: as above; all element indices < n.
                        unsafe {
                            let a0 = VComplex::<V>::load(sp.add((q + s * p) * stride));
                            let a1 = VComplex::<V>::load(sp.add((q + s * (p + m)) * stride));
                            let a2 = VComplex::<V>::load(sp.add((q + s * (p + 2 * m)) * stride));
                            let a3 = VComplex::<V>::load(sp.add((q + s * (p + 3 * m)) * stride));
                            let t0 = a0.add(a2);
                            let t1 = a1.add(a3);
                            let t2 = a0.sub(a2);
                            let t3 = a1.sub(a3);
                            let jt3 = t3.rot::<false>();
                            t0.add(t1).store(dp.add((q + s * (4 * p)) * stride));
                            t2.add(jt3)
                                .mul(w1)
                                .store(dp.add((q + s * (4 * p + 1)) * stride));
                            t0.sub(t1)
                                .mul(w2)
                                .store(dp.add((q + s * (4 * p + 2)) * stride));
                            t2.sub(jt3)
                                .mul(w3)
                                .store(dp.add((q + s * (4 * p + 3)) * stride));
                        }
                    }
                }
            }
            _ => {
                for p in 0..m {
                    let wrow = &stage.tw[p * r..(p + 1) * r];
                    for q in 0..s {
                        // SAFETY: as in the scalar generic arm; r ≤ 7.
                        unsafe {
                            let mut at = [VComplex::<V>::splat(Complex64::ZERO); 8];
                            for (t, a) in at[..r].iter_mut().enumerate() {
                                *a = VComplex::load(sp.add((q + s * (p + m * t)) * stride));
                            }
                            for (u, &w) in wrow.iter().enumerate() {
                                let row = &stage.roots[u * r..u * r + r];
                                let mut acc = at[0];
                                for t in 1..r {
                                    acc = acc.add(at[t].mul(VComplex::splat(row[t])));
                                }
                                acc.mul(VComplex::splat(w))
                                    .store(dp.add((q + s * (r * p + u)) * stride));
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Global plan cache keyed by transform length. Eviction semantics live
/// in [`PinnedCache`]: entries pinned by a live `Fft2` (and therefore a
/// live model or propagator) are never evicted; only plans orphaned by
/// their last user dropping are reclaimable.
static PLAN_CACHE: Mutex<Option<PinnedCache<usize, FftPlan>>> = Mutex::new(None);

/// Soft capacity of the plan cache. A DSE sweep over grid sizes produces a
/// stream of single-use lengths; past the cap, inserting a new plan first
/// evicts **orphaned** entries (refcount-held by nobody but the cache),
/// stalest hit first. Entries pinned by live plans are never evicted, so
/// the cache may exceed the cap while more than `PLAN_CACHE_CAP` distinct
/// lengths are simultaneously alive — in that state the cache is not the
/// retainer.
pub const PLAN_CACHE_CAP: usize = 64;

/// Returns a cached plan for length `n`, creating it on first use.
///
/// The cache is process-global and thread-safe; this is the fast path used
/// by all LightRidge propagation kernels. The LightPipes-style baseline
/// deliberately bypasses it to model plan-per-call overhead. Capacity
/// eviction is refcount-aware (see [`PLAN_CACHE_CAP`]); retired-model
/// cleanup goes through [`sweep_orphaned_plans`].
pub fn planner(n: usize) -> Arc<FftPlan> {
    let mut guard = PLAN_CACHE.lock();
    let cache = guard.get_or_insert_with(PinnedCache::new);
    if let Some(hit) = cache.hit(&n) {
        return hit;
    }
    let plan = Arc::new(FftPlan::new(n));
    cache.insert(n, Arc::clone(&plan), PLAN_CACHE_CAP);
    plan
}

/// Drops every cached plan that nothing outside the cache references any
/// more, returning how many were evicted. The serving runtime calls this
/// after reclaiming a retired model: the model's `Fft2`s (and their plan
/// `Arc`s) are gone by then, so its prewarmed plans show up here as
/// orphans — while plans shared with still-live models stay pinned and
/// survive, preserving flat first-request latency for the survivors.
pub fn sweep_orphaned_plans() -> usize {
    PLAN_CACHE
        .lock()
        .as_mut()
        .map_or(0, PinnedCache::sweep_orphans)
}

/// Clears the global plan cache (used by the runtime ablation benches).
pub fn clear_plan_cache() {
    *PLAN_CACHE.lock() = None;
}

/// Number of plans currently cached.
pub fn plan_cache_len() -> usize {
    PLAN_CACHE.lock().as_ref().map_or(0, PinnedCache::len)
}

/// Number of columns staged together by the strided column kernel. 32
/// columns of `f64` complex samples are 512 bytes per row — a handful of
/// cache lines — so the gather/scatter runs at near-streaming bandwidth.
const COL_BLOCK: usize = 32;

/// Fields with at least this many samples split their row/column FFT loops
/// across the persistent worker pool (200² and larger at the paper's
/// resolutions).
const PAR_MIN_LEN: usize = 32_768;

/// Column-block width of the lane-packed column pass. Narrower than the
/// scalar [`COL_BLOCK`]: each staged column already carries `2L` f64s per
/// element, so 8 columns at 4 lanes fill the same cache footprint as 32
/// scalar columns.
const SIMD_COL_BLOCK: usize = 8;

/// Lane-packed scratch for the batched cross-plane kernels.
///
/// Empty until a batched entry point actually takes the SIMD path
/// (`Default`), so per-sample workspaces — and the serve runtime's
/// resident-memory accounting for them — are unchanged. Sized once for the
/// widest requested lane count and reused for every narrower group.
#[derive(Debug, Clone, Default)]
struct SimdScratch {
    /// One group of `L` planes in split re/im lane-major packed form
    /// (`rows·cols` elements × `2L` f64s).
    packed: Vec<f64>,
    /// Lane-packed per-plan scratch (`max(plan scratch) × 2L` f64s).
    scratch: Vec<f64>,
    /// Lane-packed column staging (up to [`SIMD_COL_BLOCK`] columns).
    col_block: Vec<f64>,
}

impl SimdScratch {
    /// Grows the buffers to serve `lanes`-wide groups of a `rows × cols`
    /// plane whose axis plans need at most `plan_scratch` elements. A no-op
    /// once sized (steady-state zero allocation).
    fn ensure(&mut self, rows: usize, cols: usize, plan_scratch: usize, lanes: usize) {
        let stride = 2 * lanes;
        let packed = rows * cols * stride;
        if self.packed.len() < packed {
            self.packed.resize(packed, 0.0);
        }
        let scratch = plan_scratch * stride;
        if self.scratch.len() < scratch {
            self.scratch.resize(scratch, 0.0);
        }
        let col_block = rows * SIMD_COL_BLOCK.min(cols) * stride;
        if self.col_block.len() < col_block {
            self.col_block.resize(col_block, 0.0);
        }
    }

    /// Heap bytes held (capacity), for resident-memory accounting.
    fn resident_bytes(&self) -> usize {
        (self.packed.capacity() + self.scratch.capacity() + self.col_block.capacity())
            * std::mem::size_of::<f64>()
    }
}

/// Owned scratch for one [`Fft2`] shape.
///
/// Holds the Bluestein convolution buffers for both axes plus the staging
/// buffer of the cache-blocked column kernel. Allocated once per shape
/// (`Fft2::make_workspace`) and reused for every subsequent transform; see
/// the module docs for the full workspace-reuse contract.
#[derive(Debug, Clone)]
pub struct Fft2Workspace {
    rows: usize,
    cols: usize,
    /// Bluestein scratch for the row (length-`cols`) plan.
    row_scratch: Vec<Complex64>,
    /// Bluestein scratch for the column (length-`rows`) plan.
    col_scratch: Vec<Complex64>,
    /// Column staging: up to [`COL_BLOCK`] columns stored contiguously.
    col_block: Vec<Complex64>,
    /// Lane-packed buffers for the batched cross-plane kernels; empty until
    /// a batched entry point runs with SIMD dispatch enabled.
    simd: SimdScratch,
}

impl Fft2Workspace {
    /// Shape this workspace serves.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Heap bytes held by this workspace's scratch buffers (capacity, not
    /// length). Feeds the serving runtime's resident-memory accounting.
    pub fn resident_bytes(&self) -> usize {
        (self.row_scratch.capacity() + self.col_scratch.capacity() + self.col_block.capacity())
            * std::mem::size_of::<Complex64>()
            + self.simd.resident_bytes()
    }
}

/// Caller-owned scratch for the batched 2-D entry points
/// ([`Fft2::fft2_batch_with`] / [`Fft2::ifft2_batch_with`] /
/// [`Fft2::process_batch_with`]).
///
/// Per-plane scratch is independent of the batch count — every plane of a
/// [`FieldBatch`] reuses the one wrapped [`Fft2Workspace`] — so a single
/// `BatchWorkspace` serves any `B` at its shape with **zero allocations**
/// in steady state, exactly like the per-sample workspace contract (see
/// the module docs).
#[derive(Debug, Clone)]
pub struct BatchWorkspace {
    fft: Fft2Workspace,
}

impl BatchWorkspace {
    /// Plane shape this workspace serves.
    pub fn shape(&self) -> (usize, usize) {
        self.fft.shape()
    }

    /// The wrapped per-plane 2-D workspace.
    pub fn fft_mut(&mut self) -> &mut Fft2Workspace {
        &mut self.fft
    }

    /// Heap bytes held by this workspace's scratch buffers.
    pub fn resident_bytes(&self) -> usize {
        self.fft.resident_bytes()
    }
}

/// A 2-D FFT engine for a fixed field shape, holding one plan per axis.
///
/// # Examples
///
/// ```
/// use lr_tensor::{Complex64, Field, Fft2};
/// let fft = Fft2::new(4, 6);
/// let f = Field::from_fn(4, 6, |r, c| Complex64::new((r + c) as f64, 0.0));
/// let mut g = f.clone();
/// fft.forward(&mut g);
/// fft.inverse(&mut g);
/// assert!(f.distance(&g) < 1e-10);
/// ```
///
/// Allocation-sensitive callers own their scratch explicitly:
///
/// ```
/// use lr_tensor::{Complex64, Field, Fft2, Direction};
/// let fft = Fft2::new(8, 8);
/// let mut ws = fft.make_workspace();
/// let mut f = Field::ones(8, 8);
/// fft.process_with(&mut f, Direction::Forward, &mut ws); // no allocation
/// ```
#[derive(Debug, Clone)]
pub struct Fft2 {
    rows: usize,
    cols: usize,
    row_plan: Arc<FftPlan>,
    col_plan: Arc<FftPlan>,
}

/// Scoped kernel timer for one FFT pass, attributed to the algorithm the
/// plan actually dispatches to (Stockham mixed-radix or Bluestein chirp-z;
/// pure radix-2/4 plans are only charged to the pass itself). Free when
/// kernel profiling is disabled — `KernelTimer::start*` returns an inert
/// guard without reading the clock.
#[inline]
fn pass_timer(kind: KernelKind, plan: &FftPlan) -> KernelTimer {
    if plan.is_bluestein() {
        KernelTimer::start_attributed(kind, KernelKind::Bluestein)
    } else if plan.is_mixed_radix() {
        KernelTimer::start_attributed(kind, KernelKind::Stockham)
    } else if plan.is_rader() {
        KernelTimer::start_attributed(kind, KernelKind::Rader)
    } else {
        KernelTimer::start(kind)
    }
}

/// Profile cell attributing batched cross-plane work to the ISA that
/// executed it (`simd_sse2` / `simd_avx2` / `simd_neon` / `simd_portable`;
/// `simd_scalar` covers remainder planes and forced-scalar dispatch).
#[inline]
fn simd_cell(level: SimdLevel) -> KernelKind {
    match level.isa_name() {
        "sse2" => KernelKind::SimdSse2,
        "avx2" => KernelKind::SimdAvx2,
        "neon" => KernelKind::SimdNeon,
        "portable" => KernelKind::SimdPortable,
        _ => KernelKind::SimdScalar,
    }
}

impl Fft2 {
    /// Builds (or fetches from the global cache) plans for a `rows × cols`
    /// field.
    pub fn new(rows: usize, cols: usize) -> Self {
        Fft2 {
            rows,
            cols,
            row_plan: planner(cols),
            col_plan: planner(rows),
        }
    }

    /// Field shape this engine transforms.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Allocates a workspace sized for this engine's shape.
    pub fn make_workspace(&self) -> Fft2Workspace {
        Fft2Workspace {
            rows: self.rows,
            cols: self.cols,
            row_scratch: self.row_plan.make_scratch(),
            col_scratch: self.col_plan.make_scratch(),
            col_block: vec![Complex64::ZERO; self.rows * COL_BLOCK.min(self.cols)],
            simd: SimdScratch::default(),
        }
    }

    /// Allocates a batched workspace sized for this engine's shape (valid
    /// for any batch count — per-plane scratch is batch-independent), with
    /// the lane-packed SIMD buffers pre-sized for the runtime dispatch
    /// level so the batched entry points stay allocation-free from the
    /// first call.
    pub fn make_batch_workspace(&self) -> BatchWorkspace {
        let mut fft = self.make_workspace();
        self.prepare_batch_workspace(&mut fft);
        BatchWorkspace { fft }
    }

    /// Widest per-axis plan scratch requirement, in elements.
    fn max_plan_scratch(&self) -> usize {
        self.row_plan.scratch_len().max(self.col_plan.scratch_len())
    }

    /// Pre-sizes `workspace`'s lane-packed SIMD buffers for this shape at
    /// the current runtime dispatch width, so a later batched call does not
    /// allocate. A no-op when dispatch is scalar (the buffers stay empty)
    /// or when already sized.
    pub fn prepare_batch_workspace(&self, workspace: &mut Fft2Workspace) {
        let lanes = simd::dispatch().lanes();
        if lanes > 1 {
            workspace
                .simd
                .ensure(self.rows, self.cols, self.max_plan_scratch(), lanes);
        }
    }

    /// In-place forward 2-D FFT.
    ///
    /// # Panics
    ///
    /// Panics if `field` does not match the planned shape.
    pub fn forward(&self, field: &mut Field) {
        self.process(field, Direction::Forward);
    }

    /// In-place inverse 2-D FFT (scaled by `1/(rows·cols)`).
    ///
    /// # Panics
    ///
    /// Panics if `field` does not match the planned shape.
    pub fn inverse(&self, field: &mut Field) {
        self.process(field, Direction::Inverse);
    }

    /// In-place 2-D transform in the given direction, using a thread-local
    /// workspace (allocation-free once warm for this shape).
    pub fn process(&self, field: &mut Field, dir: Direction) {
        with_tls_workspace(self, |fft, ws| fft.process_with(field, dir, ws));
    }

    /// In-place 2-D transform using caller-owned scratch. Performs no heap
    /// allocation (in sequential mode; see the module docs for how large
    /// fields borrow per-thread scratch in parallel mode instead).
    ///
    /// # Panics
    ///
    /// Panics if `field` or `workspace` does not match the planned shape.
    pub fn process_with(&self, field: &mut Field, dir: Direction, workspace: &mut Fft2Workspace) {
        assert_eq!(field.shape(), (self.rows, self.cols), "Fft2 shape mismatch");
        self.process_slice_with(field.as_mut_slice(), dir, workspace);
    }

    /// In-place 2-D transform of one row-major `rows × cols` plane given as
    /// a raw sample slice — the single shared kernel behind both the
    /// per-sample ([`Fft2::process_with`]) and batched
    /// ([`Fft2::process_batch_with`]) entry points, which is what makes
    /// them bit-identical. Zero heap allocation (sequential mode).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` or `workspace` does not match the planned
    /// shape.
    pub fn process_slice_with(
        &self,
        data: &mut [Complex64],
        dir: Direction,
        workspace: &mut Fft2Workspace,
    ) {
        assert_eq!(
            data.len(),
            self.rows * self.cols,
            "Fft2 plane length mismatch"
        );
        assert_eq!(
            workspace.shape(),
            (self.rows, self.cols),
            "Fft2 workspace shape mismatch"
        );
        let parallel_ok = self.rows * self.cols >= PAR_MIN_LEN
            && parallel::threads() > 1
            && !parallel::in_parallel_region();
        {
            let _t = pass_timer(KernelKind::FftRows, &self.row_plan);
            if parallel_ok {
                self.rows_pass_parallel(data, dir);
            } else {
                self.rows_pass(data, dir, &mut workspace.row_scratch);
            }
        }
        {
            let _t = pass_timer(KernelKind::FftCols, &self.col_plan);
            if parallel_ok {
                self.cols_pass_parallel(data, dir);
            } else {
                self.cols_pass(data, dir, workspace);
            }
        }
    }

    /// Transforms every active plane of `batch` in place: one shared
    /// workspace, one set of plans, the twiddle/chirp tables streamed over
    /// all `B` planes. Bit-identical to `B` separate
    /// [`Fft2::process_with`] calls (see [`Fft2::process_slice_with`]).
    ///
    /// # Panics
    ///
    /// Panics if the batch's plane shape or `workspace` does not match the
    /// planned shape.
    pub fn process_batch_with(
        &self,
        batch: &mut FieldBatch,
        dir: Direction,
        workspace: &mut BatchWorkspace,
    ) {
        assert_eq!(
            batch.plane_shape(),
            (self.rows, self.cols),
            "Fft2 batch plane shape mismatch"
        );
        self.process_planes(batch.as_mut_slice(), dir, &mut workspace.fft);
    }

    /// Picks how many planes to co-process per vector op for this batch:
    /// the runtime [`simd::dispatch`] level, except when the per-plane
    /// kernels would split across the worker pool — pooled row/column
    /// passes already saturate the core budget, so batched work keeps the
    /// scalar per-plane kernels there (see the module docs).
    fn batch_level(&self) -> SimdLevel {
        let parallel_ok = self.rows * self.cols >= PAR_MIN_LEN
            && parallel::threads() > 1
            && !parallel::in_parallel_region();
        if parallel_ok {
            SimdLevel::Scalar
        } else {
            simd::dispatch()
        }
    }

    /// Transforms a contiguous run of row-major planes, co-processing
    /// groups of 4 then 2 planes per vector op at the dispatched level and
    /// finishing remainder planes with the scalar per-plane kernel. Every
    /// lane executes the scalar operation sequence, so results are bitwise
    /// identical to per-plane [`Fft2::process_slice_with`] calls at every
    /// dispatch level.
    fn process_planes(&self, planes: &mut [Complex64], dir: Direction, ws: &mut Fft2Workspace) {
        let plane_len = self.rows * self.cols;
        debug_assert_eq!(planes.len() % plane_len, 0);
        let level = self.batch_level();
        let mut rest = planes;
        if level >= SimdLevel::X4 {
            while rest.len() >= 4 * plane_len {
                let (group, tail) = rest.split_at_mut(4 * plane_len);
                let _t = KernelTimer::start(simd_cell(SimdLevel::X4));
                self.process_group_x4(group, dir, ws);
                rest = tail;
            }
        }
        if level >= SimdLevel::X2 {
            while rest.len() >= 2 * plane_len {
                let (group, tail) = rest.split_at_mut(2 * plane_len);
                let _t = KernelTimer::start(simd_cell(SimdLevel::X2));
                self.process_group_v::<simd::F64x2>(group, dir, ws);
                rest = tail;
            }
        }
        for plane in rest.chunks_exact_mut(plane_len) {
            let _t = KernelTimer::start(KernelKind::SimdScalar);
            self.process_slice_with(plane, dir, ws);
        }
    }

    /// Four-lane group transform, routed through the AVX2-enabled wrapper
    /// on x86-64 so the generic kernels compile to AVX instructions.
    #[inline]
    fn process_group_x4(&self, group: &mut [Complex64], dir: Direction, ws: &mut Fft2Workspace) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: reached only when `batch_level() ≥ X4`, and dispatch/force
        // clamp X4 to X2 unless AVX2 was detected at runtime on this CPU.
        unsafe {
            self.process_group_avx2(group, dir, ws)
        }
        #[cfg(not(target_arch = "x86_64"))]
        self.process_group_v::<simd::F64x4>(group, dir, ws)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn process_group_avx2(&self, group: &mut [Complex64], dir: Direction, ws: &mut Fft2Workspace) {
        self.process_group_v::<simd::F64x4>(group, dir, ws)
    }

    /// Packs `V::LANES` planes into the split re/im lane-major layout, runs
    /// the 2-D pipeline on the packed buffer, and unpacks.
    #[cfg_attr(not(debug_assertions), inline(always))]
    fn process_group_v<V: SimdF64>(
        &self,
        group: &mut [Complex64],
        dir: Direction,
        ws: &mut Fft2Workspace,
    ) {
        let stride = 2 * V::LANES;
        let n = self.rows * self.cols;
        // Steady-state no-op: `make_batch_workspace` pre-sizes for the
        // dispatch width; this covers caller-assembled workspaces.
        ws.simd
            .ensure(self.rows, self.cols, self.max_plan_scratch(), V::LANES);
        let SimdScratch {
            packed,
            scratch,
            col_block,
        } = &mut ws.simd;
        let packed = &mut packed[..n * stride];
        pack_group::<V>(group, packed);
        self.fft2_packed_v::<V>(dir, packed, scratch, col_block);
        unpack_group::<V>(packed, group);
    }

    /// The 2-D row/column pipeline over one lane-packed group, mirroring
    /// [`Fft2::process_slice_with`] pass-for-pass (same pass order, same
    /// cache-blocked column staging, same per-pass kernel attribution).
    #[cfg_attr(not(debug_assertions), inline(always))]
    fn fft2_packed_v<V: SimdF64>(
        &self,
        dir: Direction,
        packed: &mut [f64],
        scratch: &mut [f64],
        col_block: &mut [f64],
    ) {
        let (rows, cols) = (self.rows, self.cols);
        let stride = 2 * V::LANES;
        {
            let _t = pass_timer(KernelKind::FftRows, &self.row_plan);
            for row in packed.chunks_exact_mut(cols * stride) {
                self.row_plan.process_v::<V>(row, dir, scratch);
            }
        }
        {
            let _t = pass_timer(KernelKind::FftCols, &self.col_plan);
            let bw_max = SIMD_COL_BLOCK.min(cols);
            let mut c0 = 0;
            while c0 < cols {
                let bw = bw_max.min(cols - c0);
                for r in 0..rows {
                    let src = (r * cols + c0) * stride;
                    for k in 0..bw {
                        col_block[(k * rows + r) * stride..][..stride]
                            .copy_from_slice(&packed[src + k * stride..][..stride]);
                    }
                }
                for k in 0..bw {
                    self.col_plan.process_v::<V>(
                        &mut col_block[k * rows * stride..(k + 1) * rows * stride],
                        dir,
                        scratch,
                    );
                }
                for r in 0..rows {
                    let dst = (r * cols + c0) * stride;
                    for k in 0..bw {
                        packed[dst + k * stride..][..stride]
                            .copy_from_slice(&col_block[(k * rows + r) * stride..][..stride]);
                    }
                }
                c0 += bw;
            }
        }
    }

    /// Batched forward 2-D FFT over every active plane (see
    /// [`Fft2::process_batch_with`]).
    pub fn fft2_batch_with(&self, batch: &mut FieldBatch, workspace: &mut BatchWorkspace) {
        self.process_batch_with(batch, Direction::Forward, workspace);
    }

    /// Batched inverse 2-D FFT (scaled by `1/(rows·cols)` per plane; see
    /// [`Fft2::process_batch_with`]).
    pub fn ifft2_batch_with(&self, batch: &mut FieldBatch, workspace: &mut BatchWorkspace) {
        self.process_batch_with(batch, Direction::Inverse, workspace);
    }

    /// Row transforms, sequential, in place.
    fn rows_pass(&self, data: &mut [Complex64], dir: Direction, scratch: &mut Vec<Complex64>) {
        for r in 0..self.rows {
            self.row_plan
                .process(&mut data[r * self.cols..(r + 1) * self.cols], dir, scratch);
        }
    }

    /// Column transforms through the cache-blocked strided kernel: gather up
    /// to [`COL_BLOCK`] columns into contiguous staging, transform each, and
    /// scatter back. No full-field transpose is ever materialized.
    fn cols_pass(&self, data: &mut [Complex64], dir: Direction, workspace: &mut Fft2Workspace) {
        let (rows, cols) = (self.rows, self.cols);
        let block = &mut workspace.col_block;
        let scratch = &mut workspace.col_scratch;
        let mut c0 = 0;
        while c0 < cols {
            let bw = COL_BLOCK.min(cols - c0);
            // SAFETY: `data` is exclusively borrowed and all column indices
            // are in bounds; see gather/scatter docs.
            unsafe {
                gather_columns(data.as_ptr(), rows, cols, c0, bw, block);
            }
            for k in 0..bw {
                self.col_plan
                    .process(&mut block[k * rows..(k + 1) * rows], dir, scratch);
            }
            // SAFETY: same exclusive borrow and in-bounds argument as the
            // gather above; the write-back targets the same columns.
            unsafe {
                scatter_columns(block, rows, cols, c0, bw, data.as_mut_ptr());
            }
            c0 += bw;
        }
    }

    /// Row transforms split across the worker pool; per-thread scratch.
    fn rows_pass_parallel(&self, data: &mut [Complex64], dir: Direction) {
        let (rows, cols) = (self.rows, self.cols);
        let tasks = parallel::threads().min(rows).max(1) * 4;
        let chunk = rows.div_ceil(tasks);
        let tasks = rows.div_ceil(chunk);
        let base = RowsPtr(data.as_mut_ptr());
        let plan = &self.row_plan;
        parallel::par_for(tasks, |t| {
            let base = &base; // capture the Sync wrapper, not the raw field
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(rows);
            with_thread_scratch(plan.scratch_len(), |scratch| {
                for r in lo..hi {
                    // SAFETY: tasks own disjoint row ranges of the buffer,
                    // which outlives par_for's completion barrier.
                    let row = unsafe { std::slice::from_raw_parts_mut(base.0.add(r * cols), cols) };
                    plan.process(row, dir, scratch);
                }
            });
        });
    }

    /// Column blocks split across the worker pool; per-thread staging.
    fn cols_pass_parallel(&self, data: &mut [Complex64], dir: Direction) {
        let (rows, cols) = (self.rows, self.cols);
        let blocks = cols.div_ceil(COL_BLOCK);
        let base = RowsPtr(data.as_mut_ptr());
        let plan = &self.col_plan;
        parallel::par_for(blocks, |b| {
            let base = &base; // capture the Sync wrapper, not the raw field
            let c0 = b * COL_BLOCK;
            let bw = COL_BLOCK.min(cols - c0);
            with_thread_scratch(rows * bw, |block| {
                with_thread_scratch(plan.scratch_len(), |scratch| {
                    // SAFETY: tasks touch disjoint column ranges [c0, c0+bw)
                    // through raw pointer arithmetic only — no task ever
                    // forms a reference spanning another task's columns —
                    // and the buffer outlives par_for's completion barrier.
                    unsafe {
                        gather_columns(base.0, rows, cols, c0, bw, block);
                    }
                    for k in 0..bw {
                        plan.process(&mut block[k * rows..(k + 1) * rows], dir, scratch);
                    }
                    // SAFETY: write-back to this task's own disjoint
                    // columns — the same argument as the gather above.
                    unsafe {
                        scatter_columns(block, rows, cols, c0, bw, base.0);
                    }
                });
            });
        });
    }

    /// The pre-optimization 2-D pipeline: transform rows, materialize the
    /// transpose, transform the former columns as rows, transpose back —
    /// two full field allocations and copies per call, plain radix-2
    /// butterflies. Kept as the numerical oracle for the strided kernel and
    /// as the baseline the perf artifacts compare against.
    ///
    /// # Panics
    ///
    /// Panics if `field` does not match the planned shape.
    pub fn process_reference(&self, field: &mut Field, dir: Direction) {
        assert_eq!(field.shape(), (self.rows, self.cols), "Fft2 shape mismatch");
        let mut scratch = self.row_plan.make_scratch();
        for r in 0..self.rows {
            self.row_plan
                .process_reference(field.row_mut(r), dir, &mut scratch);
        }
        let mut t = field.transpose();
        let mut scratch = self.col_plan.make_scratch();
        for r in 0..self.cols {
            self.col_plan
                .process_reference(t.row_mut(r), dir, &mut scratch);
        }
        *field = t.transpose();
    }

    /// Fused `IFFT2( FFT2(field) ⊙ transfer )` — a single-pass free-space
    /// propagation step. This is the operator-fusion fast path the paper's
    /// runtime evaluation credits for part of the speedup.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match.
    pub fn convolve_spectrum(&self, field: &mut Field, transfer: &Field) {
        self.forward(field);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            field.hadamard_assign(transfer);
        }
        self.inverse(field);
    }

    /// [`Fft2::convolve_spectrum`] with caller-owned scratch (zero
    /// allocation in sequential mode).
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match.
    pub fn convolve_spectrum_with(
        &self,
        field: &mut Field,
        transfer: &Field,
        workspace: &mut Fft2Workspace,
    ) {
        self.process_with(field, Direction::Forward, workspace);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            field.hadamard_assign(transfer);
        }
        self.process_with(field, Direction::Inverse, workspace);
    }

    /// Adjoint of [`Fft2::convolve_spectrum`]: propagates a gradient with the
    /// conjugated transfer function. Under the `(1, 1/N)` normalization the
    /// adjoint of `F⁻¹ diag(H) F` is exactly `F⁻¹ diag(H̄) F`.
    pub fn convolve_spectrum_adjoint(&self, grad: &mut Field, transfer: &Field) {
        self.forward(grad);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            grad.hadamard_conj_assign(transfer);
        }
        self.inverse(grad);
    }

    /// [`Fft2::convolve_spectrum_adjoint`] with caller-owned scratch.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match.
    pub fn convolve_spectrum_adjoint_with(
        &self,
        grad: &mut Field,
        transfer: &Field,
        workspace: &mut Fft2Workspace,
    ) {
        self.process_with(grad, Direction::Forward, workspace);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            grad.hadamard_conj_assign(transfer);
        }
        self.process_with(grad, Direction::Inverse, workspace);
    }

    /// [`Fft2::convolve_spectrum_with`] on one raw row-major plane — the
    /// shared kernel behind both the per-sample and batched spectral
    /// propagation paths.
    ///
    /// # Panics
    ///
    /// Panics if lengths or `workspace` do not match the planned shape.
    pub fn convolve_spectrum_slice_with(
        &self,
        data: &mut [Complex64],
        transfer: &Field,
        workspace: &mut Fft2Workspace,
    ) {
        assert_eq!(
            transfer.shape(),
            (self.rows, self.cols),
            "transfer shape mismatch"
        );
        self.process_slice_with(data, Direction::Forward, workspace);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            for (a, &h) in data.iter_mut().zip(transfer.as_slice()) {
                *a *= h;
            }
        }
        self.process_slice_with(data, Direction::Inverse, workspace);
    }

    /// [`Fft2::convolve_spectrum_adjoint_with`] on one raw row-major plane.
    ///
    /// # Panics
    ///
    /// Panics if lengths or `workspace` do not match the planned shape.
    pub fn convolve_spectrum_adjoint_slice_with(
        &self,
        data: &mut [Complex64],
        transfer: &Field,
        workspace: &mut Fft2Workspace,
    ) {
        assert_eq!(
            transfer.shape(),
            (self.rows, self.cols),
            "transfer shape mismatch"
        );
        self.process_slice_with(data, Direction::Forward, workspace);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            for (a, &h) in data.iter_mut().zip(transfer.as_slice()) {
                *a *= h.conj();
            }
        }
        self.process_slice_with(data, Direction::Inverse, workspace);
    }

    /// Batched [`Fft2::convolve_spectrum_slice_with`]: the fused
    /// `IFFT2( FFT2(plane) ⊙ transfer )` propagation step over a contiguous
    /// run of row-major planes, with the cached transfer kernel broadcast
    /// across batch lanes. Bitwise identical per plane to the per-sample
    /// path at every dispatch level (each lane runs the scalar operation
    /// sequence; the transfer multiply uses the scalar `Complex64` product
    /// formula lanewise).
    ///
    /// # Panics
    ///
    /// Panics if `transfer` or `planes` does not match the planned shape.
    pub fn convolve_spectrum_batch_with(
        &self,
        planes: &mut [Complex64],
        transfer: &Field,
        workspace: &mut Fft2Workspace,
    ) {
        self.convolve_planes(planes, transfer, false, workspace);
    }

    /// Batched [`Fft2::convolve_spectrum_adjoint_slice_with`]: gradient
    /// propagation with the conjugated transfer function across batch
    /// lanes (see [`Fft2::convolve_spectrum_batch_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `transfer` or `planes` does not match the planned shape.
    pub fn convolve_spectrum_adjoint_batch_with(
        &self,
        planes: &mut [Complex64],
        transfer: &Field,
        workspace: &mut Fft2Workspace,
    ) {
        self.convolve_planes(planes, transfer, true, workspace);
    }

    /// Shared grouped driver behind both batched convolve entry points;
    /// `adj` selects the conjugated (adjoint) transfer multiply.
    fn convolve_planes(
        &self,
        planes: &mut [Complex64],
        transfer: &Field,
        adj: bool,
        ws: &mut Fft2Workspace,
    ) {
        assert_eq!(
            transfer.shape(),
            (self.rows, self.cols),
            "transfer shape mismatch"
        );
        let plane_len = self.rows * self.cols;
        assert_eq!(planes.len() % plane_len, 0, "Fft2 plane length mismatch");
        let level = self.batch_level();
        let mut rest = planes;
        if level >= SimdLevel::X4 {
            while rest.len() >= 4 * plane_len {
                let (group, tail) = rest.split_at_mut(4 * plane_len);
                let _t = KernelTimer::start(simd_cell(SimdLevel::X4));
                self.convolve_group_x4(group, transfer, adj, ws);
                rest = tail;
            }
        }
        if level >= SimdLevel::X2 {
            while rest.len() >= 2 * plane_len {
                let (group, tail) = rest.split_at_mut(2 * plane_len);
                let _t = KernelTimer::start(simd_cell(SimdLevel::X2));
                self.convolve_group_v::<simd::F64x2>(group, transfer, adj, ws);
                rest = tail;
            }
        }
        for plane in rest.chunks_exact_mut(plane_len) {
            let _t = KernelTimer::start(KernelKind::SimdScalar);
            if adj {
                self.convolve_spectrum_adjoint_slice_with(plane, transfer, ws);
            } else {
                self.convolve_spectrum_slice_with(plane, transfer, ws);
            }
        }
    }

    /// Four-lane group convolve, routed through the AVX2-enabled wrapper
    /// on x86-64 (see [`Fft2::process_group_x4`]).
    #[inline]
    fn convolve_group_x4(
        &self,
        group: &mut [Complex64],
        transfer: &Field,
        adj: bool,
        ws: &mut Fft2Workspace,
    ) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: reached only when `batch_level() ≥ X4`, and dispatch/force
        // clamp X4 to X2 unless AVX2 was detected at runtime on this CPU.
        unsafe {
            self.convolve_group_avx2(group, transfer, adj, ws)
        }
        #[cfg(not(target_arch = "x86_64"))]
        self.convolve_group_v::<simd::F64x4>(group, transfer, adj, ws)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn convolve_group_avx2(
        &self,
        group: &mut [Complex64],
        transfer: &Field,
        adj: bool,
        ws: &mut Fft2Workspace,
    ) {
        self.convolve_group_v::<simd::F64x4>(group, transfer, adj, ws)
    }

    /// One packed group of the fused convolve: forward pipeline, broadcast
    /// transfer multiply, inverse pipeline — one pack/unpack round trip for
    /// the whole step.
    #[cfg_attr(not(debug_assertions), inline(always))]
    fn convolve_group_v<V: SimdF64>(
        &self,
        group: &mut [Complex64],
        transfer: &Field,
        adj: bool,
        ws: &mut Fft2Workspace,
    ) {
        let stride = 2 * V::LANES;
        let n = self.rows * self.cols;
        ws.simd
            .ensure(self.rows, self.cols, self.max_plan_scratch(), V::LANES);
        let SimdScratch {
            packed,
            scratch,
            col_block,
        } = &mut ws.simd;
        let packed = &mut packed[..n * stride];
        pack_group::<V>(group, packed);
        self.fft2_packed_v::<V>(Direction::Forward, packed, scratch, col_block);
        {
            let _t = KernelTimer::start(KernelKind::Transfer);
            mul_coeffs_packed::<V>(packed, transfer.as_slice(), adj);
        }
        self.fft2_packed_v::<V>(Direction::Inverse, packed, scratch, col_block);
        unpack_group::<V>(packed, group);
    }
}

/// Copies columns `[c0, c0+bw)` of a row-major `rows × cols` buffer into
/// column-major staging (`block[k·rows + r] = data[r·cols + c0 + k]`).
///
/// Takes a raw base pointer so concurrent tasks working on *disjoint*
/// column ranges of one buffer never materialize overlapping `&`/`&mut`
/// slices (which would be UB even with disjoint element access).
///
/// # Safety
///
/// `data` must point to at least `rows·cols` readable elements that no
/// other thread writes in the accessed columns during the call, and
/// `c0 + bw ≤ cols` must hold.
#[inline]
unsafe fn gather_columns(
    data: *const Complex64,
    rows: usize,
    cols: usize,
    c0: usize,
    bw: usize,
    block: &mut [Complex64],
) {
    debug_assert!(c0 + bw <= cols && block.len() >= rows * bw);
    for r in 0..rows {
        for k in 0..bw {
            // SAFETY: r·cols + c0 + k < rows·cols by the caller contract.
            block[k * rows + r] = unsafe { *data.add(r * cols + c0 + k) };
        }
    }
}

/// Inverse of [`gather_columns`].
///
/// # Safety
///
/// `data` must point to at least `rows·cols` writable elements whose
/// columns `[c0, c0+bw)` no other thread accesses during the call, and
/// `c0 + bw ≤ cols` must hold.
#[inline]
unsafe fn scatter_columns(
    block: &[Complex64],
    rows: usize,
    cols: usize,
    c0: usize,
    bw: usize,
    data: *mut Complex64,
) {
    debug_assert!(c0 + bw <= cols && block.len() >= rows * bw);
    for r in 0..rows {
        for k in 0..bw {
            // SAFETY: r·cols + c0 + k < rows·cols by the caller contract.
            unsafe {
                *data.add(r * cols + c0 + k) = block[k * rows + r];
            }
        }
    }
}

/// Shared-buffer pointer handed to disjoint parallel tasks.
#[derive(Clone, Copy)]
struct RowsPtr(*mut Complex64);
// SAFETY: tasks dereference disjoint index ranges only (see call sites).
unsafe impl Send for RowsPtr {}
// SAFETY: same disjointness argument as `Send` above — shared references
// to the wrapper never alias writes to the same indices.
unsafe impl Sync for RowsPtr {}

thread_local! {
    /// Per-thread pool of scratch buffers for the parallel FFT loops.
    static THREAD_SCRATCH: RefCell<Vec<Vec<Complex64>>> = const { RefCell::new(Vec::new()) };
    /// Per-thread [`Fft2Workspace`] cache backing the implicit entry points.
    static TLS_WORKSPACES: RefCell<Vec<Fft2Workspace>> = const { RefCell::new(Vec::new()) };
}

/// Lends a per-thread scratch buffer of length exactly `min_len` to `f`.
/// Buffers are recycled, so steady-state use allocates nothing. Contents
/// are **unspecified** (only growth is zeroed — no full re-zeroing pass);
/// every consumer fully overwrites what it reads.
fn with_thread_scratch<R>(min_len: usize, f: impl FnOnce(&mut Vec<Complex64>) -> R) -> R {
    let mut buf = THREAD_SCRATCH.with(|pool| {
        let mut pool = pool.borrow_mut();
        let found = pool.iter().position(|b| b.capacity() >= min_len);
        match found {
            Some(i) => pool.swap_remove(i),
            None => Vec::with_capacity(min_len),
        }
    });
    buf.resize(min_len, Complex64::ZERO);
    let out = f(&mut buf);
    THREAD_SCRATCH.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < 8 {
            pool.push(buf);
        }
    });
    out
}

/// Lends the thread-local workspace for `fft`'s shape to `f`, creating it
/// on first use for that shape on this thread.
fn with_tls_workspace<R>(fft: &Fft2, f: impl FnOnce(&Fft2, &mut Fft2Workspace) -> R) -> R {
    let shape = fft.shape();
    let mut ws = TLS_WORKSPACES.with(|cache| {
        let mut cache = cache.borrow_mut();
        match cache.iter().position(|w| w.shape() == shape) {
            Some(i) => cache.swap_remove(i),
            None => fft.make_workspace(),
        }
    });
    let out = f(fft, &mut ws);
    TLS_WORKSPACES.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() < 8 {
            cache.push(ws);
        }
    });
    out
}

/// Naive `O(n²)` DFT used as a reference in tests.
pub fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let w = Complex64::cis(sign * 2.0 * PI * (j * k % n) as f64 / n as f64);
            acc += x * w;
        }
        *o = match dir {
            Direction::Forward => acc,
            Direction::Inverse => acc / n as f64,
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(n: usize) {
        let plan = FftPlan::new(n);
        let mut data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let orig = data.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut data, Direction::Forward, &mut scratch);
        plan.process(&mut data, Direction::Inverse, &mut scratch);
        for (a, b) in data.iter().zip(&orig) {
            assert!((*a - *b).norm() < 1e-9, "roundtrip failed for n={n}");
        }
    }

    #[test]
    fn roundtrip_power_of_two() {
        for n in [1, 2, 4, 8, 32, 64, 256, 1024] {
            roundtrip(n);
        }
    }

    #[test]
    fn roundtrip_arbitrary_sizes() {
        for n in [3, 5, 6, 7, 12, 100, 200, 350, 500] {
            roundtrip(n);
        }
    }

    fn against_naive(n: usize) {
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let expected = dft_naive(&input, Direction::Forward);
        let plan = FftPlan::new(n);
        let mut data = input.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut data, Direction::Forward, &mut scratch);
        for (a, b) in data.iter().zip(&expected) {
            assert!(
                (*a - *b).norm() < 1e-8 * (n as f64),
                "mismatch vs naive DFT at n={n}"
            );
        }
    }

    #[test]
    fn matches_naive_dft() {
        // Powers of two cover both the even (4, 16, 64, 256) and odd
        // (2, 8, 32, 128) stage-count paths of the radix-4 kernel.
        for n in [2, 3, 4, 5, 8, 16, 20, 31, 32, 64, 100, 128, 256] {
            against_naive(n);
        }
    }

    #[test]
    fn radix4_agrees_with_reference_butterflies() {
        for n in [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
            let plan = FftPlan::new(n);
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let mut fast = input.clone();
            let mut slow = input;
            let mut scratch = plan.make_scratch();
            plan.process(&mut fast, Direction::Forward, &mut scratch);
            plan.process_reference(&mut slow, Direction::Forward, &mut scratch);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(
                    (*a - *b).norm() <= 1e-12 * (1.0 + b.norm()),
                    "radix-4 diverged from radix-2 at n={n}"
                );
            }
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 16;
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        let plan = FftPlan::new(n);
        let mut scratch = plan.make_scratch();
        plan.process(&mut data, Direction::Forward, &mut scratch);
        for z in &data {
            assert!((*z - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn parseval_1d() {
        let n = 200; // Bluestein path
        let data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let plan = FftPlan::new(n);
        let mut spec = data.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut spec, Direction::Forward, &mut scratch);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum();
        assert!(
            (freq_energy / n as f64 - time_energy).abs() < 1e-8 * time_energy,
            "Parseval violated"
        );
    }

    #[test]
    fn plan_reports_shape_facts() {
        // 200 = 2³·5² is smooth → mixed-radix fast path, Bluestein oracle.
        let plan = FftPlan::new(200);
        assert_eq!(plan.len(), 200);
        assert!(!plan.is_empty());
        assert!(plan.is_mixed_radix());
        assert!(!plan.is_bluestein());
        assert_eq!(plan.scratch_len(), 512); // (2·200-1).next_power_of_two()

        // 211 is prime with smooth 210 = 2·3·5·7 → Rader path.
        let prime = FftPlan::new(211);
        assert!(prime.is_rader());
        assert!(!prime.is_bluestein());
        assert!(!prime.is_mixed_radix());

        // 23 is prime but 22 = 2·11 is not smooth → true Bluestein path.
        let rough = FftPlan::new(23);
        assert!(rough.is_bluestein());
        assert!(!rough.is_rader());

        let pow2 = FftPlan::new(64);
        assert!(!pow2.is_bluestein());
        assert!(!pow2.is_mixed_radix());
        assert!(!pow2.is_rader());
        assert_eq!(pow2.scratch_len(), 0);
    }

    #[test]
    fn mixed_radix_factorization() {
        assert_eq!(MixedRadixPlan::factorize(200), Some(vec![4, 2, 5, 5]));
        assert_eq!(MixedRadixPlan::factorize(350), Some(vec![2, 5, 5, 7]));
        assert_eq!(MixedRadixPlan::factorize(500), Some(vec![4, 5, 5, 5]));
        assert_eq!(MixedRadixPlan::factorize(630), Some(vec![2, 3, 3, 5, 7]));
        assert_eq!(MixedRadixPlan::factorize(211), None); // prime
        assert_eq!(MixedRadixPlan::factorize(2 * 11), None); // factor 11
    }

    #[test]
    fn mixed_radix_matches_bluestein_reference_on_paper_sizes() {
        for n in [200usize, 350, 500, 105, 98, 45] {
            let plan = FftPlan::new(n);
            assert!(plan.is_mixed_radix(), "expected mixed-radix for {n}");
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.23).sin(), (i as f64 * 0.71).cos()))
                .collect();
            let mut fast = input.clone();
            let mut slow = input;
            let mut scratch = plan.make_scratch();
            plan.process(&mut fast, Direction::Forward, &mut scratch);
            plan.process_reference(&mut slow, Direction::Forward, &mut scratch);
            let scale = (n as f64).sqrt();
            for (a, b) in fast.iter().zip(&slow) {
                assert!(
                    (*a - *b).norm() <= 1e-10 * scale * (1.0 + b.norm()),
                    "mixed-radix diverged from Bluestein oracle at n={n}"
                );
            }
        }
    }

    #[test]
    fn fft2_roundtrip_mixed_sizes() {
        for &(r, c) in &[(4, 4), (8, 16), (5, 7), (20, 20), (3, 8), (40, 33)] {
            let fft = Fft2::new(r, c);
            let f = Field::from_fn(r, c, |i, j| {
                Complex64::new((i * c + j) as f64, (i + j) as f64)
            });
            let mut g = f.clone();
            fft.forward(&mut g);
            fft.inverse(&mut g);
            assert!(f.distance(&g) < 1e-8, "fft2 roundtrip {r}x{c}");
        }
    }

    #[test]
    fn fft2_workspace_path_matches_implicit_path() {
        for &(r, c) in &[(8, 8), (5, 12), (33, 50)] {
            let fft = Fft2::new(r, c);
            let f = Field::from_fn(r, c, |i, j| {
                Complex64::new((i as f64 * 0.7).cos(), (j as f64 * 0.3).sin())
            });
            let mut implicit = f.clone();
            fft.forward(&mut implicit);
            let mut ws = fft.make_workspace();
            let mut explicit = f.clone();
            fft.process_with(&mut explicit, Direction::Forward, &mut ws);
            assert_eq!(implicit, explicit, "workspace path diverged at {r}x{c}");
        }
    }

    #[test]
    fn fft2_strided_matches_reference_transpose_path() {
        for &(r, c) in &[(8, 8), (20, 20), (16, 50), (50, 16), (33, 40)] {
            let fft = Fft2::new(r, c);
            let f = Field::from_fn(r, c, |i, j| {
                Complex64::new((i as f64 * 1.1).sin() + 0.2, (j as f64 * 0.9).cos())
            });
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut fast = f.clone();
                fft.process(&mut fast, dir);
                let mut slow = f.clone();
                fft.process_reference(&mut slow, dir);
                let scale = slow.max_norm().max(1.0);
                for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                    assert!(
                        (*a - *b).norm() <= 1e-12 * scale,
                        "strided kernel diverged from transpose reference at {r}x{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn fft2_separable_impulse() {
        // FFT2 of a centered impulse is a pure phase ramp; of an origin
        // impulse it is flat ones.
        let fft = Fft2::new(8, 8);
        let mut f = Field::zeros(8, 8);
        f[(0, 0)] = Complex64::ONE;
        fft.forward(&mut f);
        for z in f.as_slice() {
            assert!((*z - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn fft2_dc_component_is_sum() {
        let fft = Fft2::new(6, 10);
        let f = Field::from_fn(6, 10, |i, j| Complex64::new(i as f64, j as f64));
        let total = f.sum();
        let mut g = f.clone();
        fft.forward(&mut g);
        assert!((g[(0, 0)] - total).norm() < 1e-9);
    }

    #[test]
    fn convolve_spectrum_identity_transfer() {
        let fft = Fft2::new(8, 8);
        let f = Field::from_fn(8, 8, |i, j| Complex64::new(i as f64, j as f64));
        let h = Field::ones(8, 8);
        let mut g = f.clone();
        fft.convolve_spectrum(&mut g, &h);
        assert!(f.distance(&g) < 1e-9);
        let mut ws = fft.make_workspace();
        let mut g2 = f.clone();
        fft.convolve_spectrum_with(&mut g2, &h, &mut ws);
        assert!(f.distance(&g2) < 1e-9);
    }

    #[test]
    fn convolve_adjoint_identity() {
        // <A x, y> == <x, A^H y> for A = IFFT ∘ diag(H) ∘ FFT.
        let fft = Fft2::new(8, 8);
        let h = Field::from_fn(8, 8, |i, j| {
            Complex64::cis(0.3 * i as f64 + 0.17 * j as f64) * (1.0 + 0.1 * j as f64)
        });
        let x = Field::from_fn(8, 8, |i, j| {
            Complex64::new((i * j) as f64 * 0.1, i as f64 - j as f64)
        });
        let y = Field::from_fn(8, 8, |i, j| Complex64::new((i + 2 * j) as f64 * 0.05, 1.0));
        let mut ax = x.clone();
        fft.convolve_spectrum(&mut ax, &h);
        let mut ahy = y.clone();
        fft.convolve_spectrum_adjoint(&mut ahy, &h);
        let lhs = ax.inner(&y);
        let rhs = x.inner(&ahy);
        assert!(
            (lhs - rhs).norm() < 1e-8,
            "adjoint identity violated: {lhs:?} vs {rhs:?}"
        );
    }

    /// Serializes the tests that clear, flood, or assert on the global
    /// plan cache — they would invalidate each other's expectations if the
    /// harness interleaved them.
    static CACHE_TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Pin/orphan semantics of the registry-tied sweep, asserted per key
    /// (never on global cache length — other tests share the process
    /// cache): a pinned plan survives `sweep_orphaned_plans` and keeps
    /// returning the same `Arc`; once its last external reference drops,
    /// the sweep evicts it and the next `planner` call rebuilds.
    #[test]
    fn sweep_evicts_orphaned_plans_but_never_pinned_ones() {
        let _serial = CACHE_TEST_LOCK.lock();
        // Unique lengths no other test uses.
        let pinned = planner(1187);
        sweep_orphaned_plans();
        assert!(
            Arc::ptr_eq(&pinned, &planner(1187)),
            "a pinned plan must survive the sweep"
        );
        drop(pinned);
        let orphan = planner(1193);
        let before_sweep = planner(1193);
        assert!(Arc::ptr_eq(&orphan, &before_sweep));
        drop(orphan);
        drop(before_sweep);
        sweep_orphaned_plans();
        // 1187 and 1193 are both orphans now; a rebuild yields new plans.
        let rebuilt = planner(1193);
        assert_eq!(rebuilt.len(), 1193);
        assert_eq!(Arc::strong_count(&rebuilt), 2, "cache + this binding");
    }

    /// Capacity eviction picks the stalest orphan and never a pinned
    /// entry, so live models keep their prewarmed plans across DSE-style
    /// insert storms.
    #[test]
    fn capacity_eviction_spares_pinned_plans() {
        let _serial = CACHE_TEST_LOCK.lock();
        let pinned = planner(2099);
        // Flood the cache far past the cap with orphaned single-use plans.
        for n in 0..(2 * PLAN_CACHE_CAP) {
            drop(planner(3 * n + 3001));
        }
        assert!(
            Arc::ptr_eq(&pinned, &planner(2099)),
            "a pinned plan must survive capacity eviction"
        );
        assert!(
            plan_cache_len() <= PLAN_CACHE_CAP + 64,
            "orphan flood must not grow the cache unboundedly (len {})",
            plan_cache_len()
        );
    }

    #[test]
    fn plan_cache_shares_plans() {
        let _serial = CACHE_TEST_LOCK.lock();
        clear_plan_cache();
        let a = planner(64);
        let b = planner(64);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(plan_cache_len(), 1);
        let _c = planner(128);
        assert_eq!(plan_cache_len(), 2);
        clear_plan_cache();
        assert_eq!(plan_cache_len(), 0);
    }

    #[test]
    fn linearity() {
        let n = 48; // power-of-two? no: 48 = 16*3 -> Bluestein path
        let plan = FftPlan::new(n);
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.5)).collect();
        let y: Vec<Complex64> = (0..n).map(|i| Complex64::new(1.0, -(i as f64))).collect();
        let alpha = Complex64::new(0.3, -0.8);

        let mut combo: Vec<Complex64> = x.iter().zip(&y).map(|(&a, &b)| a * alpha + b).collect();
        let mut fx = x.clone();
        let mut fy = y.clone();
        let mut scratch = plan.make_scratch();
        plan.process(&mut combo, Direction::Forward, &mut scratch);
        plan.process(&mut fx, Direction::Forward, &mut scratch);
        plan.process(&mut fy, Direction::Forward, &mut scratch);
        for k in 0..n {
            let expect = fx[k] * alpha + fy[k];
            assert!((combo[k] - expect).norm() < 1e-7, "linearity failed at {k}");
        }
    }

    #[test]
    fn fft2_parallel_path_matches_sequential() {
        // 256×256 = 65536 samples crosses PAR_MIN_LEN, engaging the pooled
        // row/column loops when threads are available.
        let _guard = parallel::thread_count_test_guard();
        let n = 256;
        let fft = Fft2::new(n, n);
        let f = Field::from_fn(n, n, |r, c| {
            Complex64::new((r as f64 * 0.01).sin(), (c as f64 * 0.02).cos())
        });
        // Force threads() > 1 so the pooled branch runs even on a
        // single-core machine (the caller then claims every task itself).
        parallel::set_threads(4);
        let mut par = f.clone();
        fft.forward(&mut par);
        parallel::set_threads(1);
        let mut seq = f.clone();
        fft.forward(&mut seq);
        parallel::set_threads(0);
        assert_eq!(
            par, seq,
            "pooled FFT loops must be bit-identical to sequential"
        );
    }

    #[test]
    fn batched_transforms_attribute_dispatch_in_kernel_profile() {
        use crate::batch::FieldBatch;
        use lr_obs::{kernel_profile, reset_kernel_profile, set_kernel_profiling, KernelKind};

        // 31 rows → Rader plan (30 = 2·3·5), 16 cols → radix-2; 496
        // samples stay far under the pooled-parallel threshold, so the
        // lane-packed path runs at the dispatched level on any machine.
        let fft = Fft2::new(31, 16);
        let mut batch = FieldBatch::zeros(4, 31, 16);
        for b in 0..4 {
            let f = Field::from_fn(31, 16, |r, c| {
                Complex64::new((r + b) as f64 * 0.1, c as f64 * 0.2)
            });
            batch.copy_plane_from(b, &f);
        }
        let mut ws = fft.make_batch_workspace();
        set_kernel_profiling(true);
        reset_kernel_profile();
        fft.fft2_batch_with(&mut batch, &mut ws);
        set_kernel_profiling(false);
        let profile = kernel_profile();
        let cell = simd_cell(simd::dispatch());
        assert!(
            profile.get(cell).calls > 0,
            "batched transform must attribute time to the dispatched tier ({cell:?})"
        );
        assert!(
            profile.get(KernelKind::Rader).calls > 0,
            "prime-size rows must attribute their passes to the Rader cell"
        );
    }
}
