//! Vendored portable-SIMD shim: `f64xN` lane types over `std::arch`.
//!
//! This module is the dispatch substrate for the cross-plane (batch-lane)
//! vector kernels behind [`Fft2`](crate::Fft2) and the detector readout
//! in lr-core.
//! It deliberately mirrors the shape of `std::simd` (which is still
//! nightly-only) with exactly the operations the FFT kernels need, over
//! three backends:
//!
//! | lane type | x86-64            | aarch64                | other        |
//! |-----------|-------------------|------------------------|--------------|
//! | [`F64x2`] | SSE2 (`__m128d`)  | NEON (`float64x2_t`)   | `[f64; 2]`   |
//! | [`F64x4`] | AVX2 (`__m256d`)  | 2 × NEON               | `[f64; 4]`   |
//!
//! SSE2 and NEON are baseline features of their targets, so [`F64x2`] is
//! always safe to use. [`F64x4`] on x86-64 compiles to AVX instructions and
//! is only ever *executed* behind the runtime [`dispatch`] check (callers
//! wrap the flattened kernel in a `#[target_feature(enable = "avx2")]`
//! function and cite the dispatch guard in a `// SAFETY:` comment).
//!
//! # Dispatch
//!
//! [`dispatch`] picks a [`SimdLevel`] once per process and caches it in a
//! relaxed atomic (the value is a pure function of CPU features and the
//! environment, so racing initializers write the same byte). The `LR_SIMD`
//! environment variable (`scalar` / `x2` / `x4` / `auto`) overrides
//! detection — CI's `simd-scalar` step uses `LR_SIMD=scalar` to force the
//! oracle path — and [`force`] overrides it again from tests and benches.
//! Requested levels the CPU cannot execute are clamped down (e.g. `x4` on
//! x86-64 without AVX2 becomes `x2`), so every returned level is runnable.
//!
//! # Equivalence contract
//!
//! The vector FFT kernels keep *bitwise* scalar equivalence by packing
//! lanes so each lane performs the exact scalar operation sequence (see
//! `crate::fft` module docs). The one deliberate re-association lives in
//! [`sum_norm_sqr`], whose lane-partial reduction is covered by the
//! documented ≤1e-12 relative tolerance of the detector readout.

use crate::complex::Complex64;
use std::sync::atomic::{AtomicU8, Ordering};

/// The operations a lane type must provide for the cross-plane kernels.
///
/// Every method is `#[inline(always)]` in every implementation: the vector
/// kernels are generic over `V: SimdF64` and must flatten completely into
/// their (possibly `#[target_feature]`-annotated) entry point so the
/// intrinsics inline instead of becoming per-operation function calls.
pub trait SimdF64: Copy + Send + Sync + 'static {
    /// Number of `f64` lanes.
    const LANES: usize;

    /// Broadcasts one value to all lanes.
    fn splat(v: f64) -> Self;

    /// Loads `LANES` consecutive `f64`s from `ptr` (unaligned).
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reading `LANES` `f64`s.
    unsafe fn load(ptr: *const f64) -> Self;

    /// Stores the lanes to `LANES` consecutive `f64`s at `ptr` (unaligned).
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for writing `LANES` `f64`s.
    unsafe fn store(self, ptr: *mut f64);

    /// Lanewise addition.
    fn add(self, other: Self) -> Self;

    /// Lanewise subtraction.
    fn sub(self, other: Self) -> Self;

    /// Lanewise multiplication.
    fn mul(self, other: Self) -> Self;

    /// Lanewise negation.
    fn neg(self) -> Self;

    /// Sums the lanes in ascending lane order (lane 0 first).
    ///
    /// The fixed order makes the reduction deterministic for a given lane
    /// width, so forced-width tests are reproducible.
    fn reduce_add(self) -> f64;
}

#[cfg(target_arch = "x86_64")]
mod backend {
    use super::SimdF64;
    use std::arch::x86_64::{
        __m128d, __m256d, _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
        _mm256_storeu_pd, _mm256_sub_pd, _mm256_xor_pd, _mm_add_pd, _mm_loadu_pd, _mm_mul_pd,
        _mm_set1_pd, _mm_storeu_pd, _mm_sub_pd, _mm_xor_pd,
    };

    /// Two `f64` lanes over SSE2 (part of the x86-64 baseline).
    #[derive(Clone, Copy, Debug)]
    pub struct F64x2(__m128d);

    impl SimdF64 for F64x2 {
        const LANES: usize = 2;

        #[inline(always)]
        fn splat(v: f64) -> Self {
            // SAFETY: SSE2 is baseline on x86-64; the instruction always
            // exists.
            F64x2(unsafe { _mm_set1_pd(v) })
        }

        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            // SAFETY: the caller guarantees `ptr` is readable for 2 f64s;
            // SSE2 is baseline on x86-64 so the instruction always exists.
            F64x2(unsafe { _mm_loadu_pd(ptr) })
        }

        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            // SAFETY: the caller guarantees `ptr` is writable for 2 f64s;
            // SSE2 is baseline on x86-64.
            unsafe { _mm_storeu_pd(ptr, self.0) }
        }

        #[inline(always)]
        fn add(self, other: Self) -> Self {
            // SAFETY: SSE2 is baseline on x86-64.
            F64x2(unsafe { _mm_add_pd(self.0, other.0) })
        }

        #[inline(always)]
        fn sub(self, other: Self) -> Self {
            // SAFETY: SSE2 is baseline on x86-64.
            F64x2(unsafe { _mm_sub_pd(self.0, other.0) })
        }

        #[inline(always)]
        fn mul(self, other: Self) -> Self {
            // SAFETY: SSE2 is baseline on x86-64.
            F64x2(unsafe { _mm_mul_pd(self.0, other.0) })
        }

        #[inline(always)]
        fn neg(self) -> Self {
            // SAFETY: SSE2 is baseline on x86-64.
            F64x2(unsafe { _mm_xor_pd(self.0, _mm_set1_pd(-0.0)) })
        }

        #[inline(always)]
        fn reduce_add(self) -> f64 {
            let mut lanes = [0.0f64; 2];
            // SAFETY: `lanes` is a writable array of exactly 2 f64s.
            unsafe { _mm_storeu_pd(lanes.as_mut_ptr(), self.0) };
            lanes[0] + lanes[1]
        }
    }

    /// Four `f64` lanes over AVX.
    ///
    /// The arithmetic methods compile to AVX/AVX2-era instructions that
    /// fault on CPUs without the feature, so this type must only *run*
    /// inside a `#[target_feature(enable = "avx2")]` region reached
    /// through the [`super::dispatch`] guard (which never reports
    /// [`super::SimdLevel::X4`] unless `avx2` was detected at runtime).
    #[derive(Clone, Copy, Debug)]
    pub struct F64x4(__m256d);

    impl SimdF64 for F64x4 {
        const LANES: usize = 4;

        #[inline(always)]
        fn splat(v: f64) -> Self {
            // SAFETY: executed only under the runtime AVX2 dispatch guard
            // (see the type-level comment).
            F64x4(unsafe { _mm256_set1_pd(v) })
        }

        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            // SAFETY: the caller guarantees `ptr` is readable for 4 f64s,
            // and execution is behind the runtime AVX2 dispatch guard.
            F64x4(unsafe { _mm256_loadu_pd(ptr) })
        }

        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            // SAFETY: the caller guarantees `ptr` is writable for 4 f64s,
            // and execution is behind the runtime AVX2 dispatch guard.
            unsafe { _mm256_storeu_pd(ptr, self.0) }
        }

        #[inline(always)]
        fn add(self, other: Self) -> Self {
            // SAFETY: executed only under the runtime AVX2 dispatch guard.
            F64x4(unsafe { _mm256_add_pd(self.0, other.0) })
        }

        #[inline(always)]
        fn sub(self, other: Self) -> Self {
            // SAFETY: executed only under the runtime AVX2 dispatch guard.
            F64x4(unsafe { _mm256_sub_pd(self.0, other.0) })
        }

        #[inline(always)]
        fn mul(self, other: Self) -> Self {
            // SAFETY: executed only under the runtime AVX2 dispatch guard.
            F64x4(unsafe { _mm256_mul_pd(self.0, other.0) })
        }

        #[inline(always)]
        fn neg(self) -> Self {
            // SAFETY: executed only under the runtime AVX2 dispatch guard.
            F64x4(unsafe { _mm256_xor_pd(self.0, _mm256_set1_pd(-0.0)) })
        }

        #[inline(always)]
        fn reduce_add(self) -> f64 {
            let mut lanes = [0.0f64; 4];
            // SAFETY: `lanes` is a writable array of exactly 4 f64s, and
            // execution is behind the runtime AVX2 dispatch guard.
            unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), self.0) };
            ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3]
        }
    }

    /// True when [`F64x4`] is executable on this CPU.
    #[inline]
    pub fn x4_available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    pub const X2_NAME: &str = "sse2";
    pub const X4_NAME: &str = "avx2";
}

#[cfg(target_arch = "aarch64")]
mod backend {
    use super::SimdF64;
    use std::arch::aarch64::{
        float64x2_t, vaddq_f64, vdupq_n_f64, vgetq_lane_f64, vld1q_f64, vmulq_f64, vnegq_f64,
        vst1q_f64, vsubq_f64,
    };

    /// Two `f64` lanes over NEON (part of the aarch64 baseline).
    #[derive(Clone, Copy, Debug)]
    #[allow(unused_unsafe)] // NEON intrinsics are safe on recent toolchains
    pub struct F64x2(float64x2_t);

    #[allow(unused_unsafe)]
    impl SimdF64 for F64x2 {
        const LANES: usize = 2;

        #[inline(always)]
        fn splat(v: f64) -> Self {
            // SAFETY: NEON is baseline on aarch64.
            F64x2(unsafe { vdupq_n_f64(v) })
        }

        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            // SAFETY: the caller guarantees `ptr` is readable for 2 f64s;
            // NEON is baseline on aarch64.
            F64x2(unsafe { vld1q_f64(ptr) })
        }

        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            // SAFETY: the caller guarantees `ptr` is writable for 2 f64s;
            // NEON is baseline on aarch64.
            unsafe { vst1q_f64(ptr, self.0) }
        }

        #[inline(always)]
        fn add(self, other: Self) -> Self {
            // SAFETY: NEON is baseline on aarch64.
            F64x2(unsafe { vaddq_f64(self.0, other.0) })
        }

        #[inline(always)]
        fn sub(self, other: Self) -> Self {
            // SAFETY: NEON is baseline on aarch64.
            F64x2(unsafe { vsubq_f64(self.0, other.0) })
        }

        #[inline(always)]
        fn mul(self, other: Self) -> Self {
            // SAFETY: NEON is baseline on aarch64.
            F64x2(unsafe { vmulq_f64(self.0, other.0) })
        }

        #[inline(always)]
        fn neg(self) -> Self {
            // SAFETY: NEON is baseline on aarch64.
            F64x2(unsafe { vnegq_f64(self.0) })
        }

        #[inline(always)]
        fn reduce_add(self) -> f64 {
            // SAFETY: NEON is baseline on aarch64; lane indices are in range.
            unsafe { vgetq_lane_f64::<0>(self.0) + vgetq_lane_f64::<1>(self.0) }
        }
    }

    /// Four `f64` lanes as a pair of NEON vectors (aarch64 has no native
    /// 256-bit type; the pair still halves loop overhead per element).
    #[derive(Clone, Copy, Debug)]
    pub struct F64x4(F64x2, F64x2);

    impl SimdF64 for F64x4 {
        const LANES: usize = 4;

        #[inline(always)]
        fn splat(v: f64) -> Self {
            F64x4(F64x2::splat(v), F64x2::splat(v))
        }

        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            // SAFETY: the caller guarantees `ptr` is readable for 4 f64s,
            // so both 2-lane halves are in bounds.
            unsafe { F64x4(F64x2::load(ptr), F64x2::load(ptr.add(2))) }
        }

        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            // SAFETY: the caller guarantees `ptr` is writable for 4 f64s.
            unsafe {
                self.0.store(ptr);
                self.1.store(ptr.add(2));
            }
        }

        #[inline(always)]
        fn add(self, other: Self) -> Self {
            F64x4(self.0.add(other.0), self.1.add(other.1))
        }

        #[inline(always)]
        fn sub(self, other: Self) -> Self {
            F64x4(self.0.sub(other.0), self.1.sub(other.1))
        }

        #[inline(always)]
        fn mul(self, other: Self) -> Self {
            F64x4(self.0.mul(other.0), self.1.mul(other.1))
        }

        #[inline(always)]
        fn neg(self) -> Self {
            F64x4(self.0.neg(), self.1.neg())
        }

        #[inline(always)]
        fn reduce_add(self) -> f64 {
            let a = self.0;
            let b = self.1;
            // Ascending lane order: ((l0 + l1) + l2) + l3.
            // SAFETY: NEON is baseline on aarch64; lane indices are in range.
            #[allow(unused_unsafe)]
            unsafe {
                use std::arch::aarch64::vgetq_lane_f64;
                ((vgetq_lane_f64::<0>(a.0) + vgetq_lane_f64::<1>(a.0)) + vgetq_lane_f64::<0>(b.0))
                    + vgetq_lane_f64::<1>(b.0)
            }
        }
    }

    /// True when [`F64x4`] is executable on this CPU (always: the pair-of-
    /// NEON polyfill needs nothing beyond the aarch64 baseline).
    #[inline]
    pub fn x4_available() -> bool {
        true
    }

    pub const X2_NAME: &str = "neon";
    pub const X4_NAME: &str = "neon";
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod backend {
    use super::SimdF64;

    /// Two `f64` lanes as a plain array (portable fallback; the compiler's
    /// auto-vectorizer is free to do better).
    #[derive(Clone, Copy, Debug)]
    pub struct F64x2([f64; 2]);

    /// Four `f64` lanes as a plain array (portable fallback).
    #[derive(Clone, Copy, Debug)]
    pub struct F64x4([f64; 4]);

    macro_rules! array_backend {
        ($name:ident, $lanes:expr) => {
            impl SimdF64 for $name {
                const LANES: usize = $lanes;

                #[inline(always)]
                fn splat(v: f64) -> Self {
                    $name([v; $lanes])
                }

                #[inline(always)]
                unsafe fn load(ptr: *const f64) -> Self {
                    // SAFETY: the caller guarantees `ptr` is readable for
                    // `LANES` f64s.
                    $name(unsafe { std::ptr::read_unaligned(ptr as *const [f64; $lanes]) })
                }

                #[inline(always)]
                unsafe fn store(self, ptr: *mut f64) {
                    // SAFETY: the caller guarantees `ptr` is writable for
                    // `LANES` f64s.
                    unsafe { std::ptr::write_unaligned(ptr as *mut [f64; $lanes], self.0) }
                }

                #[inline(always)]
                fn add(self, other: Self) -> Self {
                    let mut out = self.0;
                    for (o, b) in out.iter_mut().zip(other.0) {
                        *o += b;
                    }
                    $name(out)
                }

                #[inline(always)]
                fn sub(self, other: Self) -> Self {
                    let mut out = self.0;
                    for (o, b) in out.iter_mut().zip(other.0) {
                        *o -= b;
                    }
                    $name(out)
                }

                #[inline(always)]
                fn mul(self, other: Self) -> Self {
                    let mut out = self.0;
                    for (o, b) in out.iter_mut().zip(other.0) {
                        *o *= b;
                    }
                    $name(out)
                }

                #[inline(always)]
                fn neg(self) -> Self {
                    let mut out = self.0;
                    for o in out.iter_mut() {
                        *o = -*o;
                    }
                    $name(out)
                }

                #[inline(always)]
                fn reduce_add(self) -> f64 {
                    let mut sum = self.0[0];
                    for &lane in &self.0[1..] {
                        sum += lane;
                    }
                    sum
                }
            }
        };
    }

    array_backend!(F64x2, 2);
    array_backend!(F64x4, 4);

    /// True when [`F64x4`] is executable on this CPU (always: plain arrays).
    #[inline]
    pub fn x4_available() -> bool {
        true
    }

    pub const X2_NAME: &str = "portable";
    pub const X4_NAME: &str = "portable";
}

pub use backend::{F64x2, F64x4};

/// How many planes the batched kernels co-process per vector operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Per-plane scalar kernels — the bit-identity oracle.
    Scalar,
    /// Two planes per op ([`F64x2`]: SSE2 / NEON / portable).
    X2,
    /// Four planes per op ([`F64x4`]: AVX2 on x86-64, polyfilled elsewhere).
    X4,
}

impl SimdLevel {
    /// Lane count at this level (1, 2, or 4).
    #[inline]
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::X2 => 2,
            SimdLevel::X4 => 4,
        }
    }

    /// ISA name for profile attribution: `scalar`, `sse2`, `avx2`, `neon`,
    /// or `portable`.
    #[inline]
    pub fn isa_name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::X2 => backend::X2_NAME,
            SimdLevel::X4 => backend::X4_NAME,
        }
    }
}

// Encoding for the dispatch cache cell: 0 = uninitialized.
const UNSET: u8 = 0;
const SCALAR: u8 = 1;
const X2: u8 = 2;
const X4: u8 = 3;

// Relaxed is sufficient: the cached value is a pure function of CPU
// features and LR_SIMD, so racing initializers store the same byte and the
// cell gates no other memory. `force` stores are test/bench-only and the
// affected tests serialize themselves.
static DISPATCH: AtomicU8 = AtomicU8::new(UNSET);

fn encode(level: SimdLevel) -> u8 {
    match level {
        SimdLevel::Scalar => SCALAR,
        SimdLevel::X2 => X2,
        SimdLevel::X4 => X4,
    }
}

/// Clamps a requested level to what this CPU can execute.
fn clamp(level: SimdLevel) -> SimdLevel {
    if level == SimdLevel::X4 && !backend::x4_available() {
        SimdLevel::X2
    } else {
        level
    }
}

fn detect() -> SimdLevel {
    match std::env::var("LR_SIMD") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "scalar" | "off" | "0" | "1" => SimdLevel::Scalar,
            "x2" | "2" => SimdLevel::X2,
            "x4" | "4" => clamp(SimdLevel::X4),
            _ => default_level(),
        },
        Err(_) => default_level(),
    }
}

fn default_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if backend::x4_available() {
            SimdLevel::X4
        } else {
            SimdLevel::X2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdLevel::X2
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// Returns the process-wide SIMD dispatch level, detecting it on first use.
///
/// Honors `LR_SIMD` (`scalar` / `x2` / `x4` / `auto`) and any active
/// [`force`] override; the result is always executable on this CPU.
#[inline]
pub fn dispatch() -> SimdLevel {
    match DISPATCH.load(Ordering::Relaxed) {
        SCALAR => SimdLevel::Scalar,
        X2 => SimdLevel::X2,
        X4 => SimdLevel::X4,
        _ => {
            let level = detect();
            DISPATCH.store(encode(level), Ordering::Relaxed);
            level
        }
    }
}

/// Overrides the dispatch level for tests and benches.
///
/// `Some(level)` pins dispatch to `level` (clamped to what the CPU can
/// execute — ask [`dispatch`] afterwards for the effective value);
/// `None` clears the override so the next [`dispatch`] call re-detects.
/// Process-global: concurrent tests that use this must serialize on a lock
/// and restore `force(None)` before releasing it.
pub fn force(level: Option<SimdLevel>) {
    let byte = match level {
        None => UNSET,
        Some(l) => encode(clamp(l)),
    };
    DISPATCH.store(byte, Ordering::Relaxed);
}

#[inline(always)]
fn sum_norm_sqr_v<V: SimdF64>(samples: &[Complex64]) -> f64 {
    // Complex64 is repr(C) { re, im }, so a plane of samples is a flat
    // sequence of 2·len interleaved f64s; Σ|z|² = Σ re² + Σ im² does not
    // care which component a lane holds.
    let total = 2 * samples.len();
    let ptr = samples.as_ptr() as *const f64;
    let mut acc = V::splat(0.0);
    let mut i = 0;
    while i + V::LANES <= total {
        // SAFETY: i + LANES ≤ total f64s backing `samples` (repr(C) layout).
        let v = unsafe { V::load(ptr.add(i)) };
        acc = acc.add(v.mul(v));
        i += V::LANES;
    }
    let mut sum = acc.reduce_add();
    while i < total {
        // SAFETY: i < total f64s backing `samples`.
        let x = unsafe { *ptr.add(i) };
        sum += x * x;
        i += 1;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn sum_norm_sqr_avx2(samples: &[Complex64]) -> f64 {
    sum_norm_sqr_v::<F64x4>(samples)
}

/// Sum of `|z|²` over a slice, vectorized per the current [`dispatch`].
///
/// At [`SimdLevel::Scalar`] this is the exact sequential reduction (the
/// oracle). Wider levels reduce lane partials first, which re-associates
/// the sum; callers (the detector readout) cover the difference with the
/// documented ≤1e-12 relative tolerance.
pub fn sum_norm_sqr(samples: &[Complex64]) -> f64 {
    match dispatch() {
        SimdLevel::Scalar => {
            let mut sum = 0.0;
            for z in samples {
                sum += z.norm_sqr();
            }
            sum
        }
        SimdLevel::X2 => sum_norm_sqr_v::<F64x2>(samples),
        SimdLevel::X4 => {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: dispatch() only returns X4 on x86-64 when AVX2
                // was detected at runtime (detect/force both clamp).
                unsafe { sum_norm_sqr_avx2(samples) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                sum_norm_sqr_v::<F64x4>(samples)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // `force` is process-global; tests that touch it serialize here.
    static FORCE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn dispatch_returns_executable_level() {
        let level = dispatch();
        assert!(level.lanes() == 1 || level.lanes() == 2 || level.lanes() == 4);
        assert!(!level.isa_name().is_empty());
    }

    #[test]
    fn force_overrides_and_clears() {
        let _guard = FORCE_LOCK.lock().unwrap();
        force(Some(SimdLevel::Scalar));
        assert_eq!(dispatch(), SimdLevel::Scalar);
        force(Some(SimdLevel::X2));
        assert_eq!(dispatch(), SimdLevel::X2);
        force(Some(SimdLevel::X4));
        // X4 may legitimately clamp to X2 on CPUs without AVX2.
        assert!(dispatch() >= SimdLevel::X2);
        force(None);
        let redetected = dispatch();
        assert!(redetected.lanes() >= 1);
    }

    #[test]
    fn lane_ops_match_scalar() {
        let _guard = FORCE_LOCK.lock().unwrap();
        fn check<V: SimdF64>() {
            let a_src: Vec<f64> = (0..V::LANES).map(|i| 1.5 + i as f64).collect();
            let b_src: Vec<f64> = (0..V::LANES).map(|i| -0.25 * (i as f64 + 1.0)).collect();
            // SAFETY: both sources hold exactly LANES f64s.
            let (a, b) = unsafe { (V::load(a_src.as_ptr()), V::load(b_src.as_ptr())) };
            let mut out = vec![0.0; V::LANES];
            type BinOp = fn(f64, f64) -> f64;
            let cases: [(V, BinOp); 3] = [
                (a.add(b), |x, y| x + y),
                (a.sub(b), |x, y| x - y),
                (a.mul(b), |x, y| x * y),
            ];
            for (op, expect) in cases {
                // SAFETY: `out` holds exactly LANES f64s.
                unsafe { op.store(out.as_mut_ptr()) };
                for i in 0..V::LANES {
                    assert_eq!(out[i], expect(a_src[i], b_src[i]));
                }
            }
            // SAFETY: `out` holds exactly LANES f64s.
            unsafe { a.neg().store(out.as_mut_ptr()) };
            for i in 0..V::LANES {
                assert_eq!(out[i], -a_src[i]);
            }
            let sum: f64 = a_src.iter().sum();
            assert_eq!(a.reduce_add(), sum);
            // SAFETY: `out` holds exactly LANES f64s.
            unsafe { V::splat(3.25).store(out.as_mut_ptr()) };
            assert!(out.iter().all(|&x| x == 3.25));
        }
        check::<F64x2>();
        if backend::x4_available() {
            check::<F64x4>();
        }
    }

    #[test]
    fn sum_norm_sqr_matches_scalar_within_tolerance() {
        let _guard = FORCE_LOCK.lock().unwrap();
        for len in [0usize, 1, 2, 3, 7, 8, 33, 100] {
            let samples: Vec<Complex64> = (0..len)
                .map(|i| {
                    let t = i as f64 * 0.37;
                    Complex64::new(t.sin() * 1.75, t.cos() - 0.5)
                })
                .collect();
            force(Some(SimdLevel::Scalar));
            let exact = sum_norm_sqr(&samples);
            for level in [SimdLevel::X2, SimdLevel::X4] {
                force(Some(level));
                let got = sum_norm_sqr(&samples);
                let tol = 1e-12 * (1.0 + exact.abs());
                assert!(
                    (got - exact).abs() <= tol,
                    "len {len} level {level:?}: {got} vs {exact}"
                );
            }
            force(None);
        }
    }

    #[test]
    fn sum_norm_sqr_exact_on_small_integers() {
        let _guard = FORCE_LOCK.lock().unwrap();
        let samples: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new((i % 5) as f64, (i % 3) as f64))
            .collect();
        let expect: f64 = samples.iter().map(|z| z.norm_sqr()).sum();
        for level in [SimdLevel::Scalar, SimdLevel::X2, SimdLevel::X4] {
            force(Some(level));
            // Small-integer squares sum exactly in f64 under any
            // association, so every lane width agrees bitwise here.
            assert_eq!(sum_norm_sqr(&samples), expect);
        }
        force(None);
    }
}
