//! Minimal, fast complex scalar used throughout the framework.
//!
//! The optics kernels only need `f64` precision arithmetic, conjugation,
//! polar conversions and the complex exponential, so we implement a small
//! `Copy` value type rather than pulling in an external crate. The layout is
//! `#[repr(C)]` `(re, im)` so a `&[Complex64]` can be reinterpreted as an
//! interleaved buffer when needed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + j·im`.
///
/// # Examples
///
/// ```
/// use lr_tensor::Complex64;
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::from_polar(1.0, std::f64::consts::FRAC_PI_2);
/// assert!((a * b - Complex64::new(-2.0, 1.0)).norm() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The imaginary unit `j`.
pub const J: Complex64 = Complex64 { re: 0.0, im: 1.0 };

impl Complex64 {
    /// Additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = J;

    /// Creates a complex number from rectangular components.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    #[inline(always)]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 {
            re: r * c,
            im: r * s,
        }
    }

    /// Unit-magnitude complex exponential `e^{jθ}` (a pure phase factor).
    #[inline(always)]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude `|z|`.
    #[inline(always)]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|² = z·z̄` — the optical *intensity* of a field
    /// sample.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in `(-π, π]`.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `(magnitude, phase)` pair.
    #[inline(always)]
    pub fn to_polar(self) -> (f64, f64) {
        (self.norm(), self.arg())
    }

    /// Complex exponential `e^z = e^{re}·(cos im + j sin im)`.
    #[inline(always)]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z == 0`, mirroring `f64` division.
    #[inline(always)]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Principal square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        let (r, theta) = self.to_polar();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Fused multiply-add: `self * b + c`, as a single expression so the
    /// optimizer can vectorize the interleaved form.
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Complex64 {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }

    /// True if both components are finite.
    #[inline(always)]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // Division by reciprocal-multiply is the intended formula, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Self {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: f64) -> Self {
        Complex64 {
            re: self.re + rhs,
            im: self.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl DivAssign<f64> for Complex64 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: f64) {
        let inv = 1.0 / rhs;
        self.re *= inv;
        self.im *= inv;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl From<(f64, f64)> for Complex64 {
    #[inline(always)]
    fn from((re, im): (f64, f64)) -> Self {
        Complex64::new(re, im)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}j",
            self.re,
            if self.im < 0.0 { "-" } else { "+" },
            self.im.abs()
        )
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < EPS
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(3.0, -4.0);
        let b = Complex64::new(-1.5, 2.5);
        assert!(close(a + b - b, a));
        assert!(close(a * b / b, a));
        assert!(close(a * Complex64::ONE, a));
        assert!(close(a + Complex64::ZERO, a));
        assert!(close(-a + a, Complex64::ZERO));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(3.0, -4.0);
        assert!(close(a.conj().conj(), a));
        assert!((a * a.conj()).im.abs() < EPS);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn norm_and_polar() {
        let a = Complex64::new(3.0, 4.0);
        assert!((a.norm() - 5.0).abs() < EPS);
        assert!((a.norm_sqr() - 25.0).abs() < EPS);
        let (r, t) = a.to_polar();
        assert!(close(Complex64::from_polar(r, t), a));
    }

    #[test]
    fn cis_is_unit_phase() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_8;
            let z = Complex64::cis(theta);
            assert!((z.norm() - 1.0).abs() < EPS);
            assert!((z.arg() - wrap(theta)).abs() < 1e-10);
        }
        fn wrap(mut t: f64) -> f64 {
            use std::f64::consts::PI;
            while t > PI {
                t -= 2.0 * PI;
            }
            while t <= -PI {
                t += 2.0 * PI;
            }
            t
        }
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex64::new(0.5, 1.2);
        let e = z.exp();
        let expected = Complex64::from_polar(0.5f64.exp(), 1.2);
        assert!(close(e, expected));
    }

    #[test]
    fn inv_and_div() {
        let a = Complex64::new(2.0, -7.0);
        assert!(close(a * a.inv(), Complex64::ONE));
        assert!(close(a / a, Complex64::ONE));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (0.0, 2.0), (-1.0, 0.0), (3.0, -4.0)] {
            let z = Complex64::new(re, im);
            let s = z.sqrt();
            assert!((s * s - z).norm() < 1e-10, "sqrt({z:?}) = {s:?}");
        }
    }

    #[test]
    fn mul_add_matches_composition() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 0.25);
        let c = Complex64::new(10.0, -3.0);
        assert!(close(a.mul_add(b, c), a * b + c));
    }

    #[test]
    fn real_scalar_ops() {
        let a = Complex64::new(1.0, -2.0);
        assert!(close(a * 2.0, Complex64::new(2.0, -4.0)));
        assert!(close(2.0 * a, a * 2.0));
        assert!(close(a / 2.0, Complex64::new(0.5, -1.0)));
        assert!(close(a + 1.0, Complex64::new(2.0, -2.0)));
    }

    #[test]
    fn sum_folds() {
        let v = vec![Complex64::new(1.0, 1.0); 8];
        let s: Complex64 = v.into_iter().sum();
        assert!(close(s, Complex64::new(8.0, 8.0)));
    }

    #[test]
    fn debug_format_nonempty() {
        assert_eq!(format!("{:?}", Complex64::new(1.0, -2.0)), "1-2j");
        assert_eq!(format!("{:?}", Complex64::ZERO), "0+0j");
    }
}
