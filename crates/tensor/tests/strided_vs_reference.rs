//! Property tests for the zero-copy FFT2 pipeline: the strided
//! cache-blocked kernel (with radix-4 / mixed-radix butterflies) must agree
//! with the pre-change transpose-based reference to ≤ 1e-12 relative error
//! on the paper's system resolutions and on non-square shapes, and the
//! persistent worker pool must be bit-deterministic across thread counts.

use lr_tensor::{parallel, Complex64, Direction, Fft2, Field};

fn test_field(rows: usize, cols: usize, seed: u64) -> Field {
    Field::from_fn(rows, cols, |r, c| {
        let x = (r as u64)
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add((c as u64).wrapping_mul(1_442_695_040_888_963_407))
            .wrapping_add(seed);
        let a = ((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
        let y = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let b = ((y >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
        Complex64::new(a, b)
    })
}

fn assert_matches_reference(rows: usize, cols: usize, seed: u64) {
    let fft = Fft2::new(rows, cols);
    let base = test_field(rows, cols, seed);
    for dir in [Direction::Forward, Direction::Inverse] {
        let mut fast = base.clone();
        fft.process(&mut fast, dir);
        let mut slow = base.clone();
        fft.process_reference(&mut slow, dir);
        let scale = slow.max_norm().max(1e-30);
        for (i, (a, b)) in fast.as_slice().iter().zip(slow.as_slice()).enumerate() {
            assert!(
                (*a - *b).norm() <= 1e-12 * scale,
                "strided kernel diverged from transpose reference at {rows}x{cols} \
                 sample {i} ({dir:?}): {a:?} vs {b:?} (scale {scale:.3e})"
            );
        }
    }
}

#[test]
fn paper_resolution_200() {
    // 200 = 2³·5²: mixed-radix path, parallel row/col split when threaded.
    assert_matches_reference(200, 200, 1);
}

#[test]
fn paper_resolution_350() {
    // 350 = 2·5²·7: exercises the radix-7 stage.
    assert_matches_reference(350, 350, 2);
}

#[test]
fn paper_resolution_500() {
    // 500 = 2²·5³.
    assert_matches_reference(500, 500, 3);
}

#[test]
fn non_square_and_mixed_plan_shapes() {
    // Rectangles mixing radix-2, mixed-radix, and Bluestein (211 prime)
    // row/column plans, on both sides of the column-block width (32).
    for &(r, c, seed) in &[
        (200usize, 64usize, 4u64),
        (64, 200, 5),
        (31, 97, 6),  // Bluestein × Bluestein (primes)
        (16, 211, 7), // radix-2 × Bluestein prime
        (211, 16, 8),
        (100, 350, 9), // mixed × mixed, wide
        (3, 40, 10),   // fewer rows than one column block
    ] {
        assert_matches_reference(r, c, seed);
    }
}

#[test]
fn roundtrip_at_paper_resolutions() {
    for &n in &[200usize, 350] {
        let fft = Fft2::new(n, n);
        let base = test_field(n, n, 11);
        let mut f = base.clone();
        fft.forward(&mut f);
        fft.inverse(&mut f);
        let err = f.distance(&base) / base.total_power().sqrt();
        assert!(err < 1e-10, "roundtrip error {err:.3e} at {n}²");
    }
}

#[test]
fn worker_pool_is_deterministic_across_thread_counts() {
    // par_map results must be identical for 1 vs N threads: each index is
    // computed exactly once and written to its own slot, so the schedule
    // cannot change the output.
    let work = |i: usize| {
        let mut acc = 0.0f64;
        for k in 0..200 {
            acc += ((i * 31 + k) as f64).sin();
        }
        (i, acc.to_bits())
    };
    parallel::set_threads(1);
    let sequential = parallel::par_map(257, work);
    parallel::set_threads(0);
    let pooled = parallel::par_map(257, work);
    parallel::set_threads(8);
    let eight = parallel::par_map(257, work);
    parallel::set_threads(0);
    assert_eq!(
        sequential, pooled,
        "default thread count changed par_map results"
    );
    assert_eq!(sequential, eight, "8-thread pool changed par_map results");
}

#[test]
fn fft2_bit_identical_across_thread_counts() {
    // The pooled row/column FFT split must be bit-identical to the
    // sequential pass (256² crosses the parallel threshold).
    let n = 256;
    let fft = Fft2::new(n, n);
    let base = test_field(n, n, 12);
    parallel::set_threads(1);
    let mut seq = base.clone();
    fft.forward(&mut seq);
    // Force threads() > 1 so the pooled branch runs even on a single-core
    // machine (the caller claims every task itself if no workers exist).
    parallel::set_threads(4);
    let mut par = base.clone();
    fft.forward(&mut par);
    parallel::set_threads(0);
    assert_eq!(seq, par, "pooled FFT2 differs from sequential FFT2");
}
