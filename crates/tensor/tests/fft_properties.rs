//! Property-based validation of the FFT substrate: the algebraic
//! identities every DFT implementation must satisfy, on randomized inputs
//! and sizes (both the radix-2 and Bluestein code paths).

use lr_tensor::{dft_naive, Complex64, Direction, Fft2, FftPlan, Field};
use proptest::prelude::*;
use std::f64::consts::PI;

fn signal(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec(
        (-5.0f64..5.0, -5.0f64..5.0).prop_map(|(re, im)| Complex64::new(re, im)),
        n..=n,
    )
}

fn fft(data: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let plan = FftPlan::new(data.len());
    let mut out = data.to_vec();
    let mut scratch = plan.make_scratch();
    plan.process(&mut out, dir, &mut scratch);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Circular time shift ⇔ linear phase in frequency:
    /// `F[x[(j−s) mod n]]_k = F[x]_k · e^{−2πi·sk/n}`.
    #[test]
    fn shift_theorem(n in 2usize..40, s in 0usize..40, seed in 0u64..1000) {
        let s = s % n;
        let data: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new(((j as u64 * 31 + seed) % 17) as f64, ((j as u64 * 7 + seed) % 13) as f64))
            .collect();
        let mut shifted = vec![Complex64::ZERO; n];
        for j in 0..n {
            shifted[(j + s) % n] = data[j];
        }
        let fx = fft(&data, Direction::Forward);
        let fs = fft(&shifted, Direction::Forward);
        for k in 0..n {
            let phase = Complex64::cis(-2.0 * PI * (s * k % n) as f64 / n as f64);
            let expect = fx[k] * phase;
            prop_assert!((fs[k] - expect).norm() < 1e-7 * (1.0 + expect.norm()),
                "shift theorem failed at n={}, s={}, k={}", n, s, k);
        }
    }

    /// Conjugate symmetry: real input ⇒ `X[n−k] = conj(X[k])`.
    #[test]
    fn real_input_conjugate_symmetry(n in 2usize..50, seed in 0u64..1000) {
        let data: Vec<Complex64> = (0..n)
            .map(|j| Complex64::from_real((((j as u64 + seed) * 2654435761) % 101) as f64 / 101.0))
            .collect();
        let fx = fft(&data, Direction::Forward);
        for k in 1..n {
            let expect = fx[n - k].conj();
            prop_assert!((fx[k] - expect).norm() < 1e-7 * (1.0 + expect.norm()));
        }
        prop_assert!(fx[0].im.abs() < 1e-9, "DC of a real signal is real");
    }

    /// The fast transform agrees with the O(n²) DFT on every size.
    #[test]
    fn matches_naive_dft(data in (2usize..30).prop_flat_map(signal)) {
        let fast = fft(&data, Direction::Forward);
        let slow = dft_naive(&data, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).norm() < 1e-6 * (1.0 + b.norm()));
        }
    }

    /// Circular convolution theorem on the 2-D engine:
    /// `IFFT(FFT(x) ⊙ FFT(h))` equals direct circular convolution.
    #[test]
    fn convolution_theorem_2d(n in 2usize..10, seed in 0u64..100) {
        let x = Field::from_fn(n, n, |r, c| {
            Complex64::new(((r as u64 * 3 + c as u64 + seed) % 7) as f64, ((r + 2 * c) % 5) as f64)
        });
        let h = Field::from_fn(n, n, |r, c| {
            Complex64::new(((r + c) % 3) as f64, ((r as u64 * c as u64 + seed) % 4) as f64)
        });
        let fftp = Fft2::new(n, n);
        let mut spectral = x.clone();
        let mut hf = h.clone();
        fftp.forward(&mut hf);
        fftp.convolve_spectrum(&mut spectral, &hf);

        // Direct circular convolution.
        let mut direct = Field::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                let mut acc = Complex64::ZERO;
                for i in 0..n {
                    for j in 0..n {
                        acc += x[(i, j)] * h[((r + n - i) % n, (c + n - j) % n)];
                    }
                }
                direct[(r, c)] = acc;
            }
        }
        prop_assert!(
            spectral.distance(&direct) < 1e-6 * (1.0 + direct.total_power().sqrt()),
            "convolution theorem violated at n={}", n
        );
    }

    /// Double transform is (scaled) coordinate reversal:
    /// `F[F[x]]_j = n·x[(−j) mod n]`.
    #[test]
    fn double_transform_reverses(data in (2usize..30).prop_flat_map(signal)) {
        let n = data.len();
        let twice = fft(&fft(&data, Direction::Forward), Direction::Forward);
        for j in 0..n {
            let expect = data[(n - j) % n] * n as f64;
            prop_assert!((twice[j] - expect).norm() < 1e-6 * (1.0 + expect.norm()));
        }
    }
}
