//! Batched-FFT contract: the batched 2-D entry points
//! (`fft2_batch_with`/`ifft2_batch_with`) must be **bit-identical** to
//! per-plane `process_with` for every plane, across batch sizes, shapes
//! (square and non-square), and FFT code paths (radix-2, mixed-radix
//! Stockham, Rader, and Bluestein) — and every forced SIMD dispatch level
//! must be bitwise identical to the forced-scalar oracle. This is the
//! invariant the whole batched propagation stack inherits.

use lr_tensor::{Complex64, Direction, Fft2, Field, FieldBatch};
use proptest::prelude::*;

fn plane_value(b: usize, r: usize, c: usize, seed: u64) -> Complex64 {
    Complex64::new(
        ((b as u64 * 131 + r as u64 * 31 + c as u64 * 7 + seed) % 23) as f64 / 23.0 - 0.5,
        ((b as u64 * 17 + r as u64 * 5 + c as u64 * 13 + seed) % 19) as f64 / 19.0 - 0.5,
    )
}

/// Runs both paths over a fresh batch and asserts exact equality.
fn assert_batched_matches_per_plane(batch_size: usize, rows: usize, cols: usize, seed: u64) {
    let fft = Fft2::new(rows, cols);
    let mut batch = FieldBatch::zeros(batch_size, rows, cols);
    let mut fields: Vec<Field> = Vec::with_capacity(batch_size);
    for b in 0..batch_size {
        let f = Field::from_fn(rows, cols, |r, c| plane_value(b, r, c, seed));
        batch.copy_plane_from(b, &f);
        fields.push(f);
    }

    let mut batch_ws = fft.make_batch_workspace();
    let mut plane_ws = fft.make_workspace();

    fft.fft2_batch_with(&mut batch, &mut batch_ws);
    for (b, f) in fields.iter_mut().enumerate() {
        fft.process_with(f, Direction::Forward, &mut plane_ws);
        assert_eq!(
            batch.plane(b),
            f.as_slice(),
            "forward batched/per-plane divergence at plane {b} ({rows}x{cols})"
        );
    }

    fft.ifft2_batch_with(&mut batch, &mut batch_ws);
    for (b, f) in fields.iter_mut().enumerate() {
        fft.process_with(f, Direction::Inverse, &mut plane_ws);
        assert_eq!(
            batch.plane(b),
            f.as_slice(),
            "inverse batched/per-plane divergence at plane {b} ({rows}x{cols})"
        );
    }
}

#[test]
fn batched_fft_bit_identical_across_paths_and_batch_sizes() {
    // Shapes cover every plan kind: 16/32 (radix-2), 20 = 2²·5 and
    // 24 = 2³·3 (mixed-radix Stockham), 22 = 2·11 and 26 = 2·13
    // (Bluestein), plus non-square mixes of different kinds per axis.
    for &(rows, cols) in &[
        (16, 16),
        (20, 20),
        (22, 22),
        (16, 20),
        (20, 26),
        (22, 32),
        (26, 24),
    ] {
        for &batch_size in &[1usize, 3, 8] {
            assert_batched_matches_per_plane(batch_size, rows, cols, 42);
        }
    }
}

#[test]
fn batched_roundtrip_recovers_input() {
    let fft = Fft2::new(20, 22);
    let mut batch = FieldBatch::zeros(4, 20, 22);
    for b in 0..4 {
        let f = Field::from_fn(20, 22, |r, c| plane_value(b, r, c, 7));
        batch.copy_plane_from(b, &f);
    }
    let orig = batch.clone();
    let mut ws = fft.make_batch_workspace();
    fft.fft2_batch_with(&mut batch, &mut ws);
    fft.ifft2_batch_with(&mut batch, &mut ws);
    for b in 0..4 {
        for (x, y) in batch.plane(b).iter().zip(orig.plane(b)) {
            assert!((*x - *y).norm() < 1e-9, "roundtrip failed at plane {b}");
        }
    }
}

#[test]
fn one_workspace_serves_shrinking_and_growing_batches() {
    // The same BatchWorkspace must serve any active batch size at its
    // shape — the serving runtime reuses one per (worker, model) across
    // micro-batches of every size.
    let fft = Fft2::new(22, 20);
    let mut ws = fft.make_batch_workspace();
    let mut batch = FieldBatch::with_capacity(8, 22, 20);
    for &n in &[8usize, 1, 5, 2] {
        batch.set_batch(n);
        for b in 0..n {
            let f = Field::from_fn(22, 20, |r, c| plane_value(b, r, c, n as u64));
            batch.copy_plane_from(b, &f);
        }
        fft.fft2_batch_with(&mut batch, &mut ws);
        let mut plane_ws = fft.make_workspace();
        for b in 0..n {
            let mut f = Field::from_fn(22, 20, |r, c| plane_value(b, r, c, n as u64));
            fft.process_with(&mut f, Direction::Forward, &mut plane_ws);
            assert_eq!(batch.plane(b), f.as_slice());
        }
    }
}

/// The cross-plane SIMD contract: every forced dispatch level the CPU can
/// execute produces **bitwise identical** batched FFT and spectrum-
/// convolution results to the forced-scalar oracle — each vector lane
/// performs the exact scalar operation sequence, so there is no tolerance
/// to negotiate on these paths. Covers batch sizes {1, 3, 32} (remainder
/// lanes at both x2 and x4 grouping), non-square grids, and every plan
/// kind: radix-2 (16), mixed-radix Stockham (20, 24), Rader primes
/// (31: 30 = 2·3·5), and Bluestein (23: 22 has the factor 11).
///
/// `simd::force` is process-global; a level flip mid-run cannot break the
/// other tests here (batched == per-plane holds bitwise at every level),
/// and auto-detection is restored before returning.
#[test]
fn forced_simd_levels_bitwise_match_scalar_oracle() {
    use lr_tensor::simd::{self, SimdLevel};

    for &(rows, cols) in &[(16, 16), (20, 24), (31, 31), (23, 23), (31, 24), (16, 23)] {
        let fft = Fft2::new(rows, cols);
        let transfer = Field::from_fn(rows, cols, |r, c| plane_value(9, r, c, 5));
        for &batch_size in &[1usize, 3, 32] {
            let fill = |batch: &mut FieldBatch| {
                for b in 0..batch_size {
                    let f = Field::from_fn(rows, cols, |r, c| plane_value(b, r, c, 3));
                    batch.copy_plane_from(b, &f);
                }
            };

            // Scalar oracle: one forward transform, one spectrum convolve.
            simd::force(Some(SimdLevel::Scalar));
            let mut oracle_fft = FieldBatch::zeros(batch_size, rows, cols);
            fill(&mut oracle_fft);
            let mut ws = fft.make_batch_workspace();
            fft.fft2_batch_with(&mut oracle_fft, &mut ws);
            let mut oracle_conv = FieldBatch::zeros(batch_size, rows, cols);
            fill(&mut oracle_conv);
            let mut plane_ws = fft.make_workspace();
            fft.prepare_batch_workspace(&mut plane_ws);
            fft.convolve_spectrum_batch_with(oracle_conv.as_mut_slice(), &transfer, &mut plane_ws);

            for level in [SimdLevel::X2, SimdLevel::X4] {
                simd::force(Some(level));
                if simd::dispatch() != level {
                    // Clamped: this CPU cannot execute the requested width.
                    continue;
                }
                let mut got = FieldBatch::zeros(batch_size, rows, cols);
                fill(&mut got);
                fft.fft2_batch_with(&mut got, &mut ws);
                for b in 0..batch_size {
                    assert_eq!(
                        got.plane(b),
                        oracle_fft.plane(b),
                        "fft2 {level:?} vs scalar divergence at plane {b}/{batch_size} \
                         ({rows}x{cols})"
                    );
                }
                let mut got = FieldBatch::zeros(batch_size, rows, cols);
                fill(&mut got);
                fft.convolve_spectrum_batch_with(got.as_mut_slice(), &transfer, &mut plane_ws);
                for b in 0..batch_size {
                    assert_eq!(
                        got.plane(b),
                        oracle_conv.plane(b),
                        "convolve {level:?} vs scalar divergence at plane {b}/{batch_size} \
                         ({rows}x{cols})"
                    );
                }
            }
        }
    }
    simd::force(None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched == per-plane on randomized shapes/batch sizes, covering
    /// all three 1-D plan kinds as the shape varies.
    #[test]
    fn batched_matches_per_plane_prop(
        rows in 2usize..28,
        cols in 2usize..28,
        batch_size in 1usize..6,
        seed in 0u64..1000,
    ) {
        assert_batched_matches_per_plane(batch_size, rows, cols, seed);
    }
}
