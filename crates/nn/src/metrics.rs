//! Evaluation metrics: accuracy, top-k, confusion matrices, prediction
//! confidence (used in the paper's Fig. 7 robustness study), and the
//! IoU/Dice scores for the segmentation experiments (Fig. 13).

/// Index of the largest element.
///
/// # Panics
///
/// Panics if `scores` is empty.
pub fn argmax(scores: &[f64]) -> usize {
    assert!(!scores.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

/// True if the correct `label` appears among the `k` highest scores.
pub fn top_k_correct(scores: &[f64], label: usize, k: usize) -> bool {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.into_iter().take(k).any(|i| i == label)
}

/// Running classification-accuracy accumulator.
///
/// # Examples
///
/// ```
/// use lr_nn::metrics::Accuracy;
/// let mut acc = Accuracy::new();
/// acc.update(&[0.1, 0.9], 1);
/// acc.update(&[0.8, 0.2], 1);
/// assert_eq!(acc.value(), 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Accuracy {
    correct: usize,
    total: usize,
}

impl Accuracy {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction.
    pub fn update(&mut self, scores: &[f64], label: usize) {
        if argmax(scores) == label {
            self.correct += 1;
        }
        self.total += 1;
    }

    /// Fraction correct so far (0 when empty).
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.total
    }
}

/// Confusion matrix over `n` classes; rows = truth, cols = prediction.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Creates an `n × n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "confusion matrix needs at least one class");
        ConfusionMatrix {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Records one `(truth, prediction)` pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, prediction: usize) {
        assert!(
            truth < self.n && prediction < self.n,
            "class index out of range"
        );
        self.counts[truth * self.n + prediction] += 1;
    }

    /// Count at `(truth, prediction)`.
    pub fn get(&self, truth: usize, prediction: usize) -> usize {
        self.counts[truth * self.n + prediction]
    }

    /// Overall accuracy (trace / total).
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let trace: usize = (0..self.n).map(|i| self.get(i, i)).sum();
        trace as f64 / total as f64
    }

    /// Per-class recall (correct / truth-count), `None` for unseen classes.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: usize = (0..self.n).map(|c| self.get(class, c)).sum();
        if row == 0 {
            None
        } else {
            Some(self.get(class, class) as f64 / row as f64)
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.n
    }
}

/// Prediction confidence: the softmax probability assigned to the chosen
/// class. The paper's Fig. 7 uses this to show deeper DONNs are more
/// noise-robust.
pub fn confidence(scores: &[f64]) -> f64 {
    let s = crate::loss::softmax(scores);
    s[argmax(&s)]
}

/// Intersection-over-union for binary masks thresholded at `0.5`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn binary_iou(prediction: &[f64], target: &[f64]) -> f64 {
    assert_eq!(prediction.len(), target.len(), "mask length mismatch");
    let mut inter = 0usize;
    let mut union = 0usize;
    for (&p, &t) in prediction.iter().zip(target) {
        let p = p >= 0.5;
        let t = t >= 0.5;
        if p && t {
            inter += 1;
        }
        if p || t {
            union += 1;
        }
    }
    if union == 0 {
        1.0 // both empty: perfect agreement
    } else {
        inter as f64 / union as f64
    }
}

/// Dice coefficient (F1 over pixels) for binary masks thresholded at `0.5`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dice(prediction: &[f64], target: &[f64]) -> f64 {
    assert_eq!(prediction.len(), target.len(), "mask length mismatch");
    let mut inter = 0usize;
    let mut p_count = 0usize;
    let mut t_count = 0usize;
    for (&p, &t) in prediction.iter().zip(target) {
        let p = p >= 0.5;
        let t = t >= 0.5;
        if p && t {
            inter += 1;
        }
        p_count += p as usize;
        t_count += t as usize;
    }
    if p_count + t_count == 0 {
        1.0
    } else {
        2.0 * inter as f64 / (p_count + t_count) as f64
    }
}

/// Pearson correlation between two equal-length series — the paper's
/// measure of simulation/experiment agreement (Fig. 6).
///
/// # Panics
///
/// Panics if lengths differ or fewer than two samples are given.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    assert!(a.len() >= 2, "need at least two samples");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_of_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn top_k_widens_acceptance() {
        let scores = [0.1, 0.5, 0.3, 0.05, 0.05];
        assert!(top_k_correct(&scores, 1, 1));
        assert!(!top_k_correct(&scores, 2, 1));
        assert!(top_k_correct(&scores, 2, 2));
        assert!(top_k_correct(&scores, 0, 3));
        assert!(!top_k_correct(&scores, 3, 3));
    }

    #[test]
    fn accuracy_accumulates() {
        let mut acc = Accuracy::new();
        assert_eq!(acc.value(), 0.0);
        for i in 0..10 {
            let mut scores = vec![0.0; 3];
            scores[i % 3] = 1.0;
            acc.update(&scores, 0);
        }
        assert_eq!(acc.count(), 10);
        assert!((acc.value() - 0.4).abs() < 1e-12); // i%3==0 for 0,3,6,9
    }

    #[test]
    fn confusion_matrix_bookkeeping() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 2);
        assert_eq!(cm.get(0, 1), 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert!((cm.recall(0).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(cm.recall(1), Some(1.0));
    }

    #[test]
    fn iou_and_dice_bounds() {
        let p = [1.0, 1.0, 0.0, 0.0];
        let t = [1.0, 0.0, 1.0, 0.0];
        assert!((binary_iou(&p, &t) - 1.0 / 3.0).abs() < 1e-12);
        assert!((dice(&p, &t) - 0.5).abs() < 1e-12);
        assert_eq!(binary_iou(&p, &p), 1.0);
        assert_eq!(dice(&[0.0; 4], &[0.0; 4]), 1.0);
    }

    #[test]
    fn pearson_of_identical_series_is_one() {
        let a = [1.0, 2.0, 5.0, -1.0];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-12);
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_increases_with_margin() {
        assert!(confidence(&[10.0, 0.0]) > confidence(&[1.0, 0.0]));
    }
}
