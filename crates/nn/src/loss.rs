//! Loss functions in the paper's training pipeline.
//!
//! The DONN prediction head is: detector-region intensities `I` →
//! `Softmax(I)` → MSE against the one-hot label (paper §2.1:
//! `L = ‖Softmax(I) − t‖²`). Cross-entropy is provided for the
//! conventional-NN baselines of Table 4.

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// `L = ‖softmax(logits) − target‖²` and its gradient w.r.t. `logits`.
///
/// This is the paper's DONN loss: the detector intensities play the role of
/// logits and the target is a one-hot label vector.
///
/// # Panics
///
/// Panics if lengths differ.
///
/// # Examples
///
/// ```
/// use lr_nn::loss::softmax_mse;
/// let (loss, grad) = softmax_mse(&[5.0, 0.0, 0.0], &[1.0, 0.0, 0.0]);
/// assert!(loss < 0.01);
/// assert_eq!(grad.len(), 3);
/// ```
pub fn softmax_mse(logits: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    let mut grad = Vec::with_capacity(logits.len());
    let loss = softmax_mse_into(logits, target, &mut grad);
    (loss, grad)
}

/// [`softmax_mse`] writing the gradient into a caller-owned buffer:
/// allocation-free once `grad`'s capacity covers the class count (the
/// batched-training and serving hot paths).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn softmax_mse_into(logits: &[f64], target: &[f64], grad: &mut Vec<f64>) -> f64 {
    assert_eq!(logits.len(), target.len(), "logits/target length mismatch");
    // Stable softmax computed in place in the gradient buffer.
    grad.clear();
    grad.extend_from_slice(logits);
    let max = grad.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for g in grad.iter_mut() {
        *g = (*g - max).exp();
        sum += *g;
    }
    for g in grad.iter_mut() {
        *g /= sum;
    }
    let loss: f64 = grad
        .iter()
        .zip(target)
        .map(|(&si, &ti)| (si - ti).powi(2))
        .sum();
    // dL/ds_i = 2(s_i - t_i); ds_i/dI_k = s_i(δ_ik - s_k)
    // dL/dI_k = 2·s_k·[ (s_k - t_k) - Σ_i (s_i - t_i)·s_i ]
    let dot: f64 = grad
        .iter()
        .zip(target)
        .map(|(&si, &ti)| (si - ti) * si)
        .sum();
    for (g, &tk) in grad.iter_mut().zip(target) {
        let sk = *g;
        *g = 2.0 * sk * ((sk - tk) - dot);
    }
    loss
}

/// Softmax cross-entropy `L = −Σ t·log s` and its gradient `s − t`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn softmax_cross_entropy(logits: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(logits.len(), target.len(), "logits/target length mismatch");
    let s = softmax(logits);
    let loss: f64 = s
        .iter()
        .zip(target)
        .map(|(&si, &ti)| {
            if ti > 0.0 {
                -ti * si.max(1e-300).ln()
            } else {
                0.0
            }
        })
        .sum();
    let grad = s.iter().zip(target).map(|(&si, &ti)| si - ti).collect();
    (loss, grad)
}

/// Plain mean squared error over raw values (used by the segmentation DONN,
/// which regresses an intensity image against a mask): `L = mean((x−t)²)`.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn mse(values: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(values.len(), target.len(), "values/target length mismatch");
    assert!(!values.is_empty(), "mse of empty slices is undefined");
    let n = values.len() as f64;
    let loss: f64 = values
        .iter()
        .zip(target)
        .map(|(&v, &t)| (v - t).powi(2))
        .sum::<f64>()
        / n;
    let grad = values
        .iter()
        .zip(target)
        .map(|(&v, &t)| 2.0 * (v - t) / n)
        .collect();
    (loss, grad)
}

/// One-hot encodes `class` into a vector of length `num_classes`.
///
/// # Panics
///
/// Panics if `class >= num_classes`.
pub fn one_hot(class: usize, num_classes: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(num_classes);
    one_hot_into(class, num_classes, &mut v);
    v
}

/// [`one_hot`] writing into a caller-owned buffer (allocation-free once the
/// buffer's capacity covers `num_classes`).
///
/// # Panics
///
/// Panics if `class >= num_classes`.
pub fn one_hot_into(class: usize, num_classes: usize, out: &mut Vec<f64>) {
    assert!(class < num_classes, "class index out of range");
    out.clear();
    out.resize(num_classes, 0.0);
    out[class] = 1.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
        let h = 1e-6;
        (0..x.len())
            .map(|i| {
                let mut xp = x.to_vec();
                let mut xm = x.to_vec();
                xp[i] += h;
                xm[i] -= h;
                (f(&xp) - f(&xm)) / (2.0 * h)
            })
            .collect()
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let s = softmax(&[1000.0, 1000.0, 999.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s.iter().all(|&p| p.is_finite() && p >= 0.0));
        assert!(s[0] > s[2]);
    }

    #[test]
    fn softmax_mse_gradient_matches_finite_difference() {
        let logits = [0.3, -1.2, 2.0, 0.0];
        let target = one_hot(2, 4);
        let (_, grad) = softmax_mse(&logits, &target);
        let fd = finite_diff(|x| softmax_mse(x, &target).0, &logits);
        for (g, f) in grad.iter().zip(&fd) {
            assert!((g - f).abs() < 1e-6, "grad {g} vs fd {f}");
        }
    }

    #[test]
    fn softmax_cross_entropy_gradient_matches_finite_difference() {
        let logits = [0.5, 1.5, -0.5];
        let target = one_hot(0, 3);
        let (_, grad) = softmax_cross_entropy(&logits, &target);
        let fd = finite_diff(|x| softmax_cross_entropy(x, &target).0, &logits);
        for (g, f) in grad.iter().zip(&fd) {
            assert!((g - f).abs() < 1e-6, "grad {g} vs fd {f}");
        }
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let values = [0.1, 0.9, 0.4];
        let target = [0.0, 1.0, 1.0];
        let (_, grad) = mse(&values, &target);
        let fd = finite_diff(|x| mse(x, &target).0, &values);
        for (g, f) in grad.iter().zip(&fd) {
            assert!((g - f).abs() < 1e-6);
        }
    }

    #[test]
    fn losses_are_zero_at_optimum() {
        let t = one_hot(1, 3);
        // Perfect (saturated) softmax prediction.
        let (loss, _) = softmax_mse(&[-100.0, 100.0, -100.0], &t);
        assert!(loss < 1e-12);
        let (loss, grad) = mse(&[0.0, 1.0], &[0.0, 1.0]);
        assert_eq!(loss, 0.0);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn one_hot_layout() {
        assert_eq!(one_hot(2, 4), vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_bounds_checked() {
        let _ = one_hot(4, 4);
    }

    #[test]
    fn loss_decreases_toward_target() {
        let t = one_hot(0, 3);
        let (l1, _) = softmax_mse(&[0.0, 0.0, 0.0], &t);
        let (l2, _) = softmax_mse(&[2.0, 0.0, 0.0], &t);
        assert!(l2 < l1, "moving logit toward target must reduce loss");
    }
}
