//! First-order optimizers.
//!
//! DONN training in the paper uses Adam (§5.1, lr = 0.5); SGD with momentum
//! is provided for the baselines and ablations. Optimizers operate on flat
//! `f64` parameter slices — phases, Gumbel logits, and the γ regularization
//! factor are all real-valued parameters.

use std::collections::HashMap;

/// A first-order optimizer over named flat parameter tensors.
///
/// Implementations hold per-tensor state (moments) keyed by the caller's
/// `key`, so one optimizer instance can serve a whole model.
pub trait Optimizer {
    /// Applies one update step: `params ← params − update(grads)`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()`.
    fn step(&mut self, key: usize, params: &mut [f64], grads: &[f64]);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (used by schedulers).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional momentum.
///
/// # Examples
///
/// ```
/// use lr_nn::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.1).with_momentum(0.9);
/// let mut p = vec![1.0];
/// opt.step(0, &mut p, &[2.0]);
/// assert!((p[0] - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: HashMap<usize, Vec<f64>>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Enables classical momentum.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, key: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        let v = self
            .velocity
            .entry(key)
            .or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(
            v.len(),
            params.len(),
            "parameter tensor changed size under key"
        );
        for ((p, &g), vi) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vi = self.momentum * *vi + g;
            *p -= self.lr * *vi;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2014) — the optimizer used for all DONN training in
/// the paper.
///
/// # Examples
///
/// ```
/// use lr_nn::{Adam, Optimizer};
/// let mut opt = Adam::new(0.5);
/// let mut phase = vec![0.0; 4];
/// opt.step(0, &mut phase, &[1.0, -1.0, 0.5, 0.0]);
/// assert!(phase[0] < 0.0 && phase[1] > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    state: HashMap<usize, AdamState>,
}

#[derive(Debug, Clone)]
struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam with the default betas `(0.9, 0.999)` and `eps = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }

    /// Overrides the exponential decay rates.
    ///
    /// # Panics
    ///
    /// Panics if either beta is outside `[0, 1)`.
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas must be in [0,1)"
        );
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, key: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        let st = self.state.entry(key).or_insert_with(|| AdamState {
            m: vec![0.0; params.len()],
            v: vec![0.0; params.len()],
            t: 0,
        });
        assert_eq!(
            st.m.len(),
            params.len(),
            "parameter tensor changed size under key"
        );
        st.t += 1;
        let b1t = 1.0 - self.beta1.powi(st.t as i32);
        let b2t = 1.0 - self.beta2.powi(st.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            st.m[i] = self.beta1 * st.m[i] + (1.0 - self.beta1) * g;
            st.v[i] = self.beta2 * st.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = st.m[i] / b1t;
            let v_hat = st.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Step-decay learning-rate schedule: multiplies the rate by `gamma` every
/// `step_epochs` epochs.
#[derive(Debug, Clone)]
pub struct StepDecay {
    initial_lr: f64,
    gamma: f64,
    step_epochs: usize,
}

impl StepDecay {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not in `(0, 1]` or `step_epochs == 0`.
    pub fn new(initial_lr: f64, gamma: f64, step_epochs: usize) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1]");
        assert!(step_epochs > 0, "step_epochs must be nonzero");
        StepDecay {
            initial_lr,
            gamma,
            step_epochs,
        }
    }

    /// Learning rate at `epoch` (0-based).
    pub fn at(&self, epoch: usize) -> f64 {
        self.initial_lr * self.gamma.powi((epoch / self.step_epochs) as i32)
    }

    /// Applies the schedule to an optimizer for the given epoch.
    pub fn apply(&self, opt: &mut dyn Optimizer, epoch: usize) {
        opt.set_learning_rate(self.at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_converges_on_quadratic() {
        // minimize f(x) = (x-3)^2
        let mut opt = Sgd::new(0.1);
        let mut x = vec![0.0];
        for _ in 0..200 {
            let g = 2.0 * (x[0] - 3.0);
            opt.step(0, &mut x, &[g]);
        }
        assert!((x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f64, iters: usize| {
            let mut opt = Sgd::new(0.01);
            if momentum > 0.0 {
                opt = opt.with_momentum(momentum);
            }
            let mut x = vec![10.0];
            for _ in 0..iters {
                let g = 2.0 * x[0];
                opt.step(0, &mut x, &[g]);
            }
            x[0].abs()
        };
        assert!(
            run(0.9, 50) < run(0.0, 50),
            "momentum should make faster progress"
        );
    }

    #[test]
    fn adam_converges_on_rosenbrock_1d_slice() {
        // minimize f(x, y) = (1-x)^2 + 100(y - x^2)^2
        let mut opt = Adam::new(0.02);
        let mut p = vec![-1.0, 1.0];
        for _ in 0..8000 {
            let (x, y) = (p[0], p[1]);
            let gx = -2.0 * (1.0 - x) - 400.0 * x * (y - x * x);
            let gy = 200.0 * (y - x * x);
            opt.step(0, &mut p, &[gx, gy]);
        }
        assert!(
            (p[0] - 1.0).abs() < 0.05 && (p[1] - 1.0).abs() < 0.05,
            "got {p:?}"
        );
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // On the very first step Adam moves by ~lr regardless of grad scale.
        let mut opt = Adam::new(0.1);
        let mut a = vec![0.0];
        opt.step(0, &mut a, &[1e-4]);
        assert!(
            (a[0] + 0.1).abs() < 1e-3,
            "first Adam step should be ≈ -lr, got {}",
            a[0]
        );
    }

    #[test]
    fn separate_keys_have_separate_state() {
        let mut opt = Adam::new(0.1);
        let mut a = vec![0.0];
        let mut b = vec![0.0];
        for _ in 0..10 {
            opt.step(0, &mut a, &[1.0]);
        }
        opt.step(1, &mut b, &[1.0]);
        // b's first step is bias-corrected like a fresh optimizer.
        assert!((b[0] + 0.1).abs() < 1e-6);
        assert!(a[0] < b[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn step_validates_lengths() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![0.0; 3];
        opt.step(0, &mut p, &[1.0]);
    }

    #[test]
    fn step_decay_halves() {
        let sched = StepDecay::new(0.5, 0.5, 10);
        assert_eq!(sched.at(0), 0.5);
        assert_eq!(sched.at(9), 0.5);
        assert_eq!(sched.at(10), 0.25);
        assert_eq!(sched.at(25), 0.125);
        let mut opt = Sgd::new(0.5);
        sched.apply(&mut opt, 20);
        assert_eq!(opt.learning_rate(), 0.125);
    }
}
