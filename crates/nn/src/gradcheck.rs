//! Finite-difference gradient verification.
//!
//! The Rust ecosystem has no mature complex autodiff, so every backward pass
//! in this framework is hand-derived (Wirtinger calculus). These utilities
//! are the safety net: they compare analytic parameter gradients against
//! central finite differences of the loss.

/// Result of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f64,
    /// Largest relative difference (normalized by magnitude max).
    pub max_rel_err: f64,
    /// Index of the worst-offending parameter.
    pub worst_index: usize,
    /// Analytic gradient at the worst index.
    pub analytic_at_worst: f64,
    /// Numeric gradient at the worst index.
    pub numeric_at_worst: f64,
}

impl GradCheckReport {
    /// True if the analytic gradient agrees with finite differences within
    /// `tol` (relative, with an absolute floor of `tol`).
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_err < tol || self.max_abs_err < tol
    }
}

/// Checks an analytic gradient against central finite differences.
///
/// `loss_fn` must evaluate the loss at a given parameter vector; `params`
/// is the linearization point and `analytic` the gradient to verify. `h`
/// is the probe step (1e-5 .. 1e-6 is typical for f64).
///
/// # Panics
///
/// Panics if `params.len() != analytic.len()` or `params` is empty.
pub fn check_gradient(
    mut loss_fn: impl FnMut(&[f64]) -> f64,
    params: &[f64],
    analytic: &[f64],
    h: f64,
) -> GradCheckReport {
    assert_eq!(
        params.len(),
        analytic.len(),
        "params/gradient length mismatch"
    );
    assert!(!params.is_empty(), "cannot check empty parameter vector");
    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
        worst_index: 0,
        analytic_at_worst: analytic[0],
        numeric_at_worst: 0.0,
    };
    let mut probe = params.to_vec();
    for i in 0..params.len() {
        probe[i] = params[i] + h;
        let lp = loss_fn(&probe);
        probe[i] = params[i] - h;
        let lm = loss_fn(&probe);
        probe[i] = params[i];
        let numeric = (lp - lm) / (2.0 * h);
        let abs_err = (analytic[i] - numeric).abs();
        let scale = analytic[i].abs().max(numeric.abs()).max(1e-8);
        let rel_err = abs_err / scale;
        if rel_err > report.max_rel_err {
            report.max_rel_err = rel_err;
            report.worst_index = i;
            report.analytic_at_worst = analytic[i];
            report.numeric_at_worst = numeric;
        }
        report.max_abs_err = report.max_abs_err.max(abs_err);
    }
    report
}

/// Checks a random subset of `count` parameter indices — full checks are
/// `O(params²)` in loss evaluations and too slow for field-sized tensors.
///
/// Indices are chosen deterministically by striding, so failures reproduce.
///
/// # Panics
///
/// Panics if `params.len() != analytic.len()`, or either is empty, or
/// `count == 0`.
pub fn check_gradient_sampled(
    mut loss_fn: impl FnMut(&[f64]) -> f64,
    params: &[f64],
    analytic: &[f64],
    h: f64,
    count: usize,
) -> GradCheckReport {
    assert_eq!(
        params.len(),
        analytic.len(),
        "params/gradient length mismatch"
    );
    assert!(!params.is_empty() && count > 0, "nothing to check");
    let stride = (params.len() / count.min(params.len())).max(1);
    let indices: Vec<usize> = (0..params.len()).step_by(stride).take(count).collect();
    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
        worst_index: indices[0],
        analytic_at_worst: analytic[indices[0]],
        numeric_at_worst: 0.0,
    };
    let mut probe = params.to_vec();
    for &i in &indices {
        probe[i] = params[i] + h;
        let lp = loss_fn(&probe);
        probe[i] = params[i] - h;
        let lm = loss_fn(&probe);
        probe[i] = params[i];
        let numeric = (lp - lm) / (2.0 * h);
        let abs_err = (analytic[i] - numeric).abs();
        let scale = analytic[i].abs().max(numeric.abs()).max(1e-8);
        let rel_err = abs_err / scale;
        if rel_err > report.max_rel_err {
            report.max_rel_err = rel_err;
            report.worst_index = i;
            report.analytic_at_worst = analytic[i];
            report.numeric_at_worst = numeric;
        }
        report.max_abs_err = report.max_abs_err.max(abs_err);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_passes() {
        // f(x) = Σ xᵢ², ∇f = 2x
        let x = [1.0, -2.0, 0.5];
        let g = [2.0, -4.0, 1.0];
        let report = check_gradient(|p| p.iter().map(|v| v * v).sum(), &x, &g, 1e-6);
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn wrong_gradient_fails() {
        let x = [1.0, -2.0];
        let g = [2.0, 4.0]; // sign error in second component
        let report = check_gradient(|p| p.iter().map(|v| v * v).sum(), &x, &g, 1e-6);
        assert!(!report.passes(1e-3));
        assert_eq!(report.worst_index, 1);
    }

    #[test]
    fn sampled_check_covers_strided_indices() {
        let n = 100;
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
        let g: Vec<f64> = x.iter().map(|v| (2.0 * v).cos()).collect();
        // f = Σ sin(2x)/2 so df/dx_i = cos(2x_i)
        let report = check_gradient_sampled(
            |p| p.iter().map(|v| (2.0 * v).sin() / 2.0).sum(),
            &x,
            &g,
            1e-6,
            10,
        );
        assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn transcendental_gradient_passes() {
        // f(x) = sin(x0)·exp(x1)
        let x: [f64; 2] = [0.7, -0.3];
        let g = [x[0].cos() * x[1].exp(), x[0].sin() * x[1].exp()];
        let report = check_gradient(|p| p[0].sin() * p[1].exp(), &x, &g, 1e-6);
        assert!(report.passes(1e-6), "{report:?}");
    }
}
