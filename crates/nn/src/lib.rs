//! # lr-nn
//!
//! Training substrate for LightRidge-RS: optimizers (Adam/SGD as used in the
//! paper §5.1), the paper's `Softmax+MSE` DONN loss with hand-derived
//! gradients, evaluation metrics, and finite-difference gradient-check
//! utilities that stand in for an autodiff engine's test oracle.
//!
//! The optical layers themselves live in the `lightridge` crate; this crate
//! is deliberately free of optics so the conventional-NN baseline
//! (`lr-convnn`) can share it.
//!
//! ## Example
//!
//! ```
//! use lr_nn::{Adam, Optimizer, loss::softmax_mse, loss::one_hot};
//!
//! // Fit 3 logits to a one-hot target with the paper's loss.
//! let mut logits = vec![0.0; 3];
//! let target = one_hot(1, 3);
//! let mut opt = Adam::new(0.1);
//! for _ in 0..200 {
//!     let (_, grad) = softmax_mse(&logits, &target);
//!     opt.step(0, &mut logits, &grad);
//! }
//! assert_eq!(lr_nn::metrics::argmax(&logits), 1);
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
pub mod loss;
pub mod metrics;
mod optim;

pub use optim::{Adam, Optimizer, Sgd, StepDecay};
