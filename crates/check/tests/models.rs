//! Loom model tests for the workspace's five load-bearing lock-free
//! algorithms (`docs/CONCURRENCY.md` catalogues the invariants).
//!
//! Every test builds its state *inside* the model closure, explores the
//! schedule space exhaustively at **preemption bound 2** (the
//! documented bound for the whole suite; `LOOM_MAX_PREEMPTIONS` can
//! raise it, never lower it below 2), and asserts `report.complete` so
//! a fallback to random walks can never silently stand in for the
//! exhaustiveness claim.
//!
//! The suite only exists under `RUSTFLAGS="--cfg loom"`; the CI `check`
//! lane runs it with `cargo test -p lr-check --release`.

#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use lr_obs::{TraceEvent, TraceRing};
use lr_serve::drain::DrainFence;
use lr_serve::LatencyHistogram;
use lr_tensor::PinnedCache;

/// A `Builder` at the suite's documented preemption bound (2), which
/// the environment may raise but never lower.
fn builder() -> loom::Builder {
    let mut b = loom::Builder::new();
    b.preemption_bound = b.preemption_bound.max(2);
    b
}

/// A trace event whose payload fields are all derived from the request
/// id, so a torn (mixed-slot) read is detectable field-by-field.
fn ev(request: u64) -> TraceEvent {
    TraceEvent {
        kind: 1,
        outcome: 2,
        shard: 7,
        model: request as u32 * 3,
        request,
        t_start_ns: request * 10,
        t_end_ns: request * 10 + 5,
    }
}

/// Asserts `e` is exactly the event [`ev`] built for its request id —
/// the seqlock must never surface a slot mixing two tickets' payloads.
fn assert_untorn(e: &TraceEvent) {
    let want = ev(e.request);
    assert_eq!(
        (
            e.kind,
            e.outcome,
            e.shard,
            e.model,
            e.t_start_ns,
            e.t_end_ns
        ),
        (
            want.kind,
            want.outcome,
            want.shard,
            want.model,
            want.t_start_ns,
            want.t_end_ns
        ),
        "torn trace event: payload words from different tickets"
    );
}

/// Algorithm 1, schedule A — `TraceRing` record vs. drain with
/// guaranteed wraparound.
///
/// The ring holds 2 slots (the loom-mode minimum capacity). The main
/// thread pre-fills both slots sequentially, then drains concurrently
/// with a writer recording a third event — so the drain races a seqlock
/// write that *reuses* slot 0. Invariants, under every interleaving:
///
/// * conservation: `drained + dropped == recorded` once quiescent;
/// * no torn events: every drained payload decodes to exactly one
///   recorded event;
/// * order: request ids strictly increase across sequential drains.
#[test]
fn trace_ring_drain_races_wrapping_writer() {
    let report = builder().check(|| {
        let ring = Arc::new(TraceRing::new(2));
        ring.record(&ev(1));
        ring.record(&ev(2));

        let writer = {
            let ring = Arc::clone(&ring);
            loom::thread::spawn(move || ring.record(&ev(3)))
        };

        let mut out = Vec::new();
        let first = ring.drain_into(&mut out);
        writer.join().unwrap();
        let second = ring.drain_into(&mut out);

        let drained = first.drained + second.drained;
        let dropped = first.dropped + second.dropped;
        assert_eq!(
            drained + dropped,
            ring.recorded(),
            "ring lost or invented a ticket"
        );
        assert_eq!(ring.recorded(), 3);
        for e in &out {
            assert_untorn(e);
        }
        for pair in out.windows(2) {
            assert!(
                pair[0].request < pair[1].request,
                "drain surfaced tickets out of record order"
            );
        }
    });
    eprintln!("explored {} schedules exhaustively", report.iterations);
    assert!(report.complete, "state space must be exhausted at bound 2");
}

/// Algorithm 1, schedule B — two concurrent `TraceRing` writers.
///
/// With a 2-slot ring and one record each, the two writers race the
/// head `fetch_add` and the per-slot seqlock but can never overrun.
/// After both join, a drain must surface **both** events intact:
/// `drained == 2, dropped == 0` proves ticket allocation never loses an
/// update (the classic load+store race a non-RMW head would have).
#[test]
fn trace_ring_concurrent_writers_never_lose_a_ticket() {
    let report = builder().check(|| {
        let ring = Arc::new(TraceRing::new(2));
        let handles: Vec<_> = [1u64, 2]
            .into_iter()
            .map(|r| {
                let ring = Arc::clone(&ring);
                loom::thread::spawn(move || ring.record(&ev(r)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let mut out = Vec::new();
        let stats = ring.drain_into(&mut out);
        assert_eq!((stats.drained, stats.dropped), (2, 0));
        for e in &out {
            assert_untorn(e);
        }
        let mut requests: Vec<u64> = out.iter().map(|e| e.request).collect();
        requests.sort_unstable();
        assert_eq!(requests, [1, 2], "a writer's ticket vanished");
    });
    eprintln!("explored {} schedules exhaustively", report.iterations);
    assert!(report.complete, "state space must be exhausted at bound 2");
}

/// Algorithm 2 — `ArcSwap` registry-flip vs. reader-pin.
///
/// A reader pins a snapshot (`load_full`) while a writer flips the
/// current pointer. The pinned snapshot must stay fully intact and
/// readable after the flip (the registry contract: an admitted request
/// completes against the epoch it pinned, never a half-built or freed
/// one), and a load after the flip joins must observe the new value.
#[test]
fn arc_swap_pin_survives_flip() {
    let report = builder().check(|| {
        let slot = Arc::new(arc_swap::ArcSwap::from_pointee((0u32, 0u32)));

        let flipper = {
            let slot = Arc::clone(&slot);
            loom::thread::spawn(move || slot.store(Arc::new((1, 1))))
        };

        let pin = slot.load_full();
        assert_eq!(pin.0, pin.1, "pinned a half-built snapshot");
        flipper.join().unwrap();

        // The flip must not have disturbed the pinned epoch…
        assert!(*pin == (0, 0) || *pin == (1, 1));
        assert_eq!(pin.0, pin.1);
        // …and post-join loads see the flipped value.
        assert_eq!(*slot.load_full(), (1, 1));
    });
    eprintln!("explored {} schedules exhaustively", report.iterations);
    assert!(report.complete, "state space must be exhausted at bound 2");
}

/// Algorithm 2, schedule B — racing `compare_and_swap` publishers.
///
/// Two threads CAS from the same observed snapshot; exactly one may
/// win, the loser's return value must be the winner's `Arc` (so it can
/// retry against reality), and the slot must end on the winner.
#[test]
fn arc_swap_compare_and_swap_has_one_winner() {
    let report = builder().check(|| {
        let slot = Arc::new(arc_swap::ArcSwap::from_pointee(0u32));
        let init = slot.load_full();
        let a = Arc::new(1u32);
        let b = Arc::new(2u32);

        let racer = {
            let slot = Arc::clone(&slot);
            let init = Arc::clone(&init);
            let a = Arc::clone(&a);
            loom::thread::spawn(move || slot.compare_and_swap(&init, a))
        };
        let main_prev = slot.compare_and_swap(&init, Arc::clone(&b));
        let racer_prev = racer.join().unwrap();

        let main_won = Arc::ptr_eq(&main_prev, &init);
        let racer_won = Arc::ptr_eq(&racer_prev, &init);
        assert!(
            main_won ^ racer_won,
            "compare_and_swap must have exactly one winner"
        );
        let end = slot.load_full();
        if main_won {
            assert!(Arc::ptr_eq(&end, &b));
            assert!(Arc::ptr_eq(&racer_prev, &b), "loser saw a stale winner");
        } else {
            assert!(Arc::ptr_eq(&end, &a));
            assert!(Arc::ptr_eq(&main_prev, &a), "loser saw a stale winner");
        }
    });
    eprintln!("explored {} schedules exhaustively", report.iterations);
    assert!(report.complete, "state space must be exhausted at bound 2");
}

/// Algorithm 3 — the PR-4 drain fence (`lr_serve::drain::DrainFence`).
///
/// One shard, one model, in-flight cap 1. Concurrently: two submitters
/// race admission (main thread + one spawned), and a dispatcher thread
/// advances the shard fence. Invariants, under every interleaving:
///
/// * the cap bounds *successful* concurrent admissions — the serving
///   gauge never exceeds 1 even though `try_acquire`'s optimistic
///   `fetch_add` transiently overshoots;
/// * at least one submitter is admitted (the first `fetch_add` always
///   observes 0);
/// * `fetch_max` keeps the fence monotone: it ends at the highest
///   epoch and a stale candidate afterwards reports no rise;
/// * quiescence: after every release the in-flight count is exactly 0
///   and `passed` opens the reclaim gate — a missing undo on the
///   rejected path, or a missed/double release, fails here.
#[test]
fn drain_fence_cap_accounting_and_monotone_fences() {
    let report = builder().check(|| {
        let fence = Arc::new(DrainFence::new(1, 1));
        let serving = Arc::new(AtomicUsize::new(0));
        let admitted = Arc::new(AtomicUsize::new(0));

        let submit =
            |fence: &Arc<DrainFence>, serving: &Arc<AtomicUsize>, admitted: &Arc<AtomicUsize>| {
                let (fence, serving, admitted) =
                    (Arc::clone(fence), Arc::clone(serving), Arc::clone(admitted));
                move || {
                    if fence.try_acquire(0, 1) {
                        admitted.fetch_add(1, Ordering::SeqCst);
                        let live = serving.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(live, 0, "cap=1 admitted two concurrent requests");
                        serving.fetch_sub(1, Ordering::SeqCst);
                        fence.release(0);
                    }
                }
            };

        let racer = loom::thread::spawn(submit(&fence, &serving, &admitted));
        let dispatcher = {
            let fence = Arc::clone(&fence);
            loom::thread::spawn(move || assert!(fence.advance(0, 2), "2 always tops 0 or 1"))
        };
        fence.advance(0, 1);
        submit(&fence, &serving, &admitted)();

        racer.join().unwrap();
        dispatcher.join().unwrap();

        assert!(admitted.load(Ordering::SeqCst) >= 1, "someone must get in");
        assert_eq!(fence.shard_fence(0), 2);
        assert!(
            !fence.advance(0, 1),
            "stale candidate must not report a rise"
        );
        assert_eq!(fence.inflight(0), 0, "in-flight accounting drifted");
        assert!(fence.passed(0, 2), "quiescent reclaim gate must open");
        assert!(!fence.passed(0, 3), "gate open past the fence watermark");
    });
    eprintln!("explored {} schedules exhaustively", report.iterations);
    assert!(report.complete, "state space must be exhausted at bound 2");
}

/// Algorithm 4 — `PinnedCache` refcount eviction under a racing pin
/// holder.
///
/// The cache (soft cap 2, behind a loom `Mutex` exactly as the plan
/// cache holds it) contains entry 1, whose `Arc` a reader thread pins.
/// The main thread inserts entries 2 and 3, forcing an eviction scan
/// each time. The reader publishes a flag *before* dropping its pin, so
/// whenever the flag still reads 0 after the inserts the pin was
/// provably live through both scans — and entry 1 must have survived
/// with the orphan (entry 2) evicted instead. The pinned `Arc` stays
/// valid regardless of eviction, and once the pin is dropped a sweep
/// reaps everything.
#[test]
fn pinned_cache_never_evicts_a_live_pin() {
    let report = builder().check(|| {
        let cache = Arc::new(Mutex::new(PinnedCache::new()));
        let pin = {
            let mut c = cache.lock().unwrap();
            c.insert(1u32, Arc::new(11u32), 2);
            c.hit(&1).expect("just inserted")
        };
        let pin_dropped = Arc::new(AtomicUsize::new(0));

        let reader = {
            let pin_dropped = Arc::clone(&pin_dropped);
            loom::thread::spawn(move || {
                assert_eq!(*pin, 11, "pinned value must outlive any eviction");
                pin_dropped.store(1, Ordering::SeqCst);
                drop(pin);
            })
        };

        {
            let mut c = cache.lock().unwrap();
            c.insert(2, Arc::new(22), 2);
            c.insert(3, Arc::new(33), 2);
            assert_eq!(c.len(), 2, "soft cap violated with an orphan on hand");
            assert!(c.hit(&3).is_some(), "the fresh insert itself went missing");
            if pin_dropped.load(Ordering::SeqCst) == 0 {
                // The pin is still live: entry 1 was pinned through both
                // eviction scans, so the stalest *orphan* (2) went instead.
                assert!(c.hit(&1).is_some(), "evicted a pinned entry");
                assert!(c.hit(&2).is_none(), "orphan survived over the cap");
            }
        }

        reader.join().unwrap();
        let mut c = cache.lock().unwrap();
        c.sweep_orphans();
        assert_eq!(c.len(), 0, "sweep must reap everything once unpinned");
    });
    eprintln!("explored {} schedules exhaustively", report.iterations);
    assert!(report.complete, "state space must be exhausted at bound 2");
}

/// Algorithm 5 — `LatencyHistogram::quantile_ns` vs. concurrent
/// `record`.
///
/// A writer records 3 ns then 5 ns while the main thread takes a
/// mid-flight quantile. The snapshot discipline (bucket counts copied
/// once, rank derived from that same copy) means the scan must always
/// land on a *recorded* value or 0 — never the `unreachable!` the
/// pre-snapshot code could hit, and never an invented bucket. Post-join
/// the histogram must be exact: count, extreme quantiles, max.
#[test]
fn histogram_quantile_consistent_under_concurrent_records() {
    let report = builder().check(|| {
        let hist = Arc::new(LatencyHistogram::new());
        let writer = {
            let hist = Arc::clone(&hist);
            loom::thread::spawn(move || {
                hist.record(3);
                hist.record(5);
            })
        };

        let mid = hist.quantile_ns(0.5);
        assert!(
            mid == 0 || mid == 3 || mid == 5,
            "mid-flight quantile invented a value: {mid}"
        );

        writer.join().unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.overflow(), 0);
        assert_eq!(hist.quantile_ns(0.01), 3);
        assert_eq!(hist.quantile_ns(1.0), 5);
        assert_eq!(hist.summary().max_ns, 5);
    });
    eprintln!("explored {} schedules exhaustively", report.iterations);
    assert!(report.complete, "state space must be exhausted at bound 2");
}
