//! `lr-check`: model tests for the workspace's lock-free algorithms.
//!
//! The tests live in `tests/models.rs` and are compiled only under
//! `RUSTFLAGS="--cfg loom"`, which also swaps every checked crate's
//! `sync` facade onto the vendored checker in `vendor/loom`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p lr-check --release
//! ```
//!
//! Each model asserts its algorithm's contract under **exhaustive**
//! interleaving up to a documented preemption bound (≥ 2 everywhere);
//! see `docs/CONCURRENCY.md` for the catalogue of algorithms,
//! invariants, and bounds.

/// True when this build was compiled with `--cfg loom` (the model tests
/// are active). Lets CI assert the lane actually ran the checker rather
/// than silently compiling an empty test binary.
pub fn loom_enabled() -> bool {
    cfg!(loom)
}
