//! # lightridge
//!
//! Rust reproduction of **LightRidge** (ASPLOS 2023/24): an end-to-end agile
//! design framework for diffractive optical neural networks (DONNs).
//!
//! A DONN encodes an input image onto a coherent laser beam, propagates it
//! through a stack of passive diffractive layers whose per-pixel phase
//! modulations are the trained weights, and reads class scores as the light
//! intensity collected in pre-defined detector regions. This crate provides:
//!
//! * [`DiffractiveLayer`] — the raw free-phase layer
//!   (`lr.layers.diffractlayer_raw`) with the paper's γ complex-valued
//!   regularization,
//! * [`CodesignLayer`] — the hardware-aware Gumbel-Softmax layer
//!   (`lr.layers.diffractlayer`) that trains directly over a device's
//!   discrete measured modulation levels,
//! * [`Detector`] / [`PlaneReadout`] — classification and image-to-image
//!   readouts,
//! * [`DonnModel`] / [`DonnBuilder`] — the sequential container & DSL
//!   (`lr.models`),
//! * [`train`] — the Adam + Softmax-MSE training loop with batch
//!   parallelism and Gumbel temperature annealing (`lr.train`),
//! * [`deploy`] — hardware emulation and fabrication export
//!   (`lr.model.to_system`),
//! * [`MultiChannelDonn`] — the RGB multi-channel classifier (paper §5.6.1),
//! * [`SegmentationDonn`] — the all-optical segmentation architecture with
//!   optical skip connection and train-time layer norm (paper §5.6.2),
//! * [`viz`] — ASCII phase/intensity visualization (`lr.layers.view`).
//!
//! ## Quickstart
//!
//! ```
//! use lightridge::{DonnBuilder, Detector, train::{self, TrainConfig}};
//! use lr_optics::{Distance, Grid, PixelPitch, Wavelength};
//!
//! // A 3-layer visible-range DONN, as in the paper's prototype (scaled down).
//! let grid = Grid::square(16, PixelPitch::from_um(36.0));
//! let mut model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
//!     .distance(Distance::from_mm(20.0))
//!     .diffractive_layers(3)
//!     .detector(Detector::grid_layout(16, 16, 2, 4))
//!     .build();
//!
//! // Two-class toy data: light in the top vs bottom half.
//! let mut data = Vec::new();
//! for i in 0..16 {
//!     let label = i % 2;
//!     let mut img = vec![0.0; 16 * 16];
//!     for r in 0..8 {
//!         for c in 4..12 {
//!             img[(r + label * 8) * 16 + c] = 1.0;
//!         }
//!     }
//!     data.push((img, label));
//! }
//! let config = TrainConfig { epochs: 4, batch_size: 8, learning_rate: 0.1, ..Default::default() };
//! train::train(&mut model, &data, &config);
//! assert!(train::evaluate(&model, &data) > 0.5);
//! ```

#![warn(missing_docs)]

pub mod deploy;
pub mod ensemble;
pub mod layers;
mod model;
pub mod multichannel;
pub mod multitask;
pub mod segmentation;
pub mod train;
pub mod viz;

pub use ensemble::DonnEnsemble;
pub use layers::codesign::{CodesignCache, CodesignLayer, CodesignMode};
pub use layers::detector::{Detector, DetectorRegion, PlaneReadout};
pub use layers::diffractive::{DiffractiveBatchCache, DiffractiveCache, DiffractiveLayer};
pub use layers::nonlinear::{NonlinearBatchCache, NonlinearCache, SaturableAbsorber};
pub use model::{
    BatchForward, BatchLayerCache, BatchTrace, BatchWorkspace, DonnBuilder, DonnModel, Layer,
    LayerCache, ModelGrads, PropagationWorkspace, Trace,
};
pub use multichannel::MultiChannelDonn;
pub use multitask::{MultiTaskDonn, MultiTaskImage};
pub use segmentation::{SegmentationDonn, SegmentationOptions};
pub use train::{BatchTraceRing, TraceRing};
