//! All-optical image segmentation DONN (paper §5.6.2, Fig. 13).
//!
//! Classification detectors use a tiny fraction of the output plane; the
//! rest of the spatial information is discarded. The paper's segmentation
//! architecture keeps the whole plane as an image-to-image system and adds
//! two innovations:
//!
//! 1. **Optical skip connection** — a beam splitter taps the (less
//!    diffracted) input field around the first half of the stack and
//!    recombines it before the second half, restoring original-image
//!    features the aggressive diffraction has washed out (the ResNet idea,
//!    in optics).
//! 2. **Layer normalization** of the detector-plane intensity — *training
//!    only* — which rescales the arbitrary optical intensity into a
//!    well-conditioned range so MSE gradients don't vanish/explode.
//!
//! The baseline (no skip, no layer norm, raw-intensity MSE as in the
//! Lin/Zhou training recipes) is included for the Fig. 13 comparison.

use crate::layers::detector::PlaneReadout;
use crate::layers::diffractive::{DiffractiveCache, DiffractiveLayer};
use lr_nn::{Adam, Optimizer};
use lr_optics::{Approximation, Distance, FreeSpace, Grid, Wavelength};
use lr_tensor::{parallel, Field};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An image/mask pair: grayscale input and binary target mask, both
/// row-major at the model resolution.
pub type MaskedImage = (Vec<f64>, Vec<f64>);

/// Architectural switches for the Fig. 13 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentationOptions {
    /// Enable the optical skip connection.
    pub skip_connection: bool,
    /// Enable train-time layer normalization (+ sigmoid head).
    pub layer_norm: bool,
}

impl SegmentationOptions {
    /// The paper's proposed architecture: both innovations on.
    pub fn proposed() -> Self {
        SegmentationOptions {
            skip_connection: true,
            layer_norm: true,
        }
    }

    /// The baseline recipe (no skip, no layer norm).
    pub fn baseline() -> Self {
        SegmentationOptions {
            skip_connection: false,
            layer_norm: false,
        }
    }
}

/// A segmentation DONN: `pre` layers → (skip merge) → `post` layers →
/// whole-plane intensity readout.
#[derive(Debug, Clone)]
pub struct SegmentationDonn {
    pre: Vec<DiffractiveLayer>,
    post: Vec<DiffractiveLayer>,
    /// Free-space path of the skip branch (matched to the pre-stack length).
    skip_propagator: FreeSpace,
    final_propagator: FreeSpace,
    options: SegmentationOptions,
    grid: Grid,
}

struct SegTrace {
    pre_caches: Vec<DiffractiveCache>,
    post_caches: Vec<DiffractiveCache>,
    detector_field: Field,
    intensity: Vec<f64>,
    /// LayerNorm internals (mean, inv_std, normalized values) when enabled.
    ln: Option<(f64, f64, Vec<f64>)>,
    prediction: Vec<f64>,
}

impl SegmentationDonn {
    /// Builds a `depth`-layer segmentation DONN; the skip connection taps
    /// after `depth/2` layers (rounded down, at least 1 when enabled).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(
        grid: Grid,
        wavelength: Wavelength,
        distance: Distance,
        approximation: Approximation,
        depth: usize,
        options: SegmentationOptions,
        init_seed: u64,
    ) -> Self {
        assert!(depth > 0, "segmentation DONN needs at least one layer");
        let split = if options.skip_connection {
            (depth / 2).max(1).min(depth)
        } else {
            depth
        };
        let make = |i: usize| {
            let mut l = DiffractiveLayer::new(grid, wavelength, distance, approximation, 1.0);
            l.randomize_phases(init_seed.wrapping_add(i as u64 * 7919));
            l
        };
        let pre: Vec<_> = (0..split).map(make).collect();
        let post: Vec<_> = (split..depth).map(make).collect();
        // The skip branch travels the same optical path length as the pre
        // stack (split hops of `distance`).
        let skip_propagator = FreeSpace::new(
            grid,
            wavelength,
            Distance::from_meters(distance.meters() * split as f64),
            approximation,
        );
        let final_propagator = FreeSpace::new(grid, wavelength, distance, approximation);
        SegmentationDonn {
            pre,
            post,
            skip_propagator,
            final_propagator,
            options,
            grid,
        }
    }

    /// The architecture switches in effect.
    pub fn options(&self) -> SegmentationOptions {
        self.options
    }

    /// Total depth (pre + post layers).
    pub fn depth(&self) -> usize {
        self.pre.len() + self.post.len()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        (self.pre.len() + self.post.len()) * self.grid.rows() * self.grid.cols()
    }

    fn forward(&self, input: &Field) -> SegTrace {
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        // Beam splitter: both branches get the field scaled by 1/√2 (when
        // the skip path is enabled).
        let (mut u, skip_in) = if self.options.skip_connection {
            (input.scaled(inv_sqrt2), Some(input.scaled(inv_sqrt2)))
        } else {
            (input.clone(), None)
        };
        let mut pre_caches = Vec::with_capacity(self.pre.len());
        for layer in &self.pre {
            let (out, cache) = layer.forward(&u);
            u = out;
            pre_caches.push(cache);
        }
        if let Some(mut skip) = skip_in {
            self.skip_propagator.propagate(&mut skip);
            // Recombining splitter: (main + skip)/√2.
            u = (&u + &skip).scaled(inv_sqrt2);
        }
        let mut post_caches = Vec::with_capacity(self.post.len());
        for layer in &self.post {
            let (out, cache) = layer.forward(&u);
            u = out;
            post_caches.push(cache);
        }
        self.final_propagator.propagate(&mut u);
        let intensity = PlaneReadout.read(&u);
        let (ln, prediction) = if self.options.layer_norm {
            let (mean, inv_std, z) = layer_norm(&intensity);
            let p: Vec<f64> = z.iter().map(|&v| sigmoid(v)).collect();
            (Some((mean, inv_std, z)), p)
        } else {
            (None, intensity.clone())
        };
        SegTrace {
            pre_caches,
            post_caches,
            detector_field: u,
            intensity,
            ln,
            prediction,
        }
    }

    /// Predicted binary mask for an input image, thresholded at the mean
    /// detector intensity (a threshold an analog comparator could realize).
    pub fn predict_mask(&self, image: &[f64]) -> Vec<f64> {
        let (rows, cols) = self.grid.shape();
        let input = Field::from_amplitudes(rows, cols, image);
        let trace = self.forward(&input);
        let mean = trace.intensity.iter().sum::<f64>() / trace.intensity.len() as f64;
        trace
            .intensity
            .iter()
            .map(|&i| f64::from(i >= mean))
            .collect()
    }

    /// Mean IoU over a dataset.
    pub fn evaluate_iou(&self, data: &[MaskedImage]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let sum: f64 = parallel::par_map(data.len(), |i| {
            let (img, mask) = &data[i];
            lr_nn::metrics::binary_iou(&self.predict_mask(img), mask)
        })
        .into_iter()
        .sum();
        sum / data.len() as f64
    }

    /// Trains with per-pixel MSE (through LayerNorm + sigmoid when enabled);
    /// returns mean loss per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or image/mask sizes mismatch the grid.
    pub fn train(
        &mut self,
        data: &[MaskedImage],
        epochs: usize,
        batch_size: usize,
        lr: f64,
        seed: u64,
    ) -> Vec<f64> {
        assert!(!data.is_empty(), "training set must be non-empty");
        let (rows, cols) = self.grid.shape();
        for (img, mask) in data {
            assert_eq!(img.len(), rows * cols, "image size mismatch");
            assert_eq!(mask.len(), rows * cols, "mask size mismatch");
        }
        let mut opt = Adam::new(lr);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut history = Vec::with_capacity(epochs);
        let n_layers = self.depth();

        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(batch_size) {
                let workers = parallel::threads().min(batch.len()).max(1);
                let shard = batch.len().div_ceil(workers);
                let results = parallel::par_map(workers, |w| {
                    let mut grads: Vec<Vec<f64>> = vec![vec![0.0; rows * cols]; n_layers];
                    let mut loss_sum = 0.0;
                    for &idx in batch.iter().skip(w * shard).take(shard) {
                        let (img, mask) = &data[idx];
                        let input = Field::from_amplitudes(rows, cols, img);
                        let trace = self.forward(&input);
                        let (loss, g) = lr_nn::loss::mse(&trace.prediction, mask);
                        loss_sum += loss;
                        self.backward(&trace, &g, &mut grads);
                    }
                    (grads, loss_sum)
                });
                let mut total: Vec<Vec<f64>> = vec![vec![0.0; rows * cols]; n_layers];
                for (grads, loss) in results {
                    epoch_loss += loss;
                    for (t, g) in total.iter_mut().zip(&grads) {
                        for (a, &b) in t.iter_mut().zip(g) {
                            *a += b;
                        }
                    }
                }
                let scale = 1.0 / batch.len() as f64;
                let split = self.pre.len();
                for (i, layer) in self.pre.iter_mut().chain(self.post.iter_mut()).enumerate() {
                    let g: Vec<f64> = total[i].iter().map(|v| v * scale).collect();
                    opt.step(i, layer.phases_mut(), &g);
                }
                debug_assert!(split <= n_layers);
            }
            history.push(epoch_loss / data.len() as f64);
        }
        history
    }

    /// Backward pass from prediction gradients, accumulating per-layer phase
    /// gradients (`pre` layers first, then `post`).
    fn backward(&self, trace: &SegTrace, pred_grads: &[f64], grads: &mut [Vec<f64>]) {
        // Head: sigmoid + LayerNorm (if enabled) down to intensity grads.
        let intensity_grads: Vec<f64> = if let Some((_, inv_std, z)) = &trace.ln {
            // dL/dz_i = dL/dp_i · p_i(1−p_i)
            let dz: Vec<f64> = pred_grads
                .iter()
                .zip(&trace.prediction)
                .map(|(&g, &p)| g * p * (1.0 - p))
                .collect();
            layer_norm_backward(&dz, z, *inv_std)
        } else {
            pred_grads.to_vec()
        };
        let mut g = PlaneReadout.backward(&trace.detector_field, &intensity_grads);
        self.final_propagator.adjoint(&mut g);
        let split = self.pre.len();
        for (i, layer) in self.post.iter().enumerate().rev() {
            g = layer.backward(&g, &trace.post_caches[i], &mut grads[split + i]);
        }
        if self.options.skip_connection {
            // Recombiner adjoint: both branches receive g/√2; the skip branch
            // ends at the (non-trainable) input, so only the main branch
            // continues.
            g.scale_inplace(std::f64::consts::FRAC_1_SQRT_2);
        }
        for (i, layer) in self.pre.iter().enumerate().rev() {
            g = layer.backward(&g, &trace.pre_caches[i], &mut grads[i]);
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Normalizes to zero mean / unit variance; returns `(mean, inv_std, z)`.
fn layer_norm(x: &[f64]) -> (f64, f64, Vec<f64>) {
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    let var = x.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / n;
    let inv_std = 1.0 / (var + 1e-12).sqrt();
    let z = x.iter().map(|&v| (v - mean) * inv_std).collect();
    (mean, inv_std, z)
}

/// Standard LayerNorm backward:
/// `dL/dx_i = inv_std·(g_i − mean(g) − z_i·mean(g⊙z))`.
fn layer_norm_backward(g: &[f64], z: &[f64], inv_std: f64) -> Vec<f64> {
    let n = g.len() as f64;
    let mean_g = g.iter().sum::<f64>() / n;
    let mean_gz = g.iter().zip(z).map(|(&gi, &zi)| gi * zi).sum::<f64>() / n;
    g.iter()
        .zip(z)
        .map(|(&gi, &zi)| inv_std * (gi - mean_g - zi * mean_gz))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_optics::PixelPitch;

    fn toy_masks(n: usize, size: usize) -> Vec<MaskedImage> {
        // "Buildings": bright rectangles whose mask is the rectangle itself.
        (0..n)
            .map(|i| {
                let mut img = vec![0.05; size * size];
                let mut mask = vec![0.0; size * size];
                let w = size / 3;
                let r0 = (i * 3) % (size - w);
                let c0 = (i * 5) % (size - w);
                for r in r0..r0 + w {
                    for c in c0..c0 + w {
                        img[r * size + c] = 1.0;
                        mask[r * size + c] = 1.0;
                    }
                }
                (img, mask)
            })
            .collect()
    }

    fn donn(options: SegmentationOptions) -> SegmentationDonn {
        let grid = Grid::square(16, PixelPitch::from_um(36.0));
        SegmentationDonn::new(
            grid,
            Wavelength::from_nm(532.0),
            Distance::from_mm(5.0),
            Approximation::RayleighSommerfeld,
            3,
            options,
            13,
        )
    }

    #[test]
    fn architecture_splits_at_half_depth() {
        let d = donn(SegmentationOptions::proposed());
        assert_eq!(d.depth(), 3);
        assert_eq!(d.pre.len(), 1);
        assert_eq!(d.post.len(), 2);
        let b = donn(SegmentationOptions::baseline());
        assert_eq!(b.pre.len(), 3);
        assert_eq!(b.post.len(), 0);
    }

    #[test]
    fn layer_norm_statistics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let (mean, inv_std, z) = layer_norm(&x);
        assert!((mean - 2.5).abs() < 1e-12);
        let zm: f64 = z.iter().sum::<f64>() / 4.0;
        let zv: f64 = z.iter().map(|v| v * v).sum::<f64>() / 4.0;
        assert!(zm.abs() < 1e-12);
        assert!((zv - 1.0).abs() < 1e-9);
        assert!(inv_std > 0.0);
    }

    #[test]
    fn layer_norm_backward_matches_finite_difference() {
        let x = [0.3, 1.7, -0.4, 2.2, 0.9];
        let w = [0.2, -0.5, 1.0, 0.1, 0.7]; // loss = Σ w·LN(x)
        let loss = |x: &[f64]| -> f64 {
            let (_, _, z) = layer_norm(x);
            z.iter().zip(&w).map(|(&zi, &wi)| zi * wi).sum()
        };
        let (_, inv_std, z) = layer_norm(&x);
        let analytic = layer_norm_backward(&w, &z, inv_std);
        let report = lr_nn::gradcheck::check_gradient(loss, &x, &analytic, 1e-6);
        assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn training_reduces_loss() {
        let mut d = donn(SegmentationOptions::proposed());
        let data = toy_masks(12, 16);
        let losses = d.train(&data, 6, 6, 0.05, 1);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "segmentation loss must decrease: {losses:?}"
        );
    }

    #[test]
    fn predict_mask_is_binary_and_shaped() {
        let d = donn(SegmentationOptions::proposed());
        let (img, _) = &toy_masks(1, 16)[0];
        let mask = d.predict_mask(img);
        assert_eq!(mask.len(), 256);
        assert!(mask.iter().all(|&m| m == 0.0 || m == 1.0));
    }

    #[test]
    fn iou_improves_with_training() {
        let data = toy_masks(12, 16);
        let mut d = donn(SegmentationOptions::proposed());
        let before = d.evaluate_iou(&data);
        d.train(&data, 8, 6, 0.05, 2);
        let after = d.evaluate_iou(&data);
        assert!(
            after > before - 0.05,
            "IoU should not collapse: {before} -> {after}"
        );
        assert!(after > 0.2, "trained IoU too low: {after}");
    }

    #[test]
    fn skip_connection_changes_forward() {
        let with = donn(SegmentationOptions::proposed());
        let without = donn(SegmentationOptions {
            skip_connection: false,
            layer_norm: true,
        });
        let (img, _) = &toy_masks(1, 16)[0];
        let input = Field::from_amplitudes(16, 16, img);
        let a = with.forward(&input).intensity;
        let b = without.forward(&input).intensity;
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-9, "skip connection must alter the optical path");
    }
}
