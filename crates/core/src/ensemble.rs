//! Ensemble DONNs (extension; Rahman et al., "Ensemble learning of
//! diffractive optical networks", cited as reference 44 in the paper).
//!
//! Several independently initialized DONNs vote by summing their detector
//! intensities — optically realizable by replicating the input beam with
//! splitters and projecting all outputs onto a shared detector, exactly
//! like the multi-channel architecture but with identical inputs.

use crate::layers::codesign::CodesignMode;
use crate::model::DonnModel;
use crate::train::{self, LabeledImage, TrainConfig};
use lr_nn::metrics::argmax;
use lr_tensor::{parallel, Field};

/// An ensemble of independently trained DONNs voting by intensity sum.
///
/// # Examples
///
/// ```
/// use lightridge::{DonnBuilder, Detector, DonnEnsemble};
/// use lr_optics::{Distance, Grid, PixelPitch, Wavelength};
///
/// let grid = Grid::square(16, PixelPitch::from_um(36.0));
/// let members = (0..3).map(|seed| {
///     DonnBuilder::new(grid, Wavelength::from_nm(532.0))
///         .distance(Distance::from_mm(10.0))
///         .diffractive_layers(1)
///         .detector(Detector::grid_layout(16, 16, 2, 4))
///         .init_seed(seed)
///         .build()
/// }).collect();
/// let ensemble = DonnEnsemble::new(members);
/// assert_eq!(ensemble.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DonnEnsemble {
    members: Vec<DonnModel>,
}

impl DonnEnsemble {
    /// Creates an ensemble from pre-built members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or class counts differ.
    pub fn new(members: Vec<DonnModel>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let classes = members[0].num_classes();
        assert!(
            members.iter().all(|m| m.num_classes() == classes),
            "all members must share the class count"
        );
        DonnEnsemble { members }
    }

    /// Number of member models.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false: empty ensembles cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The member models.
    pub fn members(&self) -> &[DonnModel] {
        &self.members
    }

    /// Trains every member on the same data (members differ only by their
    /// initialization seeds).
    pub fn train_all(&mut self, data: &[LabeledImage], config: &TrainConfig) {
        for (i, member) in self.members.iter_mut().enumerate() {
            let mut member_config = config.clone();
            member_config.seed = config.seed.wrapping_add(i as u64 * 101);
            train::train(member, data, &member_config);
        }
    }

    /// Summed detector intensities across members — the optical vote.
    pub fn infer(&self, input: &Field) -> Vec<f64> {
        let mut logits = vec![0.0; self.members[0].num_classes()];
        for member in &self.members {
            let trace = member.forward_trace(input, CodesignMode::Soft, 0);
            for (acc, v) in logits.iter_mut().zip(trace.logits) {
                *acc += v;
            }
        }
        logits
    }

    /// Ensemble classification accuracy.
    pub fn evaluate(&self, data: &[LabeledImage]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let (rows, cols) = self.members[0].grid().shape();
        let correct: usize = parallel::par_map(data.len(), |i| {
            let (img, label) = &data[i];
            let input = Field::from_amplitudes(rows, cols, img);
            usize::from(argmax(&self.infer(&input)) == *label)
        })
        .into_iter()
        .sum();
        correct as f64 / data.len() as f64
    }

    /// Accuracy of each individual member (for comparing against the
    /// ensemble vote).
    pub fn member_accuracies(&self, data: &[LabeledImage]) -> Vec<f64> {
        self.members
            .iter()
            .map(|m| train::evaluate(m, data))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::detector::Detector;
    use crate::model::DonnBuilder;
    use lr_optics::{Distance, Grid, PixelPitch, Wavelength};

    fn toy_data(n: usize) -> Vec<LabeledImage> {
        (0..n)
            .map(|i| {
                let label = i % 2;
                let mut img = vec![0.0; 256];
                for r in 0..8 {
                    for c in 4..12 {
                        img[(r + label * 8) * 16 + c] = 1.0;
                    }
                }
                img[(i * 11) % 256] += 0.25;
                (img, label)
            })
            .collect()
    }

    fn build_ensemble(k: usize) -> DonnEnsemble {
        let grid = Grid::square(16, PixelPitch::from_um(36.0));
        let members = (0..k as u64)
            .map(|seed| {
                DonnBuilder::new(grid, Wavelength::from_nm(532.0))
                    .distance(Distance::from_mm(10.0))
                    .diffractive_layers(2)
                    .detector(Detector::grid_layout(16, 16, 2, 4))
                    .init_seed(seed * 31 + 1)
                    .build()
            })
            .collect();
        DonnEnsemble::new(members)
    }

    #[test]
    fn ensemble_votes_are_member_sums() {
        let ens = build_ensemble(3);
        let input = Field::ones(16, 16);
        let vote = ens.infer(&input);
        let mut manual = vec![0.0; 2];
        for m in ens.members() {
            for (a, v) in manual.iter_mut().zip(m.infer(&input)) {
                *a += v;
            }
        }
        for (a, b) in vote.iter().zip(&manual) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn ensemble_at_least_matches_mean_member() {
        let mut ens = build_ensemble(3);
        let data = toy_data(40);
        let config = TrainConfig {
            epochs: 5,
            batch_size: 10,
            learning_rate: 0.1,
            ..TrainConfig::default()
        };
        ens.train_all(&data, &config);
        let members = ens.member_accuracies(&data);
        let mean: f64 = members.iter().sum::<f64>() / members.len() as f64;
        let vote = ens.evaluate(&data);
        assert!(
            vote >= mean - 0.05,
            "ensemble vote {vote} should not trail the mean member {mean} ({members:?})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_ensemble() {
        let _ = DonnEnsemble::new(Vec::new());
    }
}
