//! Trainable optical layer implementations (`lr.layers`).

pub mod codesign;
pub mod detector;
pub mod diffractive;
pub mod nonlinear;
