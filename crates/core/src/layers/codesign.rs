//! Hardware-aware codesign diffractive layer (`lr.layers.diffractlayer`).
//!
//! Real modulators offer a *discrete*, *nonuniform* set of complex
//! modulation states (measured phase + coupled amplitude per control level,
//! see [`lr_hardware::SlmModel`]). Training free phases and quantizing
//! afterwards opens the ≥30% sim-to-hardware gap of the paper's Fig. 1.
//!
//! LightRidge's codesign algorithm (paper §3.2, after Li et al. ICCAD'22)
//! instead *trains in the device space*: each pixel holds a categorical
//! distribution (logits) over the device's levels, relaxed with
//! **Gumbel-Softmax** during training:
//!
//! ```text
//! w = softmax((logits + Gumbel noise) / τ)      (training, differentiable)
//! m = γ · Σ_l w_l · c_l,   c_l = a_l·e^{jθ_l}   (mixed device state)
//! deployment: m = γ · c_argmax(logits)           (exactly realizable)
//! ```
//!
//! As τ anneals toward 0 the soft mixture approaches the hard argmax, so the
//! deployed (quantized) model matches what was trained — "quantization-aware
//! training without quantization approximations".

use lr_hardware::SlmModel;
use lr_optics::{Approximation, Distance, FreeSpace, Grid, PropagationScratch, Wavelength};
use lr_tensor::{Complex64, Field, FieldBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a codesign layer computes its modulation state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodesignMode {
    /// Gumbel-noise softmax relaxation (training).
    Train,
    /// Noise-free softmax (validation during training).
    Soft,
    /// Hard argmax — the deployed, physically realizable configuration.
    Deploy,
}

/// A diffractive layer whose parameters are per-pixel logits over the
/// discrete modulation levels of a device.
#[derive(Debug, Clone)]
pub struct CodesignLayer {
    propagator: FreeSpace,
    device: SlmModel,
    /// Complex modulation state per device level: `c_l = a_l·e^{jθ_l}`.
    states: Vec<Complex64>,
    /// Trainable logits, layout `[pixel * num_levels + level]`.
    logits: Vec<f64>,
    gamma: f64,
    temperature: f64,
}

/// Forward activations cached for the backward pass.
#[derive(Debug, Clone)]
pub struct CodesignCache {
    /// Wavefield after diffraction, before modulation.
    pub propagated: Field,
    /// Softmax weights per pixel (`[pixel * num_levels + level]`).
    pub weights: Vec<f64>,
    /// Realized modulation per pixel.
    pub modulation: Vec<Complex64>,
}

impl CodesignLayer {
    /// Creates a codesign layer for the given device, logits zeroed
    /// (uniform distribution over levels).
    ///
    /// # Panics
    ///
    /// Panics if `gamma` or `temperature` is not finite and positive.
    pub fn new(
        grid: Grid,
        wavelength: Wavelength,
        distance: Distance,
        approximation: Approximation,
        device: SlmModel,
        gamma: f64,
        temperature: f64,
    ) -> Self {
        assert!(
            gamma.is_finite() && gamma > 0.0,
            "gamma must be finite and positive"
        );
        assert!(
            temperature.is_finite() && temperature > 0.0,
            "temperature must be finite and positive"
        );
        let propagator = FreeSpace::new(grid, wavelength, distance, approximation);
        let states = device
            .phases()
            .iter()
            .zip(device.amplitudes())
            .map(|(&p, &a)| Complex64::from_polar(a, p))
            .collect();
        let n = grid.rows() * grid.cols() * device.num_levels();
        CodesignLayer {
            propagator,
            device,
            states,
            logits: vec![0.0; n],
            gamma,
            temperature,
        }
    }

    /// Randomizes logits with small Gaussian-ish jitter so training breaks
    /// symmetry deterministically per `seed`.
    pub fn randomize_logits(&mut self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for l in &mut self.logits {
            *l = rng.gen_range(-0.1..0.1);
        }
    }

    /// Initializes logits so the argmax state matches the given free phases
    /// — how a DSE-trained raw model is *refined* by codesign training
    /// (paper Fig. 3 step 2).
    ///
    /// # Panics
    ///
    /// Panics if `phases.len()` does not match the pixel count.
    pub fn init_from_phases(&mut self, phases: &[f64], sharpness: f64) {
        let pixels = self.num_pixels();
        assert_eq!(phases.len(), pixels, "phase mask length mismatch");
        let levels = self.device.num_levels();
        for (p, &phase) in phases.iter().enumerate() {
            let (best, _) = self.device.nearest_level(phase);
            for l in 0..levels {
                self.logits[p * levels + l] = if l == best { sharpness } else { 0.0 };
            }
        }
    }

    /// The layer's sampling grid.
    pub fn grid(&self) -> Grid {
        self.propagator.grid()
    }

    /// The free-space propagator feeding this layer.
    pub fn propagator(&self) -> &FreeSpace {
        &self.propagator
    }

    /// The device model this layer trains against.
    pub fn device(&self) -> &SlmModel {
        &self.device
    }

    /// Gumbel-Softmax temperature τ.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Updates τ (annealed across epochs by the trainer).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not finite and positive.
    pub fn set_temperature(&mut self, tau: f64) {
        assert!(
            tau.is_finite() && tau > 0.0,
            "temperature must be finite and positive"
        );
        self.temperature = tau;
    }

    /// Amplitude regularization factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of pixels.
    pub fn num_pixels(&self) -> usize {
        let (r, c) = self.grid().shape();
        r * c
    }

    /// Number of trainable parameters (`pixels × levels`).
    pub fn num_params(&self) -> usize {
        self.logits.len()
    }

    /// Immutable view of the logits.
    pub fn logits(&self) -> &[f64] {
        &self.logits
    }

    /// Mutable view of the logits (the optimizer's target).
    pub fn logits_mut(&mut self) -> &mut [f64] {
        &mut self.logits
    }

    /// The hard (deployable) level per pixel: `argmax` of the logits.
    pub fn hard_levels(&self) -> Vec<usize> {
        let levels = self.device.num_levels();
        (0..self.num_pixels())
            .map(|p| {
                let row = &self.logits[p * levels..(p + 1) * levels];
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// The deployed phase mask (radians) per pixel.
    pub fn hard_phases(&self) -> Vec<f64> {
        let phases = self.device.phases();
        self.hard_levels().into_iter().map(|l| phases[l]).collect()
    }

    /// Forward pass. `seed` drives the Gumbel noise in [`CodesignMode::Train`]
    /// (vary it per sample/step); ignored in the other modes.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the layer grid.
    pub fn forward(&self, input: &Field, mode: CodesignMode, seed: u64) -> (Field, CodesignCache) {
        assert_eq!(
            input.shape(),
            self.grid().shape(),
            "input/grid shape mismatch"
        );
        let mut u = input.clone();
        self.propagator.propagate(&mut u);
        let cache = self.modulate_with_cache(&mut u, mode, seed);
        (u, cache)
    }

    /// Forward pass transforming `u` in place through caller-owned scratch
    /// and returning a fresh cache — the trace-building fast path
    /// ([`crate::DonnModel::forward_trace_with`]).
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer grid.
    pub fn forward_through(
        &self,
        u: &mut Field,
        mode: CodesignMode,
        seed: u64,
        scratch: &mut PropagationScratch,
    ) -> CodesignCache {
        assert_eq!(u.shape(), self.grid().shape(), "input/grid shape mismatch");
        self.propagator.propagate_with(u, scratch);
        self.modulate_with_cache(u, mode, seed)
    }

    /// [`CodesignLayer::forward_through`] reusing a caller-owned cache —
    /// the trace-ring fast path: once the cache buffers are sized for this
    /// layer, the pass performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer grid.
    pub fn forward_into(
        &self,
        u: &mut Field,
        mode: CodesignMode,
        seed: u64,
        scratch: &mut PropagationScratch,
        cache: &mut CodesignCache,
    ) {
        assert_eq!(u.shape(), self.grid().shape(), "input/grid shape mismatch");
        self.propagator.propagate_with(u, scratch);
        self.modulate_into(u, mode, seed, cache);
    }

    /// Computes the per-pixel modulation for `mode`, applies it to the
    /// already-propagated `u` in place, and returns the activation cache.
    fn modulate_with_cache(&self, u: &mut Field, mode: CodesignMode, seed: u64) -> CodesignCache {
        let mut cache = CodesignCache {
            propagated: Field::zeros(u.rows(), u.cols()),
            weights: Vec::new(),
            modulation: Vec::new(),
        };
        self.modulate_into(u, mode, seed, &mut cache);
        cache
    }

    /// [`CodesignLayer::modulate_with_cache`] writing into a reusable cache.
    fn modulate_into(
        &self,
        u: &mut Field,
        mode: CodesignMode,
        seed: u64,
        cache: &mut CodesignCache,
    ) {
        self.modulate_slice_into(u.as_mut_slice(), mode, seed, cache);
    }

    /// The cache-producing modulation kernel on one raw plane — shared by
    /// the per-sample and batched trace-building paths.
    fn modulate_slice_into(
        &self,
        u: &mut [Complex64],
        mode: CodesignMode,
        seed: u64,
        cache: &mut CodesignCache,
    ) {
        let (rows, cols) = self.grid().shape();
        assert_eq!(u.len(), rows * cols, "plane/grid length mismatch");
        if cache.propagated.shape() != (rows, cols) {
            cache.propagated = Field::zeros(rows, cols);
        }
        cache.propagated.as_mut_slice().copy_from_slice(u);

        let levels = self.device.num_levels();
        let pixels = self.num_pixels();
        cache.weights.clear();
        cache.weights.resize(pixels * levels, 0.0);
        cache.modulation.clear();
        cache.modulation.resize(pixels, Complex64::ZERO);
        let weights = &mut cache.weights;
        let modulation = &mut cache.modulation;
        let mut rng = StdRng::seed_from_u64(seed);
        let inv_tau = 1.0 / self.temperature;

        for p in 0..pixels {
            let row = &self.logits[p * levels..(p + 1) * levels];
            let w = &mut weights[p * levels..(p + 1) * levels];
            match mode {
                CodesignMode::Deploy => {
                    let mut best = 0;
                    for (i, &v) in row.iter().enumerate() {
                        if v > row[best] {
                            best = i;
                        }
                    }
                    w[best] = 1.0;
                }
                CodesignMode::Train | CodesignMode::Soft => {
                    // y_l = (logit_l [+ gumbel]) / τ, w = softmax(y)
                    let mut max = f64::NEG_INFINITY;
                    for (i, &v) in row.iter().enumerate() {
                        let noise = if mode == CodesignMode::Train {
                            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                            -(-u1.ln()).ln()
                        } else {
                            0.0
                        };
                        w[i] = (v + noise) * inv_tau;
                        max = max.max(w[i]);
                    }
                    let mut sum = 0.0;
                    for wi in w.iter_mut() {
                        *wi = (*wi - max).exp();
                        sum += *wi;
                    }
                    for wi in w.iter_mut() {
                        *wi /= sum;
                    }
                }
            }
            let mut m = Complex64::ZERO;
            for (l, &wi) in w.iter().enumerate() {
                m += self.states[l] * wi;
            }
            modulation[p] = m * self.gamma;
        }

        for (z, &m) in u.iter_mut().zip(modulation.iter()) {
            *z *= m;
        }
    }

    /// In-place inference step through caller-owned scratch: diffract, then
    /// modulate with the noise-free soft mixture ([`CodesignMode::Soft`]) or
    /// the hard argmax state ([`CodesignMode::Deploy`]). Per-pixel weights
    /// are folded on the fly, so no weight or modulation buffers are
    /// allocated — this is the workspace fast path.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer grid, or if `mode` is
    /// [`CodesignMode::Train`] (training needs the cache-producing
    /// [`CodesignLayer::forward`]).
    pub fn infer_inplace(
        &self,
        u: &mut Field,
        mode: CodesignMode,
        scratch: &mut PropagationScratch,
    ) {
        assert!(
            mode != CodesignMode::Train,
            "infer_inplace supports Soft/Deploy; Train needs forward()"
        );
        assert_eq!(u.shape(), self.grid().shape(), "input/grid shape mismatch");
        self.propagator.propagate_with(u, scratch);
        self.infer_modulate_slice(u.as_mut_slice(), mode);
    }

    /// The inference-mode modulation kernel on one raw (already propagated)
    /// plane — shared by [`CodesignLayer::infer_inplace`] and the batched
    /// inference path. Weights are folded on the fly; no buffers are
    /// touched.
    fn infer_modulate_slice(&self, u: &mut [Complex64], mode: CodesignMode) {
        let levels = self.device.num_levels();
        let inv_tau = 1.0 / self.temperature;
        for (p, z) in u.iter_mut().enumerate() {
            let row = &self.logits[p * levels..(p + 1) * levels];
            let m = match mode {
                CodesignMode::Deploy => {
                    let mut best = 0;
                    for (i, &v) in row.iter().enumerate() {
                        if v > row[best] {
                            best = i;
                        }
                    }
                    self.states[best]
                }
                _ => {
                    // Soft mixture without materializing the weights:
                    // m = Σ_l softmax_l·c_l = Σ_l e^{(v_l−max)/τ}·c_l / Σ_l e^{(v_l−max)/τ}
                    let mut max = f64::NEG_INFINITY;
                    for &v in row {
                        max = max.max(v * inv_tau);
                    }
                    let mut num = Complex64::ZERO;
                    let mut den = 0.0;
                    for (l, &v) in row.iter().enumerate() {
                        let e = (v * inv_tau - max).exp();
                        num += self.states[l] * e;
                        den += e;
                    }
                    num / den
                }
            };
            *z *= m * self.gamma;
        }
    }

    /// Batched inference step: diffract every active plane, then modulate
    /// each with the noise-free soft mixture or hard argmax state — the
    /// batched counterpart of [`CodesignLayer::infer_inplace`],
    /// bit-identical to it per plane and free of steady-state allocations.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer grid or `mode` is
    /// [`CodesignMode::Train`].
    pub fn infer_batch_inplace(
        &self,
        batch: &mut FieldBatch,
        mode: CodesignMode,
        scratch: &mut PropagationScratch,
    ) {
        assert!(
            mode != CodesignMode::Train,
            "infer_batch_inplace supports Soft/Deploy; Train needs the traced forward"
        );
        self.propagator.propagate_batch_into(batch, scratch);
        for plane in batch.planes_mut() {
            self.infer_modulate_slice(plane, mode);
        }
    }

    /// Batched trace-building forward pass: diffracts every active plane,
    /// then modulates each with its own per-sample seed (`seeds[b]` drives
    /// plane `b`'s Gumbel noise in [`CodesignMode::Train`]), reusing one
    /// [`CodesignCache`] per plane from `caches` (grown once, then
    /// allocation-free except the per-plane RNG).
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer grid or `seeds` does not
    /// cover the batch.
    pub fn forward_batch_traced(
        &self,
        batch: &mut FieldBatch,
        mode: CodesignMode,
        seeds: &[u64],
        scratch: &mut PropagationScratch,
        caches: &mut Vec<CodesignCache>,
    ) {
        assert_eq!(seeds.len(), batch.batch(), "one seed per batch plane");
        self.propagator.propagate_batch_into(batch, scratch);
        if caches.len() < batch.batch() {
            caches.resize_with(batch.batch(), || CodesignCache {
                propagated: Field::zeros(self.grid().rows(), self.grid().cols()),
                weights: Vec::new(),
                modulation: Vec::new(),
            });
        }
        for (b, (plane, cache)) in batch.planes_mut().zip(caches.iter_mut()).enumerate() {
            self.modulate_slice_into(plane, mode, seeds[b], cache);
        }
    }

    /// Batched backward pass operating on the gradient **in place**: every
    /// active plane of `grad` enters as `∂L/∂(output)̄` and leaves as
    /// `∂L/∂(input)̄`; `logit_grads` accumulates `dL/dlogits` summed over
    /// the batch in plane order. Unlike the per-sample
    /// [`CodesignLayer::backward`], this allocates no gradient field per
    /// sample (`dw` is the only scratch, sized once per call).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree, `caches` does not cover the batch, or
    /// `logit_grads` has the wrong length.
    pub fn backward_batch_inplace(
        &self,
        grad: &mut FieldBatch,
        caches: &[CodesignCache],
        logit_grads: &mut [f64],
        scratch: &mut PropagationScratch,
    ) {
        assert!(
            caches.len() >= grad.batch(),
            "gradient/cache batch mismatch"
        );
        assert_eq!(
            grad.plane_shape(),
            self.grid().shape(),
            "gradient shape mismatch"
        );
        assert_eq!(
            logit_grads.len(),
            self.logits.len(),
            "logit gradient buffer length mismatch"
        );
        let levels = self.device.num_levels();
        let pixels = self.num_pixels();
        let inv_tau = 1.0 / self.temperature;
        let mut dw = vec![0.0; levels];
        for (b, cache) in caches.iter().enumerate().take(grad.batch()) {
            let g = grad.plane_mut(b);
            let u = cache.propagated.as_slice();
            for p in 0..pixels {
                // dL/dw_l = 2·Re( conj(g_p) · u_p · γ · c_l )
                let gu = g[p].conj() * u[p] * self.gamma;
                for (d, &state) in dw.iter_mut().zip(&self.states) {
                    *d = 2.0 * (gu * state).re;
                }
                // Softmax Jacobian with the 1/τ chain factor.
                let w = &cache.weights[p * levels..(p + 1) * levels];
                let dot: f64 = dw.iter().zip(w).map(|(&d, &wi)| d * wi).sum();
                let out_row = &mut logit_grads[p * levels..(p + 1) * levels];
                for l in 0..levels {
                    out_row[l] += w[l] * inv_tau * (dw[l] - dot);
                }
            }
            // g_u = g_out · conj(m), in place.
            for (gi, &m) in g.iter_mut().zip(&cache.modulation) {
                *gi *= m.conj();
            }
        }
        self.propagator.adjoint_batch_into(grad, scratch);
    }

    /// Backward pass: accumulates `dL/dlogits` into `logit_grads` (`+=`) and
    /// returns `∂L/∂(input)̄`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or `logit_grads` has the wrong length.
    pub fn backward(
        &self,
        grad_output: &Field,
        cache: &CodesignCache,
        logit_grads: &mut [f64],
    ) -> Field {
        assert_eq!(
            grad_output.shape(),
            self.grid().shape(),
            "gradient shape mismatch"
        );
        assert_eq!(
            logit_grads.len(),
            self.logits.len(),
            "logit gradient buffer length mismatch"
        );
        let levels = self.device.num_levels();
        let pixels = self.num_pixels();
        let inv_tau = 1.0 / self.temperature;

        let g = grad_output.as_slice();
        let u = cache.propagated.as_slice();
        let mut dw = vec![0.0; levels];
        for p in 0..pixels {
            // dL/dw_l = 2·Re( conj(g_p) · u_p · γ · c_l )
            let gu = g[p].conj() * u[p] * self.gamma;
            for (d, &state) in dw.iter_mut().zip(&self.states) {
                *d = 2.0 * (gu * state).re;
            }
            // Softmax Jacobian with the 1/τ chain factor:
            // dL/dlogit_k = (w_k/τ)·(dL/dw_k − Σ_l dL/dw_l·w_l)
            let w = &cache.weights[p * levels..(p + 1) * levels];
            let dot: f64 = dw.iter().zip(w).map(|(&d, &wi)| d * wi).sum();
            let out_row = &mut logit_grads[p * levels..(p + 1) * levels];
            for l in 0..levels {
                out_row[l] += w[l] * inv_tau * (dw[l] - dot);
            }
        }

        // g_u = g_out · conj(m); then adjoint diffraction.
        let mut g_in = grad_output.clone();
        for (gi, &m) in g_in.as_mut_slice().iter_mut().zip(&cache.modulation) {
            *gi *= m.conj();
        }
        self.propagator.adjoint(&mut g_in);
        g_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_nn::gradcheck::check_gradient_sampled;
    use lr_optics::PixelPitch;

    fn small_layer(levels: usize) -> CodesignLayer {
        let grid = Grid::square(6, PixelPitch::from_um(36.0));
        let mut l = CodesignLayer::new(
            grid,
            Wavelength::from_nm(532.0),
            Distance::from_mm(30.0),
            Approximation::RayleighSommerfeld,
            SlmModel::ideal(levels),
            1.0,
            0.7,
        );
        l.randomize_logits(3);
        l
    }

    fn test_input() -> Field {
        Field::from_fn(6, 6, |r, c| {
            Complex64::new(0.4 + (r as f64 * 0.5).sin(), (c as f64 * 0.3).cos())
        })
    }

    #[test]
    fn soft_weights_sum_to_one() {
        let layer = small_layer(8);
        let (_, cache) = layer.forward(&test_input(), CodesignMode::Soft, 0);
        let levels = 8;
        for p in 0..layer.num_pixels() {
            let s: f64 = cache.weights[p * levels..(p + 1) * levels].iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "weights must be a distribution");
        }
    }

    #[test]
    fn deploy_weights_are_one_hot() {
        let layer = small_layer(8);
        let (_, cache) = layer.forward(&test_input(), CodesignMode::Deploy, 0);
        for p in 0..layer.num_pixels() {
            let row = &cache.weights[p * 8..(p + 1) * 8];
            assert_eq!(row.iter().filter(|&&w| w == 1.0).count(), 1);
            assert_eq!(row.iter().filter(|&&w| w == 0.0).count(), 7);
        }
    }

    #[test]
    fn deploy_modulation_is_exact_device_state() {
        let layer = small_layer(8);
        let (_, cache) = layer.forward(&test_input(), CodesignMode::Deploy, 0);
        let levels = layer.hard_levels();
        for (p, &level) in levels.iter().enumerate() {
            let expect = layer.states[level] * layer.gamma();
            assert!((cache.modulation[p] - expect).norm() < 1e-12);
        }
    }

    #[test]
    fn train_mode_noise_varies_with_seed_but_is_reproducible() {
        let layer = small_layer(8);
        let x = test_input();
        let (a, _) = layer.forward(&x, CodesignMode::Train, 1);
        let (a2, _) = layer.forward(&x, CodesignMode::Train, 1);
        let (b, _) = layer.forward(&x, CodesignMode::Train, 2);
        assert_eq!(a, a2, "same seed must reproduce");
        assert!(a.distance(&b) > 0.0, "different seeds must differ");
    }

    #[test]
    fn low_temperature_approaches_hard_argmax() {
        let mut layer = small_layer(8);
        // Give every pixel an unambiguous winning level with a clear margin.
        let pixels = layer.num_pixels();
        for p in 0..pixels {
            for l in 0..8 {
                layer.logits_mut()[p * 8 + l] = if l == p % 8 { 2.0 } else { 0.0 };
            }
        }
        let x = test_input();
        let (hard, _) = layer.forward(&x, CodesignMode::Deploy, 0);
        layer.set_temperature(0.05);
        let (soft, _) = layer.forward(&x, CodesignMode::Soft, 0);
        assert!(
            soft.distance(&hard) < 1e-3 * hard.total_power().sqrt().max(1.0),
            "τ→0 soft forward should match deployment"
        );
    }

    #[test]
    fn logit_gradient_matches_finite_difference() {
        let layer = small_layer(4);
        let x = test_input();
        let n = layer.num_pixels();
        let w: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % 11) as f64 / 11.0).collect();

        let loss_of = |l: &CodesignLayer| {
            let (out, _) = l.forward(&x, CodesignMode::Soft, 0);
            out.as_slice()
                .iter()
                .zip(&w)
                .map(|(o, &wi)| wi * o.norm_sqr())
                .sum::<f64>()
        };
        let (out, cache) = layer.forward(&x, CodesignMode::Soft, 0);
        let g_out = Field::from_vec(
            6,
            6,
            out.as_slice()
                .iter()
                .zip(&w)
                .map(|(&o, &wi)| o * wi)
                .collect(),
        );
        let mut analytic = vec![0.0; layer.num_params()];
        layer.backward(&g_out, &cache, &mut analytic);

        let report = check_gradient_sampled(
            |logits: &[f64]| {
                let mut l = layer.clone();
                l.logits_mut().copy_from_slice(logits);
                loss_of(&l)
            },
            layer.logits(),
            &analytic,
            1e-6,
            24,
        );
        assert!(report.passes(1e-4), "{report:?}");
    }

    #[test]
    fn init_from_phases_deploys_to_nearest_levels() {
        let mut layer = small_layer(16);
        let phases: Vec<f64> = (0..layer.num_pixels())
            .map(|i| (i as f64 * 0.37) % std::f64::consts::TAU)
            .collect();
        layer.init_from_phases(&phases, 5.0);
        let deployed = layer.hard_phases();
        let device = layer.device().clone();
        for (&p, &d) in phases.iter().zip(&deployed) {
            assert!((device.quantize(p) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn input_gradient_directional_check() {
        let layer = small_layer(4);
        let x = test_input();
        let n = layer.num_pixels();
        let w: Vec<f64> = (0..n).map(|i| (i % 7) as f64 / 7.0).collect();
        let loss_of = |f: &Field| {
            let (out, _) = layer.forward(f, CodesignMode::Soft, 0);
            out.as_slice()
                .iter()
                .zip(&w)
                .map(|(o, &wi)| wi * o.norm_sqr())
                .sum::<f64>()
        };
        let (out, cache) = layer.forward(&x, CodesignMode::Soft, 0);
        let g_out = Field::from_vec(
            6,
            6,
            out.as_slice()
                .iter()
                .zip(&w)
                .map(|(&o, &wi)| o * wi)
                .collect(),
        );
        let mut scratch = vec![0.0; layer.num_params()];
        let g_in = layer.backward(&g_out, &cache, &mut scratch);
        let d = Field::from_fn(6, 6, |r, c| Complex64::new(0.1 * r as f64, -0.2 * c as f64));
        let h = 1e-6;
        let mut xp = x.clone();
        xp.axpy(h, &d);
        let mut xm = x.clone();
        xm.axpy(-h, &d);
        let numeric = (loss_of(&xp) - loss_of(&xm)) / (2.0 * h);
        let analytic = 2.0 * g_in.inner(&d).re;
        assert!(
            (numeric - analytic).abs() < 1e-4 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }
}
