//! The raw trainable diffractive layer (`lr.layers.diffractlayer_raw`).
//!
//! A diffractive layer does two things (paper §3.1, Fig. 4b): free-space
//! **diffraction** of the incoming wavefield over the layer distance `z`
//! (Eq. 5–7), then per-pixel **phase modulation** `U ← γ·e^{jφ}·U` (Eq. 9),
//! where the phases `φ` are the layer's trainable parameters and `γ` is the
//! paper's complex-valued regularization factor (§3.2) that rebalances
//! amplitude/phase gradient magnitudes.
//!
//! Backward passes are hand-derived Wirtinger gradients (gradient convention
//! `g = ∂L/∂ū`):
//!
//! * through modulation: `g_u = g_out · m̄`,
//! * phase parameter:    `dL/dφ = 2·Re( ḡ_out · j·out )`,
//! * through diffraction: adjoint propagation (conjugated transfer function).

use lr_optics::{Approximation, Distance, FreeSpace, Grid, PropagationScratch, Wavelength};
use lr_tensor::{Complex64, Field, FieldBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// A free-phase (hardware-unaware) trainable diffractive layer.
///
/// # Examples
///
/// ```
/// use lightridge::DiffractiveLayer;
/// use lr_optics::{Approximation, Distance, Grid, PixelPitch, Wavelength};
/// use lr_tensor::Field;
///
/// let grid = Grid::square(32, PixelPitch::from_um(36.0));
/// let layer = DiffractiveLayer::new(
///     grid,
///     Wavelength::from_nm(532.0),
///     Distance::from_mm(300.0),
///     Approximation::RayleighSommerfeld,
///     1.0,
/// );
/// let input = Field::ones(32, 32);
/// let (out, _cache) = layer.forward(&input);
/// assert_eq!(out.shape(), (32, 32));
/// ```
#[derive(Debug, Clone)]
pub struct DiffractiveLayer {
    propagator: FreeSpace,
    /// Trainable per-pixel phases (radians), row-major.
    phases: Vec<f64>,
    /// Amplitude regularization factor γ (paper §3.2).
    gamma: f64,
}

/// Per-sample forward activations needed by the backward pass.
#[derive(Debug, Clone)]
pub struct DiffractiveCache {
    /// Wavefield after diffraction, before modulation (`U²` in the paper).
    pub propagated: Field,
    /// Layer output (`U_l`), kept for the phase gradient.
    pub output: Field,
}

impl DiffractiveCache {
    /// Pre-allocates a cache for a `rows × cols` layer, for reuse through
    /// [`DiffractiveLayer::forward_into`].
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DiffractiveCache {
            propagated: Field::zeros(rows, cols),
            output: Field::zeros(rows, cols),
        }
    }
}

/// Batched per-layer activations, one plane per sample, reused across
/// training steps by the batched trace ring. Unlike the per-sample
/// [`DiffractiveCache`], only the layer **outputs** are kept: that is all
/// the batched backward pass reads (`dL/dφ` needs the output, and the
/// input gradient is pure adjoint propagation), so the batch cache skips
/// the pre-modulation copy and half the resident memory.
#[derive(Debug, Clone)]
pub struct DiffractiveBatchCache {
    /// Layer outputs, kept for the phase gradients.
    pub output: FieldBatch,
}

impl DiffractiveBatchCache {
    /// Pre-allocates a cache with room for `capacity` samples.
    pub fn with_capacity(capacity: usize, rows: usize, cols: usize) -> Self {
        DiffractiveBatchCache {
            output: FieldBatch::with_capacity(capacity, rows, cols),
        }
    }
}

impl DiffractiveLayer {
    /// Creates a layer with zero-initialized phases.
    pub fn new(
        grid: Grid,
        wavelength: Wavelength,
        distance: Distance,
        approximation: Approximation,
        gamma: f64,
    ) -> Self {
        assert!(
            gamma.is_finite() && gamma > 0.0,
            "gamma must be finite and positive"
        );
        let propagator = FreeSpace::new(grid, wavelength, distance, approximation);
        let n = grid.rows() * grid.cols();
        DiffractiveLayer {
            propagator,
            phases: vec![0.0; n],
            gamma,
        }
    }

    /// Randomizes phases uniformly in `[0, 2π)` (the usual DONN init).
    pub fn randomize_phases(&mut self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for p in &mut self.phases {
            *p = rng.gen_range(0.0..TAU);
        }
    }

    /// The layer's sampling grid.
    pub fn grid(&self) -> Grid {
        self.propagator.grid()
    }

    /// The free-space propagator feeding this layer.
    pub fn propagator(&self) -> &FreeSpace {
        &self.propagator
    }

    /// Amplitude regularization factor γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Replaces γ (used by the Fig. 7 regularization sweep).
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not finite and positive.
    pub fn set_gamma(&mut self, gamma: f64) {
        assert!(
            gamma.is_finite() && gamma > 0.0,
            "gamma must be finite and positive"
        );
        self.gamma = gamma;
    }

    /// Immutable view of the trainable phases.
    pub fn phases(&self) -> &[f64] {
        &self.phases
    }

    /// Mutable view of the trainable phases (the optimizer's target).
    pub fn phases_mut(&mut self) -> &mut [f64] {
        &mut self.phases
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.phases.len()
    }

    /// Current phase mask as a field of unit phasors `γ·e^{jφ}`.
    pub fn modulation_field(&self) -> Field {
        let (rows, cols) = self.grid().shape();
        let gamma = self.gamma;
        Field::from_vec(
            rows,
            cols,
            self.phases
                .iter()
                .map(|&p| Complex64::cis(p) * gamma)
                .collect(),
        )
    }

    /// Forward pass: diffract, then modulate. Returns the output field and
    /// the cache needed by [`DiffractiveLayer::backward`].
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the layer grid.
    pub fn forward(&self, input: &Field) -> (Field, DiffractiveCache) {
        let mut u = input.clone();
        self.propagator.propagate(&mut u);
        let propagated = u.clone();
        self.modulate_inplace(&mut u);
        let output = u.clone();
        (u, DiffractiveCache { propagated, output })
    }

    /// Inference-only forward pass (no cache).
    pub fn infer(&self, input: &Field) -> Field {
        let mut u = input.clone();
        self.propagator.propagate(&mut u);
        self.modulate_inplace(&mut u);
        u
    }

    /// Applies the phase modulation `U ← γ·e^{jφ}·U` in place.
    #[inline]
    fn modulate_inplace(&self, u: &mut Field) {
        self.modulate_slice(u.as_mut_slice());
    }

    /// The modulation kernel on one raw plane — shared by the per-sample
    /// and batched paths.
    #[inline]
    fn modulate_slice(&self, u: &mut [Complex64]) {
        let gamma = self.gamma;
        for (z, &phi) in u.iter_mut().zip(&self.phases) {
            *z *= Complex64::cis(phi) * gamma;
        }
    }

    /// In-place inference step through caller-owned scratch: diffract and
    /// modulate `u` with **zero heap allocation** (the workspace fast path).
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer grid.
    pub fn infer_inplace(&self, u: &mut Field, scratch: &mut PropagationScratch) {
        self.propagator.propagate_with(u, scratch);
        self.modulate_inplace(u);
    }

    /// Forward pass through caller-owned scratch and a reusable cache: `u`
    /// is transformed in place into the layer output, and the per-sample
    /// activations are *copied into* `cache` instead of freshly allocated.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer grid.
    pub fn forward_into(
        &self,
        u: &mut Field,
        cache: &mut DiffractiveCache,
        scratch: &mut PropagationScratch,
    ) {
        self.propagator.propagate_with(u, scratch);
        if cache.propagated.shape() != u.shape() {
            *cache = DiffractiveCache::zeros(u.rows(), u.cols());
        }
        cache.propagated.copy_from(u);
        self.modulate_inplace(u);
        cache.output.copy_from(u);
    }

    /// Forward pass transforming `u` in place and returning a fresh cache —
    /// the trace-building fast path ([`crate::DonnModel::forward_trace_with`]).
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer grid.
    pub fn forward_through(
        &self,
        u: &mut Field,
        scratch: &mut PropagationScratch,
    ) -> DiffractiveCache {
        self.propagator.propagate_with(u, scratch);
        let propagated = u.clone();
        self.modulate_inplace(u);
        DiffractiveCache {
            propagated,
            output: u.clone(),
        }
    }

    /// Batched inference step: diffract and modulate **every active
    /// plane** of `batch` in place through one shared scratch — the
    /// batched counterpart of [`DiffractiveLayer::infer_inplace`],
    /// bit-identical to it per plane (shared plane kernels) and free of
    /// steady-state allocations.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer grid.
    pub fn infer_batch_inplace(&self, batch: &mut FieldBatch, scratch: &mut PropagationScratch) {
        self.propagator.propagate_batch_into(batch, scratch);
        for plane in batch.planes_mut() {
            self.modulate_slice(plane);
        }
    }

    /// Batched trace-building forward pass: transforms every active plane
    /// of `batch` in place and copies the per-sample activations into the
    /// reusable batch `cache` — the batched counterpart of
    /// [`DiffractiveLayer::forward_into`] (allocation-free once the cache
    /// capacity covers the batch).
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer grid.
    pub fn forward_batch_traced(
        &self,
        batch: &mut FieldBatch,
        cache: &mut DiffractiveBatchCache,
        scratch: &mut PropagationScratch,
    ) {
        self.propagator.propagate_batch_into(batch, scratch);
        for plane in batch.planes_mut() {
            self.modulate_slice(plane);
        }
        cache.output.copy_from(batch);
    }

    /// Batched [`DiffractiveLayer::backward_inplace`]: every active plane
    /// of `grad` enters as `∂L/∂(output)̄` and leaves as `∂L/∂(input)̄`;
    /// `phase_grads` accumulates `dL/dφ` summed over the batch in plane
    /// order (bit-identical to the per-sample accumulation order). No
    /// per-sample allocation.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the layer grid, the cache does not
    /// cover the batch, or `phase_grads` has the wrong length.
    pub fn backward_batch_inplace(
        &self,
        grad: &mut FieldBatch,
        cache: &DiffractiveBatchCache,
        phase_grads: &mut [f64],
        scratch: &mut PropagationScratch,
    ) {
        assert_eq!(
            grad.batch(),
            cache.output.batch(),
            "gradient/cache batch mismatch"
        );
        assert_eq!(
            grad.plane_shape(),
            self.grid().shape(),
            "gradient shape mismatch"
        );
        assert_eq!(
            phase_grads.len(),
            self.phases.len(),
            "phase gradient buffer length mismatch"
        );
        for b in 0..grad.batch() {
            let g = grad.plane_mut(b);
            let out = cache.output.plane(b);
            for ((g, &out), acc) in g.iter().zip(out).zip(phase_grads.iter_mut()) {
                *acc += 2.0 * (g.conj() * (Complex64::I * out)).re;
            }
            self.backprop_modulation_slice(g);
        }
        self.propagator.adjoint_batch_into(grad, scratch);
    }

    /// Backward pass.
    ///
    /// `grad_output` is `∂L/∂(output)̄`; `phase_grads` accumulates `dL/dφ`
    /// (`+=`, so batches can share a buffer); the return value is
    /// `∂L/∂(input)̄` for the upstream layer.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the layer grid or `phase_grads` has
    /// the wrong length.
    pub fn backward(
        &self,
        grad_output: &Field,
        cache: &DiffractiveCache,
        phase_grads: &mut [f64],
    ) -> Field {
        let mut g_in = grad_output.clone();
        self.accumulate_phase_grads(grad_output, cache, phase_grads);
        self.backprop_modulation(&mut g_in);
        self.propagator.adjoint(&mut g_in);
        g_in
    }

    /// [`DiffractiveLayer::backward`] operating on the gradient **in
    /// place** through caller-owned scratch — no per-sample allocation.
    /// `grad` enters as `∂L/∂(output)̄` and leaves as `∂L/∂(input)̄`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the layer grid or `phase_grads` has
    /// the wrong length.
    pub fn backward_inplace(
        &self,
        grad: &mut Field,
        cache: &DiffractiveCache,
        phase_grads: &mut [f64],
        scratch: &mut PropagationScratch,
    ) {
        self.accumulate_phase_grads(grad, cache, phase_grads);
        self.backprop_modulation(grad);
        self.propagator.adjoint_with(grad, scratch);
    }

    /// `dL/dφ_p += 2·Re( conj(g_p) · j · out_p )`.
    fn accumulate_phase_grads(
        &self,
        grad_output: &Field,
        cache: &DiffractiveCache,
        phase_grads: &mut [f64],
    ) {
        assert_eq!(
            grad_output.shape(),
            self.grid().shape(),
            "gradient shape mismatch"
        );
        assert_eq!(
            phase_grads.len(),
            self.phases.len(),
            "phase gradient buffer length mismatch"
        );
        for ((g, &out), acc) in grad_output
            .as_slice()
            .iter()
            .zip(cache.output.as_slice())
            .zip(phase_grads.iter_mut())
        {
            *acc += 2.0 * (g.conj() * (Complex64::I * out)).re;
        }
    }

    /// `g_u = g_out · conj(m)`, `m = γ e^{jφ}`, in place.
    fn backprop_modulation(&self, g: &mut Field) {
        self.backprop_modulation_slice(g.as_mut_slice());
    }

    /// The modulation-adjoint kernel on one raw plane.
    #[inline]
    fn backprop_modulation_slice(&self, g: &mut [Complex64]) {
        let gamma = self.gamma;
        for (g, &phi) in g.iter_mut().zip(&self.phases) {
            *g *= Complex64::cis(-phi) * gamma;
        }
    }

    /// The deployment view of this layer: its phases quantized to a device's
    /// nearest levels (post-training quantization, the paper's *raw* flow).
    pub fn quantized_phases(&self, device: &lr_hardware::SlmModel) -> Vec<f64> {
        device.quantize_mask(&self.phases).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_nn::gradcheck::check_gradient_sampled;
    use lr_optics::PixelPitch;

    fn small_layer() -> DiffractiveLayer {
        let grid = Grid::square(8, PixelPitch::from_um(36.0));
        let mut l = DiffractiveLayer::new(
            grid,
            Wavelength::from_nm(532.0),
            Distance::from_mm(30.0),
            Approximation::RayleighSommerfeld,
            1.0,
        );
        l.randomize_phases(11);
        l
    }

    fn test_input() -> Field {
        Field::from_fn(8, 8, |r, c| {
            Complex64::new((r as f64 * 0.3).sin() + 0.5, (c as f64 * 0.2).cos())
        })
    }

    /// Scalar "loss" for gradient testing: L = Σ w_p·|out_p|² with fixed
    /// random-ish weights, so dL/d(out*)_p = w_p·out_p.
    fn toy_loss_weights(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37 + 11) % 17) as f64 / 17.0).collect()
    }

    #[test]
    fn forward_preserves_shape_and_is_finite() {
        let layer = small_layer();
        let (out, cache) = layer.forward(&test_input());
        assert_eq!(out.shape(), (8, 8));
        assert!(out.is_finite());
        assert_eq!(cache.propagated.shape(), (8, 8));
        assert_eq!(out, cache.output);
    }

    #[test]
    fn infer_matches_forward() {
        let layer = small_layer();
        let x = test_input();
        let (out, _) = layer.forward(&x);
        assert_eq!(layer.infer(&x), out);
    }

    #[test]
    fn workspace_paths_match_forward() {
        // infer_inplace, forward_into (reusable cache), and forward_through
        // must all reproduce the allocating forward pass bit for bit.
        let layer = small_layer();
        let x = test_input();
        let (out, cache) = layer.forward(&x);
        let mut scratch = layer.propagator().make_scratch();

        let mut u = x.clone();
        layer.infer_inplace(&mut u, &mut scratch);
        assert_eq!(u, out);

        let mut u = x.clone();
        let mut reused = DiffractiveCache::zeros(8, 8);
        layer.forward_into(&mut u, &mut reused, &mut scratch);
        assert_eq!(u, out);
        assert_eq!(reused.propagated, cache.propagated);
        assert_eq!(reused.output, cache.output);
        // Second sample through the same cache buffers (the reuse contract).
        let mut u2 = out.clone();
        layer.forward_into(&mut u2, &mut reused, &mut scratch);
        assert_eq!(reused.output, u2);

        let mut u = x.clone();
        let through = layer.forward_through(&mut u, &mut scratch);
        assert_eq!(u, out);
        assert_eq!(through.propagated, cache.propagated);
    }

    #[test]
    fn gamma_scales_output_linearly() {
        let mut layer = small_layer();
        let x = test_input();
        let (out1, _) = layer.forward(&x);
        layer.set_gamma(2.0);
        let (out2, _) = layer.forward(&x);
        for (a, b) in out1.as_slice().iter().zip(out2.as_slice()) {
            assert!((*a * 2.0 - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn phase_gradient_matches_finite_difference() {
        let layer = small_layer();
        let x = test_input();
        let w = toy_loss_weights(64);

        // Analytic gradient.
        let (out, cache) = layer.forward(&x);
        let g_out = Field::from_vec(
            8,
            8,
            out.as_slice()
                .iter()
                .zip(&w)
                .map(|(&o, &wi)| o * wi)
                .collect(),
        );
        let mut analytic = vec![0.0; 64];
        layer.backward(&g_out, &cache, &mut analytic);

        // Numeric: perturb each phase, recompute loss.
        let loss = |phases: &[f64]| {
            let mut l = layer.clone();
            l.phases_mut().copy_from_slice(phases);
            let (out, _) = l.forward(&x);
            out.as_slice()
                .iter()
                .zip(&w)
                .map(|(o, &wi)| wi * o.norm_sqr())
                .sum::<f64>()
        };
        let report = check_gradient_sampled(loss, layer.phases(), &analytic, 1e-6, 16);
        assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn input_gradient_matches_directional_finite_difference() {
        // Check ∂L/∂u via a directional derivative along a complex direction.
        let layer = small_layer();
        let x = test_input();
        let w = toy_loss_weights(64);
        let loss_of = |field: &Field| {
            let (out, _) = layer.forward(field);
            out.as_slice()
                .iter()
                .zip(&w)
                .map(|(o, &wi)| wi * o.norm_sqr())
                .sum::<f64>()
        };
        let (out, cache) = layer.forward(&x);
        let g_out = Field::from_vec(
            8,
            8,
            out.as_slice()
                .iter()
                .zip(&w)
                .map(|(&o, &wi)| o * wi)
                .collect(),
        );
        let mut scratch = vec![0.0; 64];
        let g_in = layer.backward(&g_out, &cache, &mut scratch);

        // Direction d: an arbitrary complex perturbation field.
        let d = Field::from_fn(8, 8, |r, c| {
            Complex64::new(0.3 * (r as f64 - 3.0), 0.2 * (c as f64 - 4.0))
        });
        let h = 1e-6;
        let mut xp = x.clone();
        xp.axpy(h, &d);
        let mut xm = x.clone();
        xm.axpy(-h, &d);
        let numeric = (loss_of(&xp) - loss_of(&xm)) / (2.0 * h);
        // dL along direction d = 2·Re⟨g_in, d⟩.
        let analytic = 2.0 * g_in.inner(&d).re;
        assert!(
            (numeric - analytic).abs() < 1e-4 * (1.0 + numeric.abs()),
            "directional derivative mismatch: numeric {numeric}, analytic {analytic}"
        );
    }

    #[test]
    fn zero_phase_layer_is_pure_propagation() {
        let grid = Grid::square(8, PixelPitch::from_um(36.0));
        let layer = DiffractiveLayer::new(
            grid,
            Wavelength::from_nm(532.0),
            Distance::from_mm(30.0),
            Approximation::Fresnel,
            1.0,
        );
        let x = test_input();
        let (out, cache) = layer.forward(&x);
        assert!(out.distance(&cache.propagated) < 1e-12);
    }

    #[test]
    fn randomize_is_deterministic_per_seed() {
        let mut a = small_layer();
        let mut b = small_layer();
        a.randomize_phases(5);
        b.randomize_phases(5);
        assert_eq!(a.phases(), b.phases());
        b.randomize_phases(6);
        assert_ne!(a.phases(), b.phases());
        assert!(a.phases().iter().all(|&p| (0.0..TAU).contains(&p)));
    }

    #[test]
    fn modulation_field_unit_magnitude_at_gamma_one() {
        let layer = small_layer();
        let m = layer.modulation_field();
        for z in m.as_slice() {
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quantized_phases_close_to_free_phases() {
        let layer = small_layer();
        let device = lr_hardware::SlmModel::ideal(256);
        let q = layer.quantized_phases(&device);
        for (&free, &quant) in layer.phases().iter().zip(&q) {
            assert!(lr_hardware::circular_distance(free, quant) < TAU / 256.0);
        }
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        let grid = Grid::square(4, PixelPitch::from_um(36.0));
        let _ = DiffractiveLayer::new(
            grid,
            Wavelength::from_nm(532.0),
            Distance::from_mm(30.0),
            Approximation::Fresnel,
            0.0,
        );
    }
}
