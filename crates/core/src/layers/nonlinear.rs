//! Optical nonlinearity layer (paper §6 future work).
//!
//! All-optical nonlinear activation can be realized with saturable-absorber
//! materials (crystals, polymers, graphene): transmission grows with
//! incident intensity. We model the standard saturable-absorber
//! transmission
//!
//! ```text
//! t(I) = α + (1 − α)·I/(I + I_sat),   out = t(|u|²)·u
//! ```
//!
//! with linear (low-power) transmission `α` and saturation intensity
//! `I_sat`. The layer has no trainable parameters; its value is the
//! nonlinearity it adds between diffractive layers, lifting the
//! linear-optics limitation the paper discusses.
//!
//! The Wirtinger backward pass for `out = u·t(u·ū)` is
//!
//! ```text
//! g_u = conj(g_out)·t'(I)·u² + g_out·(t(I) + t'(I)·I)
//! ```
//!
//! where `g = ∂L/∂ū` and `t'(I) = (1 − α)·I_sat/(I + I_sat)²`.

use lr_tensor::{Field, FieldBatch};

/// A saturable-absorber nonlinear optical layer.
///
/// # Examples
///
/// ```
/// use lightridge::SaturableAbsorber;
/// use lr_tensor::{Complex64, Field};
///
/// let sa = SaturableAbsorber::new(0.2, 1.0);
/// let weak = Field::filled(2, 2, Complex64::new(0.05, 0.0));
/// let strong = Field::filled(2, 2, Complex64::new(10.0, 0.0));
/// let (w_out, _) = sa.forward(&weak);
/// let (s_out, _) = sa.forward(&strong);
/// // Weak light is attenuated toward α, strong light passes.
/// assert!(w_out[(0, 0)].re / 0.05 < 0.3);
/// assert!(s_out[(0, 0)].re / 10.0 > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SaturableAbsorber {
    alpha: f64,
    saturation: f64,
}

/// Forward activations cached for the backward pass.
#[derive(Debug, Clone)]
pub struct NonlinearCache {
    /// The input field.
    pub input: Field,
}

/// Batched forward activations: one input plane per sample.
#[derive(Debug, Clone)]
pub struct NonlinearBatchCache {
    /// The input planes.
    pub input: FieldBatch,
}

impl NonlinearBatchCache {
    /// Pre-allocates a cache with room for `capacity` samples.
    pub fn with_capacity(capacity: usize, rows: usize, cols: usize) -> Self {
        NonlinearBatchCache {
            input: FieldBatch::with_capacity(capacity, rows, cols),
        }
    }
}

impl SaturableAbsorber {
    /// Creates an absorber with low-power transmission `alpha ∈ (0, 1]`
    /// and saturation intensity `saturation > 0`.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of range.
    pub fn new(alpha: f64, saturation: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(
            saturation > 0.0 && saturation.is_finite(),
            "saturation must be positive"
        );
        SaturableAbsorber { alpha, saturation }
    }

    /// Low-power transmission α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Saturation intensity.
    pub fn saturation(&self) -> f64 {
        self.saturation
    }

    /// Transmission at intensity `i`.
    #[inline]
    pub fn transmission(&self, i: f64) -> f64 {
        self.alpha + (1.0 - self.alpha) * i / (i + self.saturation)
    }

    /// Derivative `dt/dI` at intensity `i`.
    #[inline]
    fn transmission_prime(&self, i: f64) -> f64 {
        (1.0 - self.alpha) * self.saturation / (i + self.saturation).powi(2)
    }

    /// Forward pass: `out = t(|u|²)·u`.
    pub fn forward(&self, input: &Field) -> (Field, NonlinearCache) {
        let out = input.map(|u| u * self.transmission(u.norm_sqr()));
        (
            out,
            NonlinearCache {
                input: input.clone(),
            },
        )
    }

    /// In-place inference step (elementwise, allocation-free).
    pub fn infer_inplace(&self, u: &mut Field) {
        u.map_inplace(|z| z * self.transmission(z.norm_sqr()));
    }

    /// Forward pass transforming `u` in place and returning a fresh cache —
    /// the trace-building fast path.
    pub fn forward_through(&self, u: &mut Field) -> NonlinearCache {
        let cache = NonlinearCache { input: u.clone() };
        self.infer_inplace(u);
        cache
    }

    /// [`SaturableAbsorber::forward_through`] reusing a caller-owned cache
    /// (allocation-free once the cache field matches `u`'s shape).
    pub fn forward_into(&self, u: &mut Field, cache: &mut NonlinearCache) {
        if cache.input.shape() != u.shape() {
            cache.input = Field::zeros(u.rows(), u.cols());
        }
        cache.input.copy_from(u);
        self.infer_inplace(u);
    }

    /// Batched inference step: the saturable transmission applied to every
    /// active plane in place (elementwise, allocation-free, bit-identical
    /// per plane to [`SaturableAbsorber::infer_inplace`]).
    pub fn infer_batch_inplace(&self, batch: &mut FieldBatch) {
        batch.map_inplace(|z| z * self.transmission(z.norm_sqr()));
    }

    /// Batched trace-building forward pass reusing a caller-owned cache.
    pub fn forward_batch_traced(&self, batch: &mut FieldBatch, cache: &mut NonlinearBatchCache) {
        cache.input.copy_from(batch);
        self.infer_batch_inplace(batch);
    }

    /// Batched backward pass operating on the gradient **in place**: every
    /// active plane enters as `∂L/∂(output)̄` and leaves as `∂L/∂(input)̄`.
    /// Unlike the per-sample [`SaturableAbsorber::backward`], no gradient
    /// field is allocated.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not match the gradient batch.
    pub fn backward_batch_inplace(&self, grad: &mut FieldBatch, cache: &NonlinearBatchCache) {
        assert_eq!(
            grad.batch(),
            cache.input.batch(),
            "gradient/cache batch mismatch"
        );
        assert_eq!(
            grad.plane_shape(),
            cache.input.plane_shape(),
            "gradient shape mismatch"
        );
        for (g, &u) in grad.as_mut_slice().iter_mut().zip(cache.input.as_slice()) {
            let i = u.norm_sqr();
            let t = self.transmission(i);
            let tp = self.transmission_prime(i);
            *g = g.conj() * (u * u) * tp + *g * (t + tp * i);
        }
    }

    /// Backward pass: returns `∂L/∂(input)̄` from `∂L/∂(output)̄`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn backward(&self, grad_output: &Field, cache: &NonlinearCache) -> Field {
        assert_eq!(
            grad_output.shape(),
            cache.input.shape(),
            "gradient shape mismatch"
        );
        let (rows, cols) = cache.input.shape();
        let data = grad_output
            .as_slice()
            .iter()
            .zip(cache.input.as_slice())
            .map(|(&g, &u)| {
                let i = u.norm_sqr();
                let t = self.transmission(i);
                let tp = self.transmission_prime(i);
                g.conj() * (u * u) * tp + g * (t + tp * i)
            })
            .collect();
        Field::from_vec(rows, cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_tensor::Complex64;

    fn absorber() -> SaturableAbsorber {
        SaturableAbsorber::new(0.3, 2.0)
    }

    #[test]
    fn transmission_monotone_and_bounded() {
        let sa = absorber();
        let mut last = 0.0;
        for k in 0..50 {
            let i = k as f64 * 0.5;
            let t = sa.transmission(i);
            assert!(t >= sa.alpha() - 1e-12 && t <= 1.0);
            assert!(t >= last, "transmission must be monotone in intensity");
            last = t;
        }
        assert!((sa.transmission(0.0) - 0.3).abs() < 1e-12);
        assert!(sa.transmission(1e9) > 0.999);
    }

    #[test]
    fn forward_scales_amplitude_only() {
        let sa = absorber();
        let u = Field::filled(2, 2, Complex64::from_polar(2.0, 0.7));
        let (out, _) = sa.forward(&u);
        for z in out.as_slice() {
            // Phase untouched.
            assert!((z.arg() - 0.7).abs() < 1e-12);
            // Amplitude scaled by t(4).
            assert!((z.norm() - 2.0 * sa.transmission(4.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn backward_matches_directional_finite_difference() {
        let sa = absorber();
        let u = Field::from_fn(4, 4, |r, c| {
            Complex64::new(0.5 + 0.2 * r as f64, -0.3 + 0.15 * c as f64)
        });
        // Loss L = Σ w_p |out_p|².
        let w: Vec<f64> = (0..16).map(|i| ((i * 5 + 3) % 7) as f64 / 7.0).collect();
        let loss_of = |f: &Field| -> f64 {
            let (out, _) = sa.forward(f);
            out.as_slice()
                .iter()
                .zip(&w)
                .map(|(o, &wi)| wi * o.norm_sqr())
                .sum()
        };
        let (out, cache) = sa.forward(&u);
        let g_out = Field::from_vec(
            4,
            4,
            out.as_slice()
                .iter()
                .zip(&w)
                .map(|(&o, &wi)| o * wi)
                .collect(),
        );
        let g_in = sa.backward(&g_out, &cache);

        let d = Field::from_fn(4, 4, |r, c| {
            Complex64::new(0.1 * (c as f64 - 1.5), 0.07 * r as f64)
        });
        let h = 1e-6;
        let mut up = u.clone();
        up.axpy(h, &d);
        let mut um = u.clone();
        um.axpy(-h, &d);
        let numeric = (loss_of(&up) - loss_of(&um)) / (2.0 * h);
        let analytic = 2.0 * g_in.inner(&d).re;
        assert!(
            (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn identity_at_alpha_one() {
        let sa = SaturableAbsorber::new(1.0, 1.0);
        let u = Field::from_fn(3, 3, |r, c| Complex64::new(r as f64, c as f64));
        let (out, _) = sa.forward(&u);
        assert!(out.distance(&u) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        let _ = SaturableAbsorber::new(0.0, 1.0);
    }
}
