//! Detector plane (`lr.layers.detector`).
//!
//! The detector is the analog→digital boundary of a DONN: it captures the
//! light-intensity pattern and, for classification, sums the intensity in
//! one pre-defined region per class (paper §2.1). The class whose region
//! collects the most light is the prediction; `Softmax` of the region sums
//! feeds the MSE training loss.

use lr_tensor::{Complex64, Field, FieldBatch};

/// One rectangular detector region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectorRegion {
    /// Top row (inclusive).
    pub row: usize,
    /// Left column (inclusive).
    pub col: usize,
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
}

impl DetectorRegion {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty.
    pub fn new(row: usize, col: usize, height: usize, width: usize) -> Self {
        assert!(height > 0 && width > 0, "detector region must be non-empty");
        DetectorRegion {
            row,
            col,
            height,
            width,
        }
    }

    /// True if `(r, c)` lies inside this region.
    pub fn contains(&self, r: usize, c: usize) -> bool {
        r >= self.row && r < self.row + self.height && c >= self.col && c < self.col + self.width
    }

    /// Region area in pixels.
    pub fn area(&self) -> usize {
        self.height * self.width
    }
}

/// A classification detector: one region per class on a `rows × cols`
/// plane.
///
/// # Examples
///
/// ```
/// use lightridge::Detector;
/// use lr_tensor::Field;
///
/// let det = Detector::grid_layout(64, 64, 10, 6);
/// assert_eq!(det.num_classes(), 10);
/// let logits = det.read(&Field::ones(64, 64));
/// assert_eq!(logits.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Detector {
    rows: usize,
    cols: usize,
    regions: Vec<DetectorRegion>,
}

impl Detector {
    /// Creates a detector from explicit regions (the paper's
    /// `x_loc`/`y_loc`/`det_size` interface).
    ///
    /// # Panics
    ///
    /// Panics if there are no regions, a region exceeds the plane, or two
    /// regions overlap.
    pub fn new(rows: usize, cols: usize, regions: Vec<DetectorRegion>) -> Self {
        assert!(!regions.is_empty(), "detector needs at least one region");
        for (i, r) in regions.iter().enumerate() {
            assert!(
                r.row + r.height <= rows && r.col + r.width <= cols,
                "region {i} exceeds the detector plane"
            );
            for (j, other) in regions.iter().enumerate().take(i) {
                let disjoint = r.row + r.height <= other.row
                    || other.row + other.height <= r.row
                    || r.col + r.width <= other.col
                    || other.col + other.width <= r.col;
                assert!(disjoint, "regions {j} and {i} overlap");
            }
        }
        Detector {
            rows,
            cols,
            regions,
        }
    }

    /// Builds the paper's standard layout: `num_classes` square regions of
    /// side `det_size`, placed evenly on a centered grid (2 rows of 5 for 10
    /// classes).
    ///
    /// # Panics
    ///
    /// Panics if the layout does not fit the plane.
    pub fn grid_layout(rows: usize, cols: usize, num_classes: usize, det_size: usize) -> Self {
        assert!(
            num_classes > 0 && det_size > 0,
            "need classes and a region size"
        );
        // Choose a near-square arrangement: r_rows × r_cols ≥ num_classes.
        let r_cols = (num_classes as f64).sqrt().ceil() as usize;
        let r_rows = num_classes.div_ceil(r_cols);
        let cell_h = rows / (r_rows + 1);
        let cell_w = cols / (r_cols + 1);
        assert!(
            cell_h >= det_size && cell_w >= det_size,
            "detector layout does not fit: {num_classes} classes of {det_size}px on {rows}x{cols}"
        );
        let mut regions = Vec::with_capacity(num_classes);
        for k in 0..num_classes {
            let gr = k / r_cols;
            let gc = k % r_cols;
            let center_r = (gr + 1) * rows / (r_rows + 1);
            let center_c = (gc + 1) * cols / (r_cols + 1);
            regions.push(DetectorRegion::new(
                center_r - det_size / 2,
                center_c - det_size / 2,
                det_size,
                det_size,
            ));
        }
        Detector::new(rows, cols, regions)
    }

    /// Plane shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of classes (regions).
    pub fn num_classes(&self) -> usize {
        self.regions.len()
    }

    /// The regions.
    pub fn regions(&self) -> &[DetectorRegion] {
        &self.regions
    }

    /// Reads the class logits: per-region intensity sums `I_k = Σ |U_p|²`.
    ///
    /// # Panics
    ///
    /// Panics if the field shape does not match the detector plane.
    pub fn read(&self, field: &Field) -> Vec<f64> {
        let mut logits = Vec::with_capacity(self.regions.len());
        self.read_into(field, &mut logits);
        logits
    }

    /// [`Detector::read`] into a caller-owned buffer — allocation-free once
    /// `out` has warmed up to `num_classes` capacity.
    ///
    /// # Panics
    ///
    /// Panics if the field shape does not match the detector plane.
    pub fn read_into(&self, field: &Field, out: &mut Vec<f64>) {
        assert_eq!(
            field.shape(),
            (self.rows, self.cols),
            "field/detector shape mismatch"
        );
        self.read_plane_into(field.as_slice(), out);
    }

    /// [`Detector::read_into`] on one raw row-major plane — the shared
    /// readout kernel behind the per-sample and batched paths (a plane of
    /// a [`FieldBatch`] has no `Field` wrapper).
    ///
    /// Each region row reduces through [`lr_tensor::simd::sum_norm_sqr`],
    /// vectorized at the runtime SIMD dispatch level. The lane-partial
    /// reduction re-associates the sum, so readout is the one entry point
    /// whose equivalence contract is tolerance-based rather than bitwise:
    /// scalar dispatch (`LR_SIMD=scalar`) is the exact sequential oracle
    /// and wider dispatch agrees within ≤1e-12 relative error. Batched and
    /// per-sample readout share this kernel, so they remain exactly equal
    /// to *each other* at every dispatch level.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != rows·cols`.
    pub fn read_plane_into(&self, samples: &[Complex64], out: &mut Vec<f64>) {
        assert_eq!(
            samples.len(),
            self.rows * self.cols,
            "plane/detector length mismatch"
        );
        out.clear();
        for reg in &self.regions {
            let mut sum = 0.0;
            for r in reg.row..reg.row + reg.height {
                let start = r * self.cols + reg.col;
                sum += lr_tensor::simd::sum_norm_sqr(&samples[start..start + reg.width]);
            }
            out.push(sum);
        }
    }

    /// Batched readout: one logit vector per active plane, written into
    /// the matching `outputs` slot (allocation-free once each output has
    /// `num_classes` capacity).
    ///
    /// # Panics
    ///
    /// Panics if plane shapes mismatch or `outputs` does not cover the
    /// batch.
    pub fn read_batch_into(&self, batch: &FieldBatch, outputs: &mut [Vec<f64>]) {
        assert!(
            outputs.len() >= batch.batch(),
            "one output slot per batch plane"
        );
        for (b, out) in outputs.iter_mut().enumerate().take(batch.batch()) {
            self.read_plane_into(batch.plane(b), out);
        }
    }

    /// Reads logits from a *measured intensity image* (post-camera), for
    /// hardware-emulation paths where noise was applied to the intensity.
    ///
    /// # Panics
    ///
    /// Panics if `intensity.len() != rows*cols`.
    pub fn read_intensity(&self, intensity: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.regions.len());
        self.read_intensity_into(intensity, &mut out);
        out
    }

    /// [`Detector::read_intensity`] into a caller-owned buffer —
    /// allocation-free once `out` has warmed up to `num_classes` capacity.
    ///
    /// # Panics
    ///
    /// Panics if `intensity.len() != rows*cols`.
    pub fn read_intensity_into(&self, intensity: &[f64], out: &mut Vec<f64>) {
        assert_eq!(
            intensity.len(),
            self.rows * self.cols,
            "intensity buffer length mismatch"
        );
        out.clear();
        out.extend(self.regions.iter().map(|reg| {
            let mut sum = 0.0;
            for r in reg.row..reg.row + reg.height {
                for c in reg.col..reg.col + reg.width {
                    sum += intensity[r * self.cols + c];
                }
            }
            sum
        }));
    }

    /// Backward pass: expands per-class gradients `dL/dI_k` into the field
    /// gradient `∂L/∂(U)̄ = dL/dI_p · U_p` (zero outside regions).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn backward(&self, field: &Field, logit_grads: &[f64]) -> Field {
        let mut g = Field::zeros(self.rows, self.cols);
        self.backward_into(field, logit_grads, &mut g);
        g
    }

    /// [`Detector::backward`] into a caller-owned field (allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn backward_into(&self, field: &Field, logit_grads: &[f64], out: &mut Field) {
        assert_eq!(
            field.shape(),
            (self.rows, self.cols),
            "field/detector shape mismatch"
        );
        assert_eq!(
            out.shape(),
            (self.rows, self.cols),
            "gradient/detector shape mismatch"
        );
        self.backward_plane_into(field.as_slice(), logit_grads, out.as_mut_slice());
    }

    /// [`Detector::backward_into`] on raw row-major planes — the shared
    /// kernel behind the per-sample and batched backward paths.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the detector plane.
    pub fn backward_plane_into(
        &self,
        samples: &[Complex64],
        logit_grads: &[f64],
        out: &mut [Complex64],
    ) {
        assert_eq!(
            samples.len(),
            self.rows * self.cols,
            "plane/detector length mismatch"
        );
        assert_eq!(
            out.len(),
            self.rows * self.cols,
            "gradient/detector length mismatch"
        );
        assert_eq!(
            logit_grads.len(),
            self.regions.len(),
            "logit gradient length mismatch"
        );
        out.fill(Complex64::ZERO);
        for (reg, &dl) in self.regions.iter().zip(logit_grads) {
            for r in reg.row..reg.row + reg.height {
                for c in reg.col..reg.col + reg.width {
                    out[r * self.cols + c] = samples[r * self.cols + c] * dl;
                }
            }
        }
    }

    /// Fraction of the plane covered by detector regions — the
    /// under-utilization observation that motivates the segmentation
    /// architecture (paper §5.6.2).
    pub fn coverage(&self) -> f64 {
        let used: usize = self.regions.iter().map(DetectorRegion::area).sum();
        used as f64 / (self.rows * self.cols) as f64
    }
}

/// Whole-plane intensity readout for image-to-image tasks (segmentation):
/// `I_p = |U_p|²` with backward `∂L/∂(U)̄ = dL/dI ⊙ U`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaneReadout;

impl PlaneReadout {
    /// Reads the full intensity image.
    pub fn read(&self, field: &Field) -> Vec<f64> {
        field.intensity()
    }

    /// Backward pass from per-pixel intensity gradients.
    ///
    /// # Panics
    ///
    /// Panics if `intensity_grads.len()` does not match the field.
    pub fn backward(&self, field: &Field, intensity_grads: &[f64]) -> Field {
        assert_eq!(
            intensity_grads.len(),
            field.len(),
            "gradient length mismatch"
        );
        let (rows, cols) = field.shape();
        let data = field
            .as_slice()
            .iter()
            .zip(intensity_grads)
            .map(|(&u, &g)| u * g)
            .collect::<Vec<Complex64>>();
        Field::from_vec(rows, cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_layout_ten_classes() {
        let det = Detector::grid_layout(64, 64, 10, 6);
        assert_eq!(det.num_classes(), 10);
        for reg in det.regions() {
            assert_eq!(reg.area(), 36);
        }
        assert!(
            det.coverage() < 0.15,
            "classification detectors underuse the plane"
        );
    }

    #[test]
    fn read_sums_region_intensity() {
        let det = Detector::new(
            8,
            8,
            vec![
                DetectorRegion::new(0, 0, 2, 2),
                DetectorRegion::new(4, 4, 2, 2),
            ],
        );
        let mut f = Field::zeros(8, 8);
        f[(0, 0)] = Complex64::new(2.0, 0.0); // intensity 4
        f[(1, 1)] = Complex64::new(0.0, 1.0); // intensity 1
        f[(5, 5)] = Complex64::new(3.0, 4.0); // intensity 25
        f[(7, 7)] = Complex64::new(9.0, 0.0); // outside all regions
        let logits = det.read(&f);
        assert_eq!(logits, vec![5.0, 25.0]);
    }

    #[test]
    fn read_intensity_matches_read() {
        let det = Detector::grid_layout(16, 16, 4, 3);
        let f = Field::from_fn(16, 16, |r, c| {
            Complex64::new(r as f64 * 0.1, c as f64 * 0.05)
        });
        let a = det.read(&f);
        let b = det.read_intensity(&f.intensity());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn backward_zero_outside_regions() {
        let det = Detector::new(8, 8, vec![DetectorRegion::new(2, 2, 2, 2)]);
        let f = Field::filled(8, 8, Complex64::new(1.0, 1.0));
        let g = det.backward(&f, &[0.5]);
        assert_eq!(g[(0, 0)], Complex64::ZERO);
        assert_eq!(g[(2, 2)], Complex64::new(0.5, 0.5));
        assert_eq!(g[(3, 3)], Complex64::new(0.5, 0.5));
        assert_eq!(g[(4, 4)], Complex64::ZERO);
    }

    #[test]
    fn detector_gradient_is_consistent_with_intensity_derivative() {
        // L = Σ_k a_k·I_k. Perturb the field along direction d, compare
        // 2·Re⟨g, d⟩ against finite differences.
        let det = Detector::grid_layout(16, 16, 4, 3);
        let f = Field::from_fn(16, 16, |r, c| {
            Complex64::new((r + c) as f64 * 0.07, r as f64 * 0.03)
        });
        let a = [0.3, -0.7, 1.1, 0.2];
        let loss =
            |field: &Field| -> f64 { det.read(field).iter().zip(&a).map(|(i, &ai)| ai * i).sum() };
        let g = det.backward(&f, &a);
        let d = Field::from_fn(16, 16, |r, c| {
            Complex64::new(0.05 * c as f64, -0.02 * r as f64)
        });
        let h = 1e-6;
        let mut fp = f.clone();
        fp.axpy(h, &d);
        let mut fm = f.clone();
        fm.axpy(-h, &d);
        let numeric = (loss(&fp) - loss(&fm)) / (2.0 * h);
        let analytic = 2.0 * g.inner(&d).re;
        assert!((numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_regions_rejected() {
        let _ = Detector::new(
            8,
            8,
            vec![
                DetectorRegion::new(0, 0, 4, 4),
                DetectorRegion::new(2, 2, 4, 4),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_plane_region_rejected() {
        let _ = Detector::new(8, 8, vec![DetectorRegion::new(6, 6, 4, 4)]);
    }

    #[test]
    fn plane_readout_roundtrip() {
        let f = Field::from_fn(4, 4, |r, c| Complex64::new(r as f64, c as f64));
        let ro = PlaneReadout;
        let i = ro.read(&f);
        assert_eq!(i.len(), 16);
        assert!((i[5] - f[(1, 1)].norm_sqr()).abs() < 1e-12);
        let g = ro.backward(&f, &[1.0; 16]);
        assert_eq!(g, f);
    }

    #[test]
    fn grid_layout_regions_disjoint_various_counts() {
        for classes in [2, 3, 5, 9, 10, 16] {
            let det = Detector::grid_layout(100, 100, classes, 8);
            assert_eq!(det.num_classes(), classes);
        }
    }
}
