//! Hardware deployment and emulation (`lr.model.to_system`).
//!
//! This module closes the loop the paper's Fig. 1 draws: a trained DONN is
//! exported to device-specific fabrication data (SLM control levels or
//! 3D-printed mask thicknesses) and — since we have no optical table — its
//! physical deployment is *emulated* with the `lr-hardware` nonideality
//! models: discrete device levels, per-pixel fabrication variation, coupled
//! amplitude response, and camera capture noise/quantization.
//!
//! Two deployment flows are modeled:
//!
//! * **Raw flow** — free phases are post-training quantized to the nearest
//!   device level. This is the flow that suffers the ≥30% accuracy gap.
//! * **Codesign flow** — codesign layers deploy their argmax level, which is
//!   exactly the state training optimized. The gap (ideally) vanishes.

use crate::layers::codesign::CodesignMode;
use crate::model::{DonnModel, Layer};
use crate::train::LabeledImage;
use lr_hardware::{CameraModel, CrosstalkModel, FabricationVariation, SlmModel};
use lr_nn::metrics::argmax;
use lr_optics::{FreeSpace, PropagationScratch};
use lr_tensor::{parallel, Complex64, Field};

/// Fabrication export for one diffractive layer.
#[derive(Debug, Clone)]
pub struct LayerExport {
    /// Device control level per pixel (row-major).
    pub levels: Vec<usize>,
    /// Device phase realized at each pixel (radians).
    pub phases: Vec<f64>,
}

/// The full fabrication package produced by [`to_system`].
#[derive(Debug, Clone)]
pub struct SystemExport {
    /// Device name the export targets.
    pub device: String,
    /// Per-layer control data.
    pub layers: Vec<LayerExport>,
}

impl SystemExport {
    /// Renders the export as the text payload LightRidge would hand to the
    /// lab (one line per layer with level statistics).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = format!("device: {}\n", self.device);
        for (i, layer) in self.layers.iter().enumerate() {
            let min = layer.levels.iter().min().copied().unwrap_or(0);
            let max = layer.levels.iter().max().copied().unwrap_or(0);
            let _ = writeln!(
                s,
                "layer {i}: {} pixels, levels [{min}, {max}]",
                layer.levels.len()
            );
        }
        s
    }
}

/// Exports a trained model for a device: raw layers are quantized to the
/// nearest device level, codesign layers dump their argmax levels.
pub fn to_system(model: &DonnModel, device: &SlmModel) -> SystemExport {
    let layers = model
        .layers()
        .iter()
        .map(|layer| match layer {
            Layer::Diffractive(l) => {
                let (levels, phases) = device.quantize_mask(l.phases());
                LayerExport { levels, phases }
            }
            Layer::Codesign(l) => {
                let levels = l.hard_levels();
                let phases = l.hard_phases();
                LayerExport { levels, phases }
            }
            // Nonlinear films carry no control data; the export keeps an
            // empty placeholder so layer indices stay aligned.
            Layer::Nonlinear(_) => LayerExport {
                levels: Vec::new(),
                phases: Vec::new(),
            },
        })
        .collect();
    SystemExport {
        device: device.name().to_string(),
        layers,
    }
}

/// A physical optical bench: the device the masks are realized on, the
/// fabrication variation of this particular unit, and the readout camera.
#[derive(Debug, Clone)]
pub struct HardwareEnvironment {
    /// Modulator device model.
    pub device: SlmModel,
    /// Frozen per-pixel fabrication errors of this unit.
    pub fabrication: FabricationVariation,
    /// Interpixel crosstalk of the modulator panel (paper §6).
    pub crosstalk: CrosstalkModel,
    /// Readout camera.
    pub camera: CameraModel,
    /// Camera noise seed (per capture session).
    pub capture_seed: u64,
}

impl HardwareEnvironment {
    /// The paper's visible-range prototype bench: LC2012 SLM with typical
    /// fabrication variation, liquid-crystal interpixel crosstalk, and a
    /// CS165MU1-style camera.
    pub fn prototype(seed: u64) -> Self {
        HardwareEnvironment {
            device: SlmModel::lc2012(),
            fabrication: FabricationVariation::typical_slm(seed),
            crosstalk: CrosstalkModel::typical_lc(),
            camera: CameraModel::cs165mu1(1.0),
            capture_seed: seed,
        }
    }

    /// An idealized bench (continuous device, no noise) — deployment on it
    /// must match emulation exactly.
    pub fn ideal() -> Self {
        HardwareEnvironment {
            device: SlmModel::ideal(1 << 16),
            fabrication: FabricationVariation::none(),
            crosstalk: CrosstalkModel::none(),
            camera: CameraModel::ideal(),
            capture_seed: 0,
        }
    }
}

/// A deployed physical DONN: fixed complex modulation masks (device states
/// with this unit's fabrication errors baked in) between free-space hops,
/// plus any nonlinear films.
#[derive(Debug, Clone)]
pub struct PhysicalDonn {
    stages: Vec<PhysicalStage>,
    final_propagator: FreeSpace,
    detector: crate::layers::detector::Detector,
    camera: CameraModel,
    capture_seed: u64,
}

#[derive(Debug, Clone)]
enum PhysicalStage {
    /// Free-space hop followed by a fixed modulation panel.
    Modulated {
        propagator: FreeSpace,
        modulation: Field,
    },
    /// A saturable-absorber film at the current plane.
    Nonlinear(crate::layers::nonlinear::SaturableAbsorber),
}

/// Reusable per-thread buffers for deployed (all-optical emulated)
/// inference: the running wavefield, FFT scratch, and the intensity/camera
/// staging buffers. Build one per `(thread, deployed model)` via
/// [`PhysicalDonn::make_workspace`]; the capture path then performs zero
/// heap allocations in steady state — this is what lets serving registries
/// serve `HardwareEnvironment`-emulated variants at the same cost contract
/// as emulation-mode models.
#[derive(Debug, Clone)]
pub struct PhysicalWorkspace {
    u: Field,
    scratch: PropagationScratch,
    intensity: Vec<f64>,
    captured: Vec<f64>,
}

impl PhysicalWorkspace {
    /// Builds a workspace for a `rows × cols` detector plane.
    pub fn new(rows: usize, cols: usize) -> Self {
        PhysicalWorkspace {
            u: Field::zeros(rows, cols),
            scratch: PropagationScratch::new(rows, cols),
            intensity: Vec::with_capacity(rows * cols),
            captured: Vec::with_capacity(rows * cols),
        }
    }

    /// Plane shape this workspace serves.
    pub fn shape(&self) -> (usize, usize) {
        self.u.shape()
    }

    /// Heap bytes held by this workspace's buffers — what the serving
    /// runtime's resident-memory accounting credits back when a retired
    /// model's per-worker workspaces are reclaimed.
    pub fn resident_bytes(&self) -> usize {
        self.u.resident_bytes()
            + self.scratch.resident_bytes()
            + (self.intensity.capacity() + self.captured.capacity()) * std::mem::size_of::<f64>()
    }
}

impl PhysicalDonn {
    /// Realizes `model` on `env` hardware.
    pub fn deploy(model: &DonnModel, env: &HardwareEnvironment) -> Self {
        let export = to_system(model, &env.device);
        let (rows, cols) = model.grid().shape();
        let pixels = rows * cols;

        let mut stages = Vec::with_capacity(model.depth());
        for (i, (layer, exp)) in model.layers().iter().zip(&export.layers).enumerate() {
            let propagator = match layer {
                Layer::Diffractive(l) => l.propagator().clone(),
                Layer::Codesign(l) => l.propagator().clone(),
                Layer::Nonlinear(sa) => {
                    stages.push(PhysicalStage::Nonlinear(sa.clone()));
                    continue;
                }
            };
            // This unit's frozen errors for this panel.
            let fab_seed_offset = i as u64;
            let fab = FabricationVariation::new(
                env.fabrication.phase_sigma(),
                env.fabrication.amplitude_sigma(),
                env.capture_seed.wrapping_add(fab_seed_offset),
            );
            let phase_err = fab.sample_phase_errors(pixels);
            let amp_fac = fab.sample_amplitude_factors(pixels);
            let device_amp = env.device.amplitudes();
            let data: Vec<Complex64> = (0..pixels)
                .map(|p| {
                    let amp = device_amp[exp.levels[p]] * amp_fac[p];
                    Complex64::from_polar(amp, exp.phases[p] + phase_err[p])
                })
                .collect();
            // Interpixel crosstalk blurs the realized complex modulation.
            let mut interleaved: Vec<f64> = data.iter().flat_map(|z| [z.re, z.im]).collect();
            env.crosstalk.apply_complex(rows, cols, &mut interleaved);
            let data: Vec<Complex64> = interleaved
                .chunks_exact(2)
                .map(|p| Complex64::new(p[0], p[1]))
                .collect();
            stages.push(PhysicalStage::Modulated {
                propagator,
                modulation: Field::from_vec(rows, cols, data),
            });
        }
        PhysicalDonn {
            stages,
            final_propagator: model.final_propagator().clone(),
            detector: model.detector().clone(),
            camera: env.camera.clone(),
            capture_seed: env.capture_seed,
        }
    }

    /// The detector-plane shape of this deployed system.
    pub fn shape(&self) -> (usize, usize) {
        self.detector.shape()
    }

    /// Number of readout classes.
    pub fn num_classes(&self) -> usize {
        self.detector.num_classes()
    }

    /// Allocates a [`PhysicalWorkspace`] sized for this system's plane.
    pub fn make_workspace(&self) -> PhysicalWorkspace {
        let (rows, cols) = self.detector.shape();
        PhysicalWorkspace::new(rows, cols)
    }

    /// All-optical inference: returns the class logits measured from the
    /// camera capture.
    pub fn infer(&self, input: &Field) -> Vec<f64> {
        let mut ws = self.make_workspace();
        let mut logits = Vec::with_capacity(self.detector.num_classes());
        self.infer_with(input, &mut ws, &mut logits);
        logits
    }

    /// [`PhysicalDonn::infer`] through a caller-owned workspace and output
    /// buffer — **zero heap allocations** in steady state (the deployed
    /// serving hot path, verified by the serve counting-allocator test).
    ///
    /// # Panics
    ///
    /// Panics if `input` or `ws` does not match the system's plane.
    pub fn infer_with(&self, input: &Field, ws: &mut PhysicalWorkspace, logits: &mut Vec<f64>) {
        self.capture_with(input, 0, ws);
        self.detector.read_intensity_into(&ws.captured, logits);
    }

    /// The camera image of the detector plane for a given input —
    /// LightRidge's Fig. 6 "experimental measurement".
    pub fn capture(&self, input: &Field, shot: u64) -> Vec<f64> {
        let mut ws = self.make_workspace();
        self.capture_with(input, shot, &mut ws);
        ws.captured
    }

    /// [`PhysicalDonn::capture`] through a caller-owned workspace; the
    /// captured image is left in the workspace's staging buffer
    /// (allocation-free in steady state).
    ///
    /// # Panics
    ///
    /// Panics if `input` or `ws` does not match the system's plane.
    fn capture_with(&self, input: &Field, shot: u64, ws: &mut PhysicalWorkspace) {
        assert_eq!(
            input.shape(),
            self.detector.shape(),
            "input/plane shape mismatch"
        );
        assert_eq!(
            ws.shape(),
            self.detector.shape(),
            "workspace/plane shape mismatch"
        );
        ws.u.copy_from(input);
        for stage in &self.stages {
            match stage {
                PhysicalStage::Modulated {
                    propagator,
                    modulation,
                } => {
                    propagator.propagate_with(&mut ws.u, &mut ws.scratch);
                    ws.u.hadamard_assign(modulation);
                }
                PhysicalStage::Nonlinear(sa) => sa.infer_inplace(&mut ws.u),
            }
        }
        self.final_propagator
            .propagate_with(&mut ws.u, &mut ws.scratch);
        ws.u.intensity_into(&mut ws.intensity);
        // Normalize into the camera's dynamic range before capture.
        let max = ws.intensity.iter().cloned().fold(0.0, f64::max).max(1e-30);
        for i in ws.intensity.iter_mut() {
            *i /= max;
        }
        self.camera.capture_into(
            &ws.intensity,
            self.capture_seed.wrapping_add(shot),
            &mut ws.captured,
        );
        for c in ws.captured.iter_mut() {
            *c *= max;
        }
    }

    /// Warms every global cache and this thread's scratch for the deployed
    /// stack (FFT plans, transfer kernels) by running one dummy capture.
    /// Registries call this at registration time; never on a hot path.
    pub fn prewarm(&self) {
        for stage in &self.stages {
            if let PhysicalStage::Modulated { propagator, .. } = stage {
                propagator.prewarm();
            }
        }
        self.final_propagator.prewarm();
        let (rows, cols) = self.detector.shape();
        let mut ws = self.make_workspace();
        let mut logits = Vec::with_capacity(self.detector.num_classes());
        self.infer_with(&Field::ones(rows, cols), &mut ws, &mut logits);
    }

    /// Classification accuracy of the deployed system.
    pub fn evaluate(&self, data: &[LabeledImage]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let (rows, cols) = self.detector.shape();
        let correct: usize = parallel::par_map(data.len(), |i| {
            let (img, label) = &data[i];
            let input = Field::from_amplitudes(rows, cols, img);
            usize::from(argmax(&self.infer(&input)) == *label)
        })
        .into_iter()
        .sum();
        correct as f64 / data.len() as f64
    }
}

/// The Fig. 1 experiment in one call: emulation accuracy vs deployed
/// accuracy on the given bench. The difference is the sim-to-hardware gap.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// Accuracy of the digital emulation (soft codesign states).
    pub emulation_accuracy: f64,
    /// Accuracy after physical deployment on the bench.
    pub deployed_accuracy: f64,
}

impl DeploymentReport {
    /// The accuracy gap (emulation − deployed).
    pub fn gap(&self) -> f64 {
        self.emulation_accuracy - self.deployed_accuracy
    }
}

/// Evaluates a model both in emulation and deployed on `env`.
pub fn deployment_report(
    model: &DonnModel,
    env: &HardwareEnvironment,
    data: &[LabeledImage],
) -> DeploymentReport {
    let emulation_accuracy = crate::train::evaluate(model, data);
    let physical = PhysicalDonn::deploy(model, env);
    let deployed_accuracy = physical.evaluate(data);
    DeploymentReport {
        emulation_accuracy,
        deployed_accuracy,
    }
}

/// Per-digit correlation between emulated detector patterns and captured
/// "experimental" patterns — the paper's Fig. 6 comparison.
pub fn pattern_correlations(
    model: &DonnModel,
    env: &HardwareEnvironment,
    inputs: &[Vec<f64>],
) -> Vec<f64> {
    let physical = PhysicalDonn::deploy(model, env);
    let (rows, cols) = model.grid().shape();
    inputs
        .iter()
        .map(|img| {
            let input = Field::from_amplitudes(rows, cols, img);
            let sim = model
                .forward_trace(&input, CodesignMode::Soft, 0)
                .detector_field
                .intensity();
            let exp = physical.capture(&input, 1);
            lr_nn::metrics::pearson(&sim, &exp)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::detector::Detector;
    use crate::model::DonnBuilder;
    use lr_optics::{Distance, Grid, PixelPitch, Wavelength};

    fn toy_data(n: usize) -> Vec<LabeledImage> {
        (0..n)
            .map(|i| {
                let label = i % 2;
                let mut img = vec![0.0; 256];
                for r in 0..8 {
                    for c in 4..12 {
                        img[(r + label * 8) * 16 + c] = 1.0;
                    }
                }
                img[i % 16] += 0.2;
                (img, label)
            })
            .collect()
    }

    fn trained_raw_model() -> DonnModel {
        let grid = Grid::square(16, PixelPitch::from_um(36.0));
        let mut model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
            .distance(Distance::from_mm(10.0))
            .diffractive_layers(2)
            .detector(Detector::grid_layout(16, 16, 2, 4))
            .build();
        let data = toy_data(24);
        let config = crate::train::TrainConfig {
            epochs: 6,
            batch_size: 8,
            learning_rate: 0.1,
            ..Default::default()
        };
        crate::train::train(&mut model, &data, &config);
        model
    }

    #[test]
    fn to_system_exports_all_layers() {
        let model = trained_raw_model();
        let export = to_system(&model, &SlmModel::ideal(256));
        assert_eq!(export.layers.len(), 2);
        assert!(export
            .layers
            .iter()
            .all(|l| l.levels.len() == 256 && l.phases.len() == 256));
        assert!(export.summary().contains("layer 0"));
    }

    #[test]
    fn ideal_bench_deployment_matches_emulation() {
        let model = trained_raw_model();
        let data = toy_data(16);
        let report = deployment_report(&model, &HardwareEnvironment::ideal(), &data);
        assert!(
            report.gap().abs() < 1e-9,
            "ideal hardware must not open a gap: {report:?}"
        );
    }

    #[test]
    fn noisy_bench_opens_gap_for_raw_model() {
        let model = trained_raw_model();
        let data = toy_data(16);
        // A very coarse, noisy device.
        let env = HardwareEnvironment {
            device: SlmModel::uniform_bits(2),
            fabrication: FabricationVariation::new(0.6, 0.1, 3),
            crosstalk: lr_hardware::CrosstalkModel::typical_lc(),
            camera: CameraModel::cs165mu1(1.0),
            capture_seed: 3,
        };
        let report = deployment_report(&model, &env, &data);
        assert!(
            report.deployed_accuracy <= report.emulation_accuracy + 1e-9,
            "deployment should not beat emulation: {report:?}"
        );
    }

    #[test]
    fn capture_is_deterministic_per_seed() {
        let model = trained_raw_model();
        let env = HardwareEnvironment::prototype(9);
        let physical = PhysicalDonn::deploy(&model, &env);
        let input = Field::ones(16, 16);
        assert_eq!(physical.capture(&input, 0), physical.capture(&input, 0));
        assert_ne!(physical.capture(&input, 0), physical.capture(&input, 1));
    }

    #[test]
    fn pattern_correlation_high_on_good_bench() {
        let model = trained_raw_model();
        let env = HardwareEnvironment::prototype(5);
        let inputs: Vec<Vec<f64>> = toy_data(4).into_iter().map(|(img, _)| img).collect();
        let corrs = pattern_correlations(&model, &env, &inputs);
        assert_eq!(corrs.len(), 4);
        for c in corrs {
            assert!(c > 0.8, "sim/experiment correlation too low: {c}");
        }
    }
}
