//! Multi-channel RGB DONN architecture (paper §5.6.1, Fig. 12).
//!
//! The input RGB image is split into three gray-scale channel images; a beam
//! splitter fans the laser into three optical paths, each carrying one
//! channel through its own stack of diffractive layers; the output beams are
//! projected onto a *single shared detector*, where the channel intensities
//! merge. All channels train against the same shared loss.
//!
//! Because intensities add at the detector (`I = Σ_ch |U_ch|²`), the
//! backward pass hands the same per-class logit gradients to every channel,
//! each expanding them through its own detector field.

use crate::layers::codesign::CodesignMode;
use crate::layers::detector::Detector;
use crate::model::{DonnBuilder, DonnModel, ModelGrads};
use lr_nn::loss::{one_hot, softmax_mse};
use lr_nn::metrics::{argmax, top_k_correct};
use lr_nn::{Adam, Optimizer};
use lr_optics::{Approximation, Distance, Grid, Wavelength};
use lr_tensor::{parallel, Field};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An RGB sample: three channel images plus a label.
pub type RgbImage = ([Vec<f64>; 3], usize);

/// A three-channel DONN classifier with a shared detector.
///
/// # Examples
///
/// ```
/// use lightridge::{MultiChannelDonn, Detector};
/// use lr_optics::{Approximation, Distance, Grid, PixelPitch, Wavelength};
///
/// let grid = Grid::square(16, PixelPitch::from_um(36.0));
/// let donn = MultiChannelDonn::new(
///     grid,
///     Wavelength::from_nm(532.0),
///     Distance::from_mm(20.0),
///     Approximation::RayleighSommerfeld,
///     2,
///     Detector::grid_layout(16, 16, 3, 3),
///     7,
/// );
/// assert_eq!(donn.num_channels(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannelDonn {
    channels: Vec<DonnModel>,
}

impl MultiChannelDonn {
    /// Builds a three-channel model with `depth` diffractive layers per
    /// channel, all channels sharing the detector layout.
    pub fn new(
        grid: Grid,
        wavelength: Wavelength,
        distance: Distance,
        approximation: Approximation,
        depth: usize,
        detector: Detector,
        init_seed: u64,
    ) -> Self {
        let channels = (0..3)
            .map(|ch| {
                DonnBuilder::new(grid, wavelength)
                    .distance(distance)
                    .approximation(approximation)
                    .diffractive_layers(depth)
                    .detector(detector.clone())
                    .init_seed(init_seed.wrapping_add(ch as u64 * 10_007))
                    .build()
            })
            .collect();
        MultiChannelDonn { channels }
    }

    /// Number of optical channels (always 3: R, G, B).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Per-channel sub-models.
    pub fn channels(&self) -> &[DonnModel] {
        &self.channels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.channels[0].num_classes()
    }

    /// Total trainable parameters across channels.
    pub fn num_params(&self) -> usize {
        self.channels.iter().map(DonnModel::num_params).sum()
    }

    /// Merged class logits for an RGB sample: the shared detector sums the
    /// per-channel intensities.
    pub fn infer(&self, rgb: &[Vec<f64>; 3]) -> Vec<f64> {
        let (rows, cols) = self.channels[0].grid().shape();
        let mut logits = vec![0.0; self.num_classes()];
        for (model, img) in self.channels.iter().zip(rgb) {
            let input = Field::from_amplitudes(rows, cols, img);
            let l = model.infer(&input);
            for (acc, v) in logits.iter_mut().zip(l) {
                *acc += v;
            }
        }
        logits
    }

    /// Trains all channels against the shared Softmax-MSE loss; returns the
    /// mean loss per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or labels are out of range.
    pub fn train(
        &mut self,
        data: &[RgbImage],
        epochs: usize,
        batch_size: usize,
        lr: f64,
        seed: u64,
    ) -> Vec<f64> {
        assert!(!data.is_empty(), "training set must be non-empty");
        let classes = self.num_classes();
        for (_, label) in data {
            assert!(*label < classes, "label out of range");
        }
        let (rows, cols) = self.channels[0].grid().shape();
        let mut opt = Adam::new(lr);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut history = Vec::with_capacity(epochs);

        for _epoch in 0..epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(batch_size) {
                // Shard the batch across workers; each worker accumulates
                // per-channel gradients.
                let workers = parallel::threads().min(batch.len()).max(1);
                let shard = batch.len().div_ceil(workers);
                let results = parallel::par_map(workers, |w| {
                    let mut grads: Vec<ModelGrads> =
                        self.channels.iter().map(ModelGrads::zeros_like).collect();
                    let mut loss_sum = 0.0;
                    for &idx in batch.iter().skip(w * shard).take(shard) {
                        let (rgb, label) = &data[idx];
                        let target = one_hot(*label, classes);
                        // Forward all channels, merge logits.
                        let traces: Vec<_> = self
                            .channels
                            .iter()
                            .zip(rgb)
                            .map(|(m, img)| {
                                let input = Field::from_amplitudes(rows, cols, img);
                                m.forward_trace(&input, CodesignMode::Soft, 0)
                            })
                            .collect();
                        let mut logits = vec![0.0; classes];
                        for t in &traces {
                            for (acc, &v) in logits.iter_mut().zip(&t.logits) {
                                *acc += v;
                            }
                        }
                        let (loss, logit_grads) = softmax_mse(&logits, &target);
                        loss_sum += loss;
                        // I = Σ_ch I_ch ⇒ the same dL/dI_k reaches each channel.
                        for (model, (trace, g)) in self
                            .channels
                            .iter()
                            .zip(traces.iter().zip(grads.iter_mut()))
                        {
                            model.backward(trace, &logit_grads, g);
                        }
                    }
                    (grads, loss_sum)
                });
                let mut total: Vec<ModelGrads> =
                    self.channels.iter().map(ModelGrads::zeros_like).collect();
                for (grads, loss) in results {
                    epoch_loss += loss;
                    for (t, g) in total.iter_mut().zip(&grads) {
                        t.accumulate(g);
                    }
                }
                let scale = 1.0 / batch.len() as f64;
                for (ch, (model, grads)) in
                    self.channels.iter_mut().zip(total.iter_mut()).enumerate()
                {
                    grads.scale(scale);
                    for (i, layer) in model.layers_mut().iter_mut().enumerate() {
                        opt.step(ch * 1000 + i, layer.params_mut(), grads.layer(i));
                    }
                }
            }
            history.push(epoch_loss / data.len() as f64);
        }
        history
    }

    /// Top-k accuracy over a dataset (Table 5 reports top-1/3/5).
    pub fn evaluate_top_k(&self, data: &[RgbImage], k: usize) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct: usize = parallel::par_map(data.len(), |i| {
            let (rgb, label) = &data[i];
            usize::from(top_k_correct(&self.infer(rgb), *label, k))
        })
        .into_iter()
        .sum();
        correct as f64 / data.len() as f64
    }

    /// Top-1 accuracy.
    pub fn evaluate(&self, data: &[RgbImage]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct: usize = parallel::par_map(data.len(), |i| {
            let (rgb, label) = &data[i];
            usize::from(argmax(&self.infer(rgb)) == *label)
        })
        .into_iter()
        .sum();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_optics::PixelPitch;

    /// 3-class RGB toy task: the dominant color channel determines the
    /// class, and each channel image has a distinct blob position.
    fn rgb_dataset(n: usize, size: usize) -> Vec<RgbImage> {
        (0..n)
            .map(|i| {
                let label = i % 3;
                let mut rgb = [
                    vec![0.0; size * size],
                    vec![0.0; size * size],
                    vec![0.0; size * size],
                ];
                for r in size / 4..3 * size / 4 {
                    for c in size / 4..3 * size / 4 {
                        rgb[label][r * size + c] = 1.0;
                    }
                }
                rgb[(label + 1) % 3][(i * 7) % (size * size)] = 0.3;
                (rgb, label)
            })
            .collect()
    }

    fn model(size: usize) -> MultiChannelDonn {
        let grid = Grid::square(size, PixelPitch::from_um(36.0));
        MultiChannelDonn::new(
            grid,
            Wavelength::from_nm(532.0),
            Distance::from_mm(10.0),
            Approximation::RayleighSommerfeld,
            1,
            Detector::grid_layout(size, size, 3, 3),
            11,
        )
    }

    #[test]
    fn three_channels_share_detector_layout() {
        let m = model(16);
        assert_eq!(m.num_channels(), 3);
        let d0 = m.channels()[0].detector();
        let d1 = m.channels()[1].detector();
        assert_eq!(d0.regions(), d1.regions());
    }

    #[test]
    fn merged_logits_are_channel_sums() {
        let m = model(16);
        let (rgb, _) = &rgb_dataset(1, 16)[0];
        let merged = m.infer(rgb);
        let mut manual = vec![0.0; 3];
        for (model, img) in m.channels().iter().zip(rgb) {
            let input = Field::from_amplitudes(16, 16, img);
            for (a, v) in manual.iter_mut().zip(model.infer(&input)) {
                *a += v;
            }
        }
        for (a, b) in merged.iter().zip(&manual) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn training_learns_color_dominance_task() {
        let mut m = model(16);
        let data = rgb_dataset(30, 16);
        let losses = m.train(&data, 8, 10, 0.1, 3);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss must drop: {losses:?}"
        );
        let top1 = m.evaluate(&data);
        assert!(top1 > 0.6, "RGB toy task should be learnable, got {top1}");
        let top3 = m.evaluate_top_k(&data, 3);
        assert!((top3 - 1.0).abs() < 1e-12, "top-3 of 3 classes is always 1");
        assert!(m.evaluate_top_k(&data, 1) <= top3);
    }

    #[test]
    fn empty_dataset_evaluates_to_zero() {
        let m = model(16);
        assert_eq!(m.evaluate(&[]), 0.0);
        assert_eq!(m.evaluate_top_k(&[], 3), 0.0);
    }
}
