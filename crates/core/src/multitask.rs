//! Real-time multi-task DONN (extension; Li et al. 2021, the paper's
//! reference \[31\]).
//!
//! One shared diffractive stack answers several classification tasks in a
//! single optical pass: each task owns a disjoint set of detector regions
//! on the shared detector plane, and the per-task prediction is the argmax
//! over that task's regions. Training optimizes the *sum* of the per-task
//! Softmax-MSE losses — since the tasks read from disjoint regions, their
//! logit gradients concatenate into one detector-plane gradient and flow
//! through the shared phase masks together.
//!
//! Internally the union of all tasks' regions forms one
//! [`Detector`], so the whole [`DonnModel`] machinery (forward traces,
//! Wirtinger backward, deployment) is reused unchanged; this module only
//! tracks which logit slice belongs to which task.

use crate::layers::codesign::CodesignMode;
use crate::layers::detector::{Detector, DetectorRegion};
use crate::model::{DonnBuilder, DonnModel, ModelGrads};
use lr_nn::loss::{one_hot, softmax_mse};
use lr_nn::metrics::argmax;
use lr_nn::{Adam, Optimizer};
use lr_optics::{Approximation, Distance, Grid, Wavelength};
use lr_tensor::{parallel, Field};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A multi-task sample: one intensity image with one label per task.
pub type MultiTaskImage = (Vec<f64>, Vec<usize>);

/// A DONN answering several classification tasks in one optical pass.
///
/// # Examples
///
/// ```
/// use lightridge::MultiTaskDonn;
/// use lr_optics::{Approximation, Distance, Grid, PixelPitch, Wavelength};
///
/// let grid = Grid::square(24, PixelPitch::from_um(36.0));
/// let layouts = MultiTaskDonn::split_plane_layout(24, 24, &[4, 2], 3);
/// let donn = MultiTaskDonn::new(
///     grid,
///     Wavelength::from_nm(532.0),
///     Distance::from_mm(20.0),
///     Approximation::RayleighSommerfeld,
///     2,
///     layouts,
///     7,
/// );
/// assert_eq!(donn.num_tasks(), 2);
/// assert_eq!(donn.task_classes(0), 4);
/// assert_eq!(donn.task_classes(1), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MultiTaskDonn {
    model: DonnModel,
    /// `(start, len)` of each task's slice in the union logits.
    task_spans: Vec<(usize, usize)>,
}

impl MultiTaskDonn {
    /// Builds a multi-task model with `depth` shared diffractive layers.
    /// `region_sets[t]` holds task `t`'s detector regions; regions must be
    /// pairwise disjoint across all tasks.
    ///
    /// # Panics
    ///
    /// Panics if any task has no regions, regions overlap, or a region
    /// falls outside the plane.
    pub fn new(
        grid: Grid,
        wavelength: Wavelength,
        distance: Distance,
        approximation: Approximation,
        depth: usize,
        region_sets: Vec<Vec<DetectorRegion>>,
        init_seed: u64,
    ) -> Self {
        assert!(!region_sets.is_empty(), "need at least one task");
        let (rows, cols) = grid.shape();
        let mut task_spans = Vec::with_capacity(region_sets.len());
        let mut union = Vec::new();
        for regions in &region_sets {
            assert!(!regions.is_empty(), "every task needs at least one region");
            task_spans.push((union.len(), regions.len()));
            union.extend(regions.iter().cloned());
        }
        // Disjointness: no plane pixel may belong to two regions.
        let mut owner = vec![usize::MAX; rows * cols];
        for (k, region) in union.iter().enumerate() {
            for r in 0..rows {
                for c in 0..cols {
                    if region.contains(r, c) {
                        assert!(
                            owner[r * cols + c] == usize::MAX,
                            "detector regions overlap at ({r}, {c})"
                        );
                        owner[r * cols + c] = k;
                    }
                }
            }
        }
        let model = DonnBuilder::new(grid, wavelength)
            .distance(distance)
            .approximation(approximation)
            .diffractive_layers(depth)
            .detector(Detector::new(rows, cols, union))
            .init_seed(init_seed)
            .build();
        MultiTaskDonn { model, task_spans }
    }

    /// A standard two-or-more-task layout: the plane is split into
    /// `classes.len()` horizontal bands, and task `t` gets `classes[t]`
    /// square regions of side `det_size` arranged on a near-square grid
    /// inside its band (the same placement scheme as
    /// [`Detector::grid_layout`]).
    ///
    /// # Panics
    ///
    /// Panics if a band cannot fit its regions.
    pub fn split_plane_layout(
        rows: usize,
        cols: usize,
        classes: &[usize],
        det_size: usize,
    ) -> Vec<Vec<DetectorRegion>> {
        assert!(!classes.is_empty(), "need at least one task");
        let band_h = rows / classes.len();
        classes
            .iter()
            .enumerate()
            .map(|(t, &k)| {
                assert!(k > 0, "task {t} needs at least one class");
                let band_top = t * band_h;
                let r_cols = (k as f64).sqrt().ceil() as usize;
                let r_rows = k.div_ceil(r_cols);
                let cell_h = band_h / (r_rows + 1);
                let cell_w = cols / (r_cols + 1);
                assert!(
                    cell_h >= det_size && cell_w >= det_size,
                    "task {t}: {k} regions of {det_size}px do not fit a {band_h}x{cols} band"
                );
                (0..k)
                    .map(|i| {
                        let gr = i / r_cols;
                        let gc = i % r_cols;
                        let center_r = band_top + (gr + 1) * band_h / (r_rows + 1);
                        let center_c = (gc + 1) * cols / (r_cols + 1);
                        DetectorRegion::new(
                            center_r - det_size / 2,
                            center_c - det_size / 2,
                            det_size,
                            det_size,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.task_spans.len()
    }

    /// Number of classes of task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn task_classes(&self, t: usize) -> usize {
        self.task_spans[t].1
    }

    /// The shared underlying model (for deployment, visualization, etc.).
    pub fn model(&self) -> &DonnModel {
        &self.model
    }

    /// Per-task logits for one image, split from the union detector read.
    pub fn infer(&self, image: &[f64]) -> Vec<Vec<f64>> {
        let (rows, cols) = self.model.grid().shape();
        let input = Field::from_amplitudes(rows, cols, image);
        let union = self.model.infer(&input);
        self.task_spans
            .iter()
            .map(|&(start, len)| union[start..start + len].to_vec())
            .collect()
    }

    /// Per-task argmax predictions for one image.
    pub fn predict(&self, image: &[f64]) -> Vec<usize> {
        self.infer(image).iter().map(|l| argmax(l)).collect()
    }

    /// Trains against the summed per-task Softmax-MSE loss; returns the
    /// mean joint loss per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, a sample has the wrong number of labels,
    /// or a label is out of its task's range.
    pub fn train(
        &mut self,
        data: &[MultiTaskImage],
        epochs: usize,
        batch_size: usize,
        lr: f64,
        seed: u64,
    ) -> Vec<f64> {
        assert!(!data.is_empty(), "training set must be non-empty");
        for (_, labels) in data {
            assert_eq!(
                labels.len(),
                self.num_tasks(),
                "one label per task required"
            );
            for (t, &l) in labels.iter().enumerate() {
                assert!(
                    l < self.task_classes(t),
                    "label {l} out of range for task {t}"
                );
            }
        }
        let (rows, cols) = self.model.grid().shape();
        let spans = self.task_spans.clone();
        let union_len: usize = spans.iter().map(|&(_, len)| len).sum();
        let mut opt = Adam::new(lr);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut history = Vec::with_capacity(epochs);

        for _epoch in 0..epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(batch_size) {
                let workers = parallel::threads().min(batch.len()).max(1);
                let shard = batch.len().div_ceil(workers);
                let results = parallel::par_map(workers, |w| {
                    let mut grads = ModelGrads::zeros_like(&self.model);
                    let mut loss_sum = 0.0;
                    for &idx in batch.iter().skip(w * shard).take(shard) {
                        let (image, labels) = &data[idx];
                        let input = Field::from_amplitudes(rows, cols, image);
                        let trace = self.model.forward_trace(&input, CodesignMode::Soft, 0);
                        // Per-task losses over disjoint logit slices.
                        let mut logit_grads = vec![0.0; union_len];
                        for (&(start, len), &label) in spans.iter().zip(labels) {
                            let target = one_hot(label, len);
                            let (loss, g) = softmax_mse(&trace.logits[start..start + len], &target);
                            loss_sum += loss;
                            logit_grads[start..start + len].copy_from_slice(&g);
                        }
                        self.model.backward(&trace, &logit_grads, &mut grads);
                    }
                    (grads, loss_sum)
                });
                let mut total = ModelGrads::zeros_like(&self.model);
                for (grads, loss) in results {
                    epoch_loss += loss;
                    total.accumulate(&grads);
                }
                total.scale(1.0 / batch.len() as f64);
                for (i, layer) in self.model.layers_mut().iter_mut().enumerate() {
                    opt.step(i, layer.params_mut(), total.layer(i));
                }
            }
            history.push(epoch_loss / data.len() as f64);
        }
        history
    }

    /// Per-task accuracy over a dataset.
    pub fn evaluate(&self, data: &[MultiTaskImage]) -> Vec<f64> {
        if data.is_empty() {
            return vec![0.0; self.num_tasks()];
        }
        let per_sample = parallel::par_map(data.len(), |i| {
            let (image, labels) = &data[i];
            let preds = self.predict(image);
            preds
                .iter()
                .zip(labels)
                .map(|(p, l)| usize::from(p == l))
                .collect::<Vec<usize>>()
        });
        let mut correct = vec![0usize; self.num_tasks()];
        for sample in &per_sample {
            for (acc, &c) in correct.iter_mut().zip(sample) {
                *acc += c;
            }
        }
        correct
            .iter()
            .map(|&c| c as f64 / data.len() as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_optics::PixelPitch;

    fn model(size: usize, classes: &[usize]) -> MultiTaskDonn {
        let grid = Grid::square(size, PixelPitch::from_um(36.0));
        let layouts = MultiTaskDonn::split_plane_layout(size, size, classes, 3);
        MultiTaskDonn::new(
            grid,
            Wavelength::from_nm(532.0),
            Distance::from_mm(10.0),
            Approximation::RayleighSommerfeld,
            2,
            layouts,
            11,
        )
    }

    /// Quadrant dataset: task 0 = which column half is lit (2 classes),
    /// task 1 = which row half is lit (2 classes). Jointly 4 patterns.
    fn quadrant_data(n: usize, size: usize) -> Vec<MultiTaskImage> {
        (0..n)
            .map(|i| {
                let col_cls = i % 2;
                let row_cls = (i / 2) % 2;
                let mut img = vec![0.0; size * size];
                for r in 0..size / 2 {
                    for c in 0..size / 2 {
                        img[(r + row_cls * size / 2) * size + (c + col_cls * size / 2)] = 1.0;
                    }
                }
                (img, vec![col_cls, row_cls])
            })
            .collect()
    }

    #[test]
    fn layout_produces_disjoint_regions_per_task() {
        let layouts = MultiTaskDonn::split_plane_layout(32, 32, &[4, 3], 4);
        assert_eq!(layouts.len(), 2);
        assert_eq!(layouts[0].len(), 4);
        assert_eq!(layouts[1].len(), 3);
        // Constructing the model re-checks disjointness.
        let _ = model(32, &[4, 3]);
    }

    #[test]
    fn infer_splits_union_logits() {
        let donn = model(24, &[4, 2]);
        let img = vec![0.5; 24 * 24];
        let per_task = donn.infer(&img);
        assert_eq!(per_task.len(), 2);
        assert_eq!(per_task[0].len(), 4);
        assert_eq!(per_task[1].len(), 2);
        assert!(per_task
            .iter()
            .flatten()
            .all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn learns_two_tasks_jointly() {
        let mut donn = model(24, &[2, 2]);
        let data = quadrant_data(48, 24);
        let history = donn.train(&data, 6, 12, 0.2, 5);
        assert!(
            history.last().expect("nonempty") < &history[0],
            "joint loss must decrease: {history:?}"
        );
        let acc = donn.evaluate(&data);
        // Both tasks clearly above 2-class chance.
        assert!(acc[0] > 0.7, "task 0 accuracy {:.3}", acc[0]);
        assert!(acc[1] > 0.7, "task 1 accuracy {:.3}", acc[1]);
    }

    #[test]
    #[should_panic(expected = "regions overlap")]
    fn rejects_overlapping_tasks() {
        let grid = Grid::square(16, PixelPitch::from_um(36.0));
        let region = DetectorRegion::new(4, 4, 4, 4);
        let _ = MultiTaskDonn::new(
            grid,
            Wavelength::from_nm(532.0),
            Distance::from_mm(10.0),
            Approximation::RayleighSommerfeld,
            1,
            vec![vec![region], vec![region]],
            3,
        );
    }

    #[test]
    #[should_panic(expected = "one label per task")]
    fn rejects_wrong_label_arity() {
        let mut donn = model(24, &[2, 2]);
        let data = vec![(vec![0.0; 24 * 24], vec![0usize])];
        let _ = donn.train(&data, 1, 1, 0.1, 0);
    }

    #[test]
    fn predictions_are_in_range() {
        let donn = model(24, &[3, 2]);
        let preds = donn.predict(&vec![1.0; 24 * 24]);
        assert_eq!(preds.len(), 2);
        assert!(preds[0] < 3 && preds[1] < 2);
    }

    /// The joint multi-task loss gradient (concatenated per-task logit
    /// gradients pushed through the shared stack) must agree with central
    /// finite differences.
    #[test]
    fn joint_gradient_matches_finite_differences() {
        let donn = model(16, &[2, 2]);
        let size = 16;
        let img: Vec<f64> = (0..size * size)
            .map(|i| if i % 3 == 0 { 1.0 } else { 0.0 })
            .collect();
        let labels = [0usize, 1usize];

        let spans = donn.task_spans.clone();
        let joint_loss = |m: &DonnModel| {
            let input = Field::from_amplitudes(size, size, &img);
            let trace = m.forward_trace(&input, CodesignMode::Soft, 0);
            spans
                .iter()
                .zip(labels)
                .map(|(&(start, len), label)| {
                    let target = one_hot(label, len);
                    softmax_mse(&trace.logits[start..start + len], &target).0
                })
                .sum::<f64>()
        };

        // Analytic gradient of layer 0.
        let input = Field::from_amplitudes(size, size, &img);
        let trace = donn.model.forward_trace(&input, CodesignMode::Soft, 0);
        let union_len: usize = spans.iter().map(|&(_, len)| len).sum();
        let mut logit_grads = vec![0.0; union_len];
        for (&(start, len), label) in spans.iter().zip(labels) {
            let target = one_hot(label, len);
            let (_, g) = softmax_mse(&trace.logits[start..start + len], &target);
            logit_grads[start..start + len].copy_from_slice(&g);
        }
        let mut grads = ModelGrads::zeros_like(&donn.model);
        donn.model.backward(&trace, &logit_grads, &mut grads);

        // Numeric gradient on a strided parameter sample of layer 0.
        let h = 1e-5;
        let params = donn.model.layers()[0].params().to_vec();
        let mut max_rel: f64 = 0.0;
        for i in (0..params.len()).step_by(params.len() / 12 + 1) {
            let mut m = donn.model.clone();
            m.layers_mut()[0].params_mut()[i] = params[i] + h;
            let lp = joint_loss(&m);
            m.layers_mut()[0].params_mut()[i] = params[i] - h;
            let lm = joint_loss(&m);
            let numeric = (lp - lm) / (2.0 * h);
            let analytic = grads.layer(0)[i];
            let scale = analytic.abs().max(numeric.abs()).max(1e-8);
            max_rel = max_rel.max((analytic - numeric).abs() / scale);
        }
        assert!(
            max_rel < 1e-5,
            "joint-loss gradient check failed: max rel err {max_rel:.3e}"
        );
    }
}
