//! DONN training loop (`lr.train` in the paper's DSL).
//!
//! Training follows the paper exactly: intensity-encoded complex inputs
//! (`data_to_cplex`), forward emulation through the stacked diffractive
//! layers, `Softmax(I)` + MSE loss against one-hot labels (§2.1), Adam
//! updates (§5.1), and — for codesign layers — Gumbel-Softmax temperature
//! annealing across epochs.
//!
//! Samples within a batch are independent given the shared parameters, so
//! the batch is sharded across worker threads (`lr_tensor::parallel`), each
//! shard accumulating private gradient buffers that are merged afterwards.

use crate::layers::codesign::CodesignMode;
use crate::model::{
    BatchTrace, BatchWorkspace, DonnModel, ModelGrads, PropagationWorkspace, Trace,
};
use lr_nn::loss::{one_hot_into, softmax_mse_into};
use lr_nn::metrics::{argmax, Accuracy};
use lr_nn::{Adam, Optimizer};
use lr_tensor::{parallel, Field, FieldBatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An intensity image with its class label. Images are row-major amplitude
/// buffers matching the model grid; they are complex-encoded (`θ = 0`) on
/// the fly.
pub type LabeledImage = (Vec<f64>, usize);

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate (paper §5.1 uses 0.5 for phase parameters).
    pub learning_rate: f64,
    /// Gumbel-Softmax temperature at epoch 0 (codesign layers only).
    pub initial_temperature: f64,
    /// Gumbel-Softmax temperature at the final epoch (annealed
    /// geometrically).
    pub final_temperature: f64,
    /// Shuffling / noise seed.
    pub seed: u64,
    /// Print an epoch summary to stdout.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 32,
            learning_rate: 0.5,
            initial_temperature: 1.0,
            final_temperature: 0.2,
            seed: 7,
            verbose: false,
        }
    }
}

/// A per-worker ring of reusable forward [`Trace`]s.
///
/// The forward pass of one sample produces a `Trace` whose per-layer
/// activation caches used to be freshly allocated every sample — the last
/// allocating piece of the training step after PR 1's workspace split. A
/// `TraceRing` keeps `capacity` traces alive and cycles through them:
/// [`TraceRing::forward`] overwrites the oldest slot in place via
/// [`DonnModel::forward_trace_into`], so in steady state the forward trace
/// (and, with [`DonnModel::backward_with`], the whole training step for
/// diffractive stacks) performs **zero heap allocations** — enforced by
/// `tests/zero_alloc.rs`.
///
/// Each shard/worker owns one ring, mirroring the workspace-reuse contract:
/// rings are never shared across threads. The training loop uses capacity
/// 1 (forward and backward alternate strictly, so one live trace
/// suffices); capacity > 1 is for callers that interleave models or
/// shapes — the ring then keeps one slot shaped per stream instead of
/// reshaping (reallocating) a single slot on every switch.
#[derive(Debug, Clone)]
pub struct TraceRing {
    slots: Vec<Trace>,
    capacity: usize,
    next: usize,
}

impl TraceRing {
    /// Creates an empty ring that will hold up to `capacity` traces.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs at least one slot");
        TraceRing {
            slots: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    /// Number of trace slots currently materialized.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no trace has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Runs a forward pass through the next ring slot, reusing its buffers
    /// in place (allocating only while the ring is still filling up), and
    /// returns the completed trace.
    pub fn forward<'a>(
        &'a mut self,
        model: &DonnModel,
        input: &Field,
        mode: CodesignMode,
        seed: u64,
        ws: &mut PropagationWorkspace,
    ) -> &'a Trace {
        if self.slots.len() < self.capacity {
            self.slots
                .push(model.forward_trace_with(input, mode, seed, ws));
            self.slots.last().expect("just pushed")
        } else {
            let i = self.next;
            self.next = (self.next + 1) % self.capacity;
            model.forward_trace_into(input, mode, seed, ws, &mut self.slots[i]);
            &self.slots[i]
        }
    }
}

/// A per-worker ring of reusable **batched** forward traces — the batched
/// counterpart of [`TraceRing`], holding [`BatchTrace`]s whose per-layer
/// activation caches span a whole worker shard. [`BatchTraceRing::forward`]
/// overwrites the oldest slot in place via
/// [`DonnModel::forward_trace_batch_into`], so in steady state the batched
/// training step (one fused forward + one fused backward per shard)
/// performs zero heap allocations for diffractive stacks — the same
/// contract as the per-sample ring, enforced by `tests/zero_alloc.rs`.
/// Rings are never shared across threads.
#[derive(Debug, Clone)]
pub struct BatchTraceRing {
    slots: Vec<BatchTrace>,
    capacity: usize,
    next: usize,
}

impl BatchTraceRing {
    /// Creates an empty ring that will hold up to `capacity` batch traces.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs at least one slot");
        BatchTraceRing {
            slots: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    /// Number of trace slots currently materialized.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no trace has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Runs one batched traced forward pass through the next ring slot,
    /// reusing its buffers in place (allocating only while the ring fills
    /// up or a batch outgrows its slot), and returns the completed trace.
    pub fn forward<'a>(
        &'a mut self,
        model: &DonnModel,
        inputs: &FieldBatch,
        mode: CodesignMode,
        seeds: &[u64],
        ws: &mut BatchWorkspace,
    ) -> &'a BatchTrace {
        if self.slots.len() < self.capacity {
            let mut trace = BatchTrace::new();
            model.forward_trace_batch_into(inputs, mode, seeds, ws, &mut trace);
            self.slots.push(trace);
            self.slots.last().expect("just pushed")
        } else {
            let i = self.next;
            self.next = (self.next + 1) % self.capacity;
            model.forward_trace_batch_into(inputs, mode, seeds, ws, &mut self.slots[i]);
            &self.slots[i]
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f64,
    /// Training accuracy.
    pub train_accuracy: f64,
    /// Gumbel temperature used this epoch.
    pub temperature: f64,
}

/// Trains `model` on `data` and returns per-epoch statistics.
///
/// # Panics
///
/// Panics if `data` is empty, any image length mismatches the grid, or any
/// label is out of range.
pub fn train(
    model: &mut DonnModel,
    data: &[LabeledImage],
    config: &TrainConfig,
) -> Vec<EpochStats> {
    assert!(!data.is_empty(), "training set must be non-empty");
    let (rows, cols) = model.grid().shape();
    let classes = model.num_classes();
    for (img, label) in data {
        assert_eq!(
            img.len(),
            rows * cols,
            "image size must match the model grid"
        );
        assert!(*label < classes, "label out of range");
    }

    let mut opt = Adam::new(config.learning_rate);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut history = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        let tau = anneal_temperature(config, epoch);
        model.set_temperature(tau);
        order.shuffle(&mut rng);

        let mut epoch_loss = 0.0;
        let mut acc = Accuracy::new();

        for (batch_idx, batch) in order.chunks(config.batch_size).enumerate() {
            let (grads, loss_sum, correct) =
                batch_gradients(model, data, batch, epoch as u64, batch_idx as u64);
            epoch_loss += loss_sum;
            for _ in 0..correct {
                acc.update(&[1.0, 0.0], 0);
            }
            for _ in 0..(batch.len() - correct) {
                acc.update(&[0.0, 1.0], 0);
            }
            let mut grads = grads;
            grads.scale(1.0 / batch.len() as f64);
            apply(model, &mut opt, &grads);
        }

        let stats = EpochStats {
            epoch,
            loss: epoch_loss / data.len() as f64,
            train_accuracy: acc.value(),
            temperature: tau,
        };
        if config.verbose {
            println!(
                "epoch {:>3}  loss {:.5}  acc {:.3}  tau {:.3}",
                stats.epoch, stats.loss, stats.train_accuracy, stats.temperature
            );
        }
        history.push(stats);
    }
    history
}

fn anneal_temperature(config: &TrainConfig, epoch: usize) -> f64 {
    if config.epochs <= 1 {
        return config.initial_temperature;
    }
    let t = epoch as f64 / (config.epochs - 1) as f64;
    config.initial_temperature * (config.final_temperature / config.initial_temperature).powf(t)
}

/// Computes summed gradients, loss, and correct count over one batch,
/// sharded across worker threads — each worker forwards and backwards its
/// **whole shard as one fused batch** ([`DonnModel::forward_trace_batch_into`]
/// / [`DonnModel::backward_batch_with`]), so FFT plans, transfer kernels,
/// and scratch amortize across the shard instead of being re-dispatched
/// per sample. Per-sample Gumbel seeds match the per-sample path exactly,
/// and gradients accumulate in the same sample order, so the batched step
/// is bit-identical to the per-sample loop it replaced.
fn batch_gradients(
    model: &DonnModel,
    data: &[LabeledImage],
    batch: &[usize],
    epoch: u64,
    batch_idx: u64,
) -> (ModelGrads, f64, usize) {
    let workers = parallel::threads().min(batch.len()).max(1);
    let shard_size = batch.len().div_ceil(workers);
    let classes = model.num_classes();
    let (rows, cols) = model.grid().shape();

    let shards = parallel::par_map(workers, |w| {
        // One batch workspace, batched trace ring, and set of small
        // buffers per shard: the whole shard forwards and backwards as one
        // FieldBatch, and steady-state steps reuse every buffer in place
        // (see tests/zero_alloc.rs).
        let shard: Vec<usize> = batch
            .iter()
            .skip(w * shard_size)
            .take(shard_size)
            .copied()
            .collect();
        let bsz = shard.len();
        let mut grads = ModelGrads::zeros_like(model);
        let mut loss_sum = 0.0;
        let mut correct = 0usize;
        if bsz == 0 {
            return (grads, loss_sum, correct);
        }
        let mut ws = model.make_batch_workspace(bsz);
        let mut ring = BatchTraceRing::new(1);
        let mut inputs = FieldBatch::zeros(bsz, rows, cols);
        let mut seeds = Vec::with_capacity(bsz);
        let mut target = Vec::with_capacity(classes);
        let mut logit_grads: Vec<Vec<f64>> =
            (0..bsz).map(|_| Vec::with_capacity(classes)).collect();
        for (b, &idx) in shard.iter().enumerate() {
            inputs.set_plane_amplitudes(b, &data[idx].0);
            seeds.push(
                epoch
                    .wrapping_mul(1_000_003)
                    .wrapping_add(batch_idx.wrapping_mul(4099))
                    .wrapping_add(idx as u64),
            );
        }
        let trace = ring.forward(model, &inputs, CodesignMode::Train, &seeds, &mut ws);
        for (b, &idx) in shard.iter().enumerate() {
            let label = data[idx].1;
            one_hot_into(label, classes, &mut target);
            loss_sum += softmax_mse_into(&trace.logits[b], &target, &mut logit_grads[b]);
            if argmax(&trace.logits[b]) == label {
                correct += 1;
            }
        }
        model.backward_batch_with(trace, &logit_grads, &mut grads, &mut ws);
        (grads, loss_sum, correct)
    });

    let mut total = ModelGrads::zeros_like(model);
    let mut loss_sum = 0.0;
    let mut correct = 0;
    for (g, l, c) in shards {
        total.accumulate(&g);
        loss_sum += l;
        correct += c;
    }
    (total, loss_sum, correct)
}

fn apply(model: &mut DonnModel, opt: &mut Adam, grads: &ModelGrads) {
    for (i, layer) in model.layers_mut().iter_mut().enumerate() {
        opt.step(i, layer.params_mut(), grads.layer(i));
    }
}

/// Evaluates classification accuracy in emulation mode (soft codesign
/// states).
pub fn evaluate(model: &DonnModel, data: &[LabeledImage]) -> f64 {
    evaluate_mode(model, data, CodesignMode::Soft)
}

/// Evaluates accuracy with hard (deployable) codesign states.
pub fn evaluate_deployed(model: &DonnModel, data: &[LabeledImage]) -> f64 {
    evaluate_mode(model, data, CodesignMode::Deploy)
}

fn evaluate_mode(model: &DonnModel, data: &[LabeledImage], mode: CodesignMode) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let (rows, cols) = model.grid().shape();
    let workers = parallel::threads().min(data.len()).max(1);
    let shard_size = data.len().div_ceil(workers);
    let correct: usize = parallel::par_map(workers, |w| {
        let mut ws = model.make_workspace();
        let mut logits = Vec::with_capacity(model.num_classes());
        let mut correct = 0usize;
        for (img, label) in data.iter().skip(w * shard_size).take(shard_size) {
            let input = Field::from_amplitudes(rows, cols, img);
            model.infer_mode_into(&input, mode, &mut ws, &mut logits);
            correct += usize::from(argmax(&logits) == *label);
        }
        correct
    })
    .into_iter()
    .sum();
    correct as f64 / data.len() as f64
}

/// Evaluates accuracy with bounded uniform detector noise (the paper's
/// Fig. 7 robustness protocol): noise of amplitude `bound·max(I)` is added
/// to the detector intensity image before region readout.
///
/// Sharded across workers like [`train`]'s gradient step (one workspace
/// and trace ring per shard, samples streamed through them) instead of
/// submitting one pool job per sample — evaluation no longer pays
/// per-sample job-submission overhead.
pub fn evaluate_with_detector_noise(
    model: &DonnModel,
    data: &[LabeledImage],
    bound: f64,
    seed: u64,
) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let (rows, cols) = model.grid().shape();
    let workers = parallel::threads().min(data.len()).max(1);
    let shard_size = data.len().div_ceil(workers);
    let correct: usize = parallel::par_map(workers, |w| {
        let mut ws = model.make_workspace();
        let mut ring = TraceRing::new(1);
        let mut input = Field::zeros(rows, cols);
        let mut intensity = Vec::with_capacity(rows * cols);
        let mut logits = Vec::with_capacity(model.num_classes());
        let mut correct = 0usize;
        for (i, (img, label)) in data
            .iter()
            .enumerate()
            .skip(w * shard_size)
            .take(shard_size)
        {
            input.set_amplitudes(img);
            let trace = ring.forward(model, &input, CodesignMode::Soft, 0, &mut ws);
            trace.detector_field.intensity_into(&mut intensity);
            let noisy =
                lr_hardware::uniform_detector_noise(&intensity, bound, seed.wrapping_add(i as u64));
            model.detector().read_intensity_into(&noisy, &mut logits);
            correct += usize::from(argmax(&logits) == *label);
        }
        correct
    })
    .into_iter()
    .sum();
    correct as f64 / data.len() as f64
}

/// Mean prediction confidence (softmax probability of the predicted class)
/// over a dataset — the paper's Fig. 7 confidence metric. Worker-sharded
/// like [`evaluate_with_detector_noise`].
pub fn mean_confidence(model: &DonnModel, data: &[LabeledImage]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let (rows, cols) = model.grid().shape();
    let workers = parallel::threads().min(data.len()).max(1);
    let shard_size = data.len().div_ceil(workers);
    let sum: f64 = parallel::par_map(workers, |w| {
        let mut ws = model.make_workspace();
        let mut ring = TraceRing::new(1);
        let mut input = Field::zeros(rows, cols);
        let mut sum = 0.0;
        for (img, _) in data.iter().skip(w * shard_size).take(shard_size) {
            input.set_amplitudes(img);
            let trace = ring.forward(model, &input, CodesignMode::Soft, 0, &mut ws);
            sum += lr_nn::metrics::confidence(&trace.logits);
        }
        sum
    })
    .into_iter()
    .sum();
    sum / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::detector::Detector;
    use crate::model::DonnBuilder;
    use lr_optics::{Distance, Grid, PixelPitch, Wavelength};

    /// A trivially separable 2-class dataset: light in the top half vs the
    /// bottom half of the plane.
    fn toy_dataset(n: usize, rows: usize, cols: usize) -> Vec<LabeledImage> {
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let mut img = vec![0.0; rows * cols];
            let (r0, r1) = if label == 0 {
                (0, rows / 2)
            } else {
                (rows / 2, rows)
            };
            for r in r0..r1 {
                for c in (cols / 4)..(3 * cols / 4) {
                    img[r * cols + c] = 1.0;
                }
            }
            // Small per-sample variation so samples are not all identical.
            let jitter = (i / 2) % (cols / 4);
            img[jitter] = 0.3;
            data.push((img, label));
        }
        data
    }

    fn toy_model(depth: usize) -> DonnModel {
        let grid = Grid::square(16, PixelPitch::from_um(36.0));
        DonnBuilder::new(grid, Wavelength::from_nm(532.0))
            .distance(Distance::from_mm(10.0))
            .diffractive_layers(depth)
            .detector(Detector::grid_layout(16, 16, 2, 4))
            .init_seed(3)
            .build()
    }

    #[test]
    fn training_reduces_loss_and_learns_toy_task() {
        let mut model = toy_model(2);
        let data = toy_dataset(40, 16, 16);
        let config = TrainConfig {
            epochs: 8,
            batch_size: 10,
            learning_rate: 0.1,
            ..TrainConfig::default()
        };
        let history = train(&mut model, &data, &config);
        assert_eq!(history.len(), 8);
        assert!(
            history.last().unwrap().loss < history.first().unwrap().loss,
            "loss must decrease: {:?} -> {:?}",
            history.first().unwrap().loss,
            history.last().unwrap().loss
        );
        let acc = evaluate(&model, &data);
        assert!(acc > 0.9, "toy task should be learnable, got {acc}");
    }

    #[test]
    fn temperature_anneals_geometrically() {
        let config = TrainConfig {
            epochs: 3,
            initial_temperature: 1.0,
            final_temperature: 0.25,
            ..TrainConfig::default()
        };
        assert!((anneal_temperature(&config, 0) - 1.0).abs() < 1e-12);
        assert!((anneal_temperature(&config, 1) - 0.5).abs() < 1e-12);
        assert!((anneal_temperature(&config, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn detector_noise_degrades_or_preserves_accuracy() {
        let mut model = toy_model(2);
        let data = toy_dataset(30, 16, 16);
        let config = TrainConfig {
            epochs: 6,
            batch_size: 10,
            learning_rate: 0.1,
            ..TrainConfig::default()
        };
        train(&mut model, &data, &config);
        let clean = evaluate(&model, &data);
        let noisy = evaluate_with_detector_noise(&model, &data, 0.05, 1);
        assert!(
            noisy <= clean + 0.15,
            "noise should not significantly help: clean {clean}, noisy {noisy}"
        );
        // Identity at zero noise.
        let zero = evaluate_with_detector_noise(&model, &data, 0.0, 1);
        assert!((zero - clean).abs() < 1e-12);
    }

    #[test]
    fn confidence_in_unit_range() {
        let model = toy_model(1);
        let data = toy_dataset(6, 16, 16);
        let c = mean_confidence(&model, &data);
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let model = toy_model(1);
        assert_eq!(evaluate(&model, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn train_validates_labels() {
        let mut model = toy_model(1);
        let data = vec![(vec![0.0; 256], 9usize)];
        train(&mut model, &data, &TrainConfig::default());
    }

    #[test]
    fn codesign_model_trains_on_toy_task() {
        let grid = Grid::square(16, PixelPitch::from_um(36.0));
        let mut model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
            .distance(Distance::from_mm(10.0))
            .codesign_layers(2, lr_hardware::SlmModel::ideal(16), 1.0)
            .detector(Detector::grid_layout(16, 16, 2, 4))
            .init_seed(5)
            .build();
        let data = toy_dataset(30, 16, 16);
        let config = TrainConfig {
            epochs: 8,
            batch_size: 10,
            learning_rate: 0.3,
            initial_temperature: 1.0,
            final_temperature: 0.3,
            ..TrainConfig::default()
        };
        train(&mut model, &data, &config);
        let soft = evaluate(&model, &data);
        let hard = evaluate_deployed(&model, &data);
        assert!(soft > 0.8, "codesign soft accuracy too low: {soft}");
        // Deployment gap of a codesign model should be small.
        assert!(
            hard >= soft - 0.2,
            "codesign deployment gap too large: {soft} -> {hard}"
        );
    }
}
