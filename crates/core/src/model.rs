//! Sequential DONN container (`lr.models` in the paper's DSL).
//!
//! A [`DonnModel`] stacks diffractive layers in propagation order, adds the
//! final free-space hop to the detector plane, and reads out class logits
//! through a [`Detector`]. It exposes the forward/backward pair the trainer
//! drives, plus inference entry points for emulation, deployment, and
//! visualization.

use crate::layers::codesign::{CodesignCache, CodesignLayer, CodesignMode};
use crate::layers::detector::Detector;
use crate::layers::diffractive::{DiffractiveBatchCache, DiffractiveCache, DiffractiveLayer};
use crate::layers::nonlinear::{NonlinearBatchCache, NonlinearCache, SaturableAbsorber};
use lr_obs::{KernelKind, KernelTimer};
use lr_optics::{Approximation, Distance, FreeSpace, Grid, PropagationScratch, Wavelength};
use lr_tensor::{Field, FieldBatch};
use std::cell::RefCell;

/// One optical layer: free-phase, hardware-codesign, or a parameter-free
/// nonlinear thin film.
#[derive(Debug, Clone)]
pub enum Layer {
    /// Raw free-phase layer (`lr.layers.diffractlayer_raw`).
    Diffractive(DiffractiveLayer),
    /// Hardware-aware Gumbel-Softmax layer (`lr.layers.diffractlayer`).
    Codesign(CodesignLayer),
    /// Saturable-absorber nonlinearity at the current plane (paper §6).
    Nonlinear(SaturableAbsorber),
}

impl Layer {
    /// Number of trainable parameters in this layer.
    pub fn num_params(&self) -> usize {
        match self {
            Layer::Diffractive(l) => l.num_params(),
            Layer::Codesign(l) => l.num_params(),
            Layer::Nonlinear(_) => 0,
        }
    }

    /// Immutable view of the flat parameter vector.
    pub fn params(&self) -> &[f64] {
        match self {
            Layer::Diffractive(l) => l.phases(),
            Layer::Codesign(l) => l.logits(),
            Layer::Nonlinear(_) => &[],
        }
    }

    /// Mutable view of the flat parameter vector.
    pub fn params_mut(&mut self) -> &mut [f64] {
        match self {
            Layer::Diffractive(l) => l.phases_mut(),
            Layer::Codesign(l) => l.logits_mut(),
            Layer::Nonlinear(_) => &mut [],
        }
    }

    /// The currently-deployable phase mask of this layer (radians): free
    /// phases for raw layers, argmax device phases for codesign layers,
    /// empty for non-modulating layers.
    pub fn phase_mask(&self) -> Vec<f64> {
        match self {
            Layer::Diffractive(l) => l.phases().to_vec(),
            Layer::Codesign(l) => l.hard_phases(),
            Layer::Nonlinear(_) => Vec::new(),
        }
    }
}

/// Per-layer forward activations for one sample.
#[derive(Debug, Clone)]
pub enum LayerCache {
    /// Cache of a raw layer.
    Diffractive(DiffractiveCache),
    /// Cache of a codesign layer.
    Codesign(CodesignCache),
    /// Cache of a nonlinear layer.
    Nonlinear(NonlinearCache),
}

/// Full forward trace of one sample (needed for the backward pass).
#[derive(Debug, Clone)]
pub struct Trace {
    caches: Vec<LayerCache>,
    /// Wavefield on the detector plane.
    pub detector_field: Field,
    /// Class logits (detector region intensity sums).
    pub logits: Vec<f64>,
}

/// Gradient buffers matching a model's layers; accumulated across a batch.
#[derive(Debug, Clone)]
pub struct ModelGrads {
    per_layer: Vec<Vec<f64>>,
}

impl ModelGrads {
    /// Creates zeroed buffers shaped like `model`'s parameters.
    pub fn zeros_like(model: &DonnModel) -> Self {
        ModelGrads {
            per_layer: model
                .layers
                .iter()
                .map(|l| vec![0.0; l.num_params()])
                .collect(),
        }
    }

    /// Gradient buffer of layer `i`.
    pub fn layer(&self, i: usize) -> &[f64] {
        &self.per_layer[i]
    }

    /// Accumulates another gradient set: `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, other: &ModelGrads) {
        assert_eq!(
            self.per_layer.len(),
            other.per_layer.len(),
            "gradient layer count mismatch"
        );
        for (a, b) in self.per_layer.iter_mut().zip(&other.per_layer) {
            assert_eq!(a.len(), b.len(), "gradient buffer length mismatch");
            for (x, &y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Scales all gradients (e.g. by `1/batch_size`).
    pub fn scale(&mut self, s: f64) {
        for layer in &mut self.per_layer {
            for g in layer.iter_mut() {
                *g *= s;
            }
        }
    }

    /// Global L2 norm of all gradients — a training-health diagnostic.
    pub fn norm(&self) -> f64 {
        self.per_layer
            .iter()
            .flat_map(|l| l.iter())
            .map(|g| g * g)
            .sum::<f64>()
            .sqrt()
    }
}

/// Reusable per-thread buffers for forward/backward passes: one running
/// wavefield, one gradient field, and the propagation scratch (FFT
/// workspace + shift staging) shared by every layer of one model shape.
///
/// Build one per `(thread, model)` via [`DonnModel::make_workspace`] and
/// thread it through [`DonnModel::infer_into`],
/// [`DonnModel::forward_trace_with`], and [`DonnModel::backward_with`]. The
/// inference path then performs **zero heap allocations** in steady state
/// (verified by the counting-allocator test in `tests/zero_alloc.rs`).
/// Workspaces are not `Sync`; each worker thread owns its own.
#[derive(Debug, Clone)]
pub struct PropagationWorkspace {
    rows: usize,
    cols: usize,
    scratch: PropagationScratch,
    u: Field,
    grad: Field,
}

impl PropagationWorkspace {
    /// Builds a workspace for a `rows × cols` plane.
    pub fn new(rows: usize, cols: usize) -> Self {
        PropagationWorkspace {
            rows,
            cols,
            scratch: PropagationScratch::new(rows, cols),
            u: Field::zeros(rows, cols),
            grad: Field::zeros(rows, cols),
        }
    }

    /// Plane shape this workspace serves.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The input-field gradient left behind by the latest
    /// [`DonnModel::backward_with`] call.
    pub fn input_grad(&self) -> &Field {
        &self.grad
    }

    /// Heap bytes held by this workspace's buffers — what the serving
    /// runtime's resident-memory accounting credits back when a retired
    /// model's per-worker workspaces are reclaimed.
    pub fn resident_bytes(&self) -> usize {
        self.scratch.resident_bytes() + self.u.resident_bytes() + self.grad.resident_bytes()
    }
}

/// Reusable buffers for **batched** forward/backward passes: the running
/// wavefield planes (one per sample, up to a fixed capacity), the shared
/// propagation scratch, a gradient batch (grown lazily by the first
/// batched backward pass), staged per-sample logits for the serving
/// two-phase path, and a per-layer seed scratch.
///
/// Build one per `(thread, model, max batch)` via
/// [`DonnModel::make_batch_workspace`] and thread it through
/// [`DonnModel::infer_batch_into`] /
/// [`DonnModel::forward_trace_batch_into`] /
/// [`DonnModel::backward_batch_with`]. For any batch size up to the
/// capacity, the batched inference path performs **zero heap allocations**
/// in steady state (`tests/zero_alloc.rs`); growing past the capacity
/// reallocates and is intended for setup code. Workspaces are not `Sync`;
/// each worker owns its own — the same contract as
/// [`PropagationWorkspace`].
#[derive(Debug, Clone)]
pub struct BatchWorkspace {
    rows: usize,
    cols: usize,
    classes: usize,
    /// Running wavefield planes.
    u: FieldBatch,
    /// Gradient planes (capacity 0 until the first batched backward, so
    /// inference-only owners — the serving runtime — pay nothing for it).
    grad: FieldBatch,
    scratch: PropagationScratch,
    /// Staged per-sample logits for the two-phase serving path
    /// ([`BatchWorkspace::load_input`] → [`DonnModel::infer_staged_batch`]
    /// → [`BatchWorkspace::staged_logits`]).
    staged: Vec<Vec<f64>>,
    /// Per-layer decorrelated seed scratch for the batched traced forward.
    layer_seeds: Vec<u64>,
}

impl BatchWorkspace {
    /// Builds a workspace for up to `capacity` samples on a `rows × cols`
    /// plane with `classes` readout classes.
    pub fn new(capacity: usize, rows: usize, cols: usize, classes: usize) -> Self {
        BatchWorkspace {
            rows,
            cols,
            classes,
            u: FieldBatch::with_capacity(capacity, rows, cols),
            grad: FieldBatch::with_capacity(0, rows, cols),
            // Batched propagation takes the lane-packed SIMD path; pre-size
            // its buffers so the first batched call is allocation-free.
            scratch: PropagationScratch::new_batched(rows, cols),
            staged: (0..capacity).map(|_| Vec::with_capacity(classes)).collect(),
            layer_seeds: Vec::with_capacity(capacity),
        }
    }

    /// Plane shape this workspace serves.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Sample capacity allocated up front (larger batches reallocate).
    pub fn capacity(&self) -> usize {
        self.u.capacity()
    }

    /// Active batch size of the current (or last) call.
    pub fn batch(&self) -> usize {
        self.u.batch()
    }

    /// Starts a batch of `n` samples: activates `n` wavefield planes and
    /// ensures `n` staged logit slots exist. Allocation-free while
    /// `n ≤ capacity`.
    pub fn begin_batch(&mut self, n: usize) {
        self.u.set_batch(n);
        if self.staged.len() < n {
            let classes = self.classes;
            self.staged.resize_with(n, || Vec::with_capacity(classes));
        }
    }

    /// Copies one input field into plane `b` of the active batch.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `b ≥` the active batch size.
    pub fn load_input(&mut self, b: usize, input: &Field) {
        self.u.copy_plane_from(b, input);
    }

    /// Re-encodes real amplitudes into plane `b` of the active batch
    /// (phase zero), allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or `b ≥` the active batch size.
    pub fn load_amplitudes(&mut self, b: usize, amplitudes: &[f64]) {
        self.u.set_plane_amplitudes(b, amplitudes);
    }

    /// The logits staged for sample `b` by the latest
    /// [`DonnModel::infer_staged_batch`] call.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a sample of the active batch (a stale slot
    /// from an earlier, larger batch is never handed out).
    pub fn staged_logits(&self, b: usize) -> &[f64] {
        assert!(
            b < self.u.batch(),
            "staged_logits: sample index out of range"
        );
        &self.staged[b]
    }

    /// The input-gradient planes left behind by the latest
    /// [`DonnModel::backward_batch_with`] call (one per sample).
    pub fn input_grad_batch(&self) -> &FieldBatch {
        &self.grad
    }

    /// Heap bytes held by this workspace's buffers — feeds the serving
    /// runtime's resident-memory accounting.
    pub fn resident_bytes(&self) -> usize {
        self.u.resident_bytes()
            + self.grad.resident_bytes()
            + self.scratch.resident_bytes()
            + self
                .staged
                .iter()
                .map(|s| s.capacity() * std::mem::size_of::<f64>())
                .sum::<usize>()
    }
}

/// Batched per-layer forward activations for one [`BatchTrace`].
#[derive(Debug, Clone)]
pub enum BatchLayerCache {
    /// Cache of a raw diffractive layer (plane-batched).
    Diffractive(DiffractiveBatchCache),
    /// Caches of a codesign layer, one per sample (each carries its own
    /// Gumbel weights/modulation).
    Codesign(Vec<CodesignCache>),
    /// Cache of a nonlinear layer (plane-batched).
    Nonlinear(NonlinearBatchCache),
}

/// Full forward trace of a **batch** of samples — the batched counterpart
/// of [`Trace`], reused in place across training steps (see
/// [`crate::train::BatchTraceRing`]).
#[derive(Debug, Clone)]
pub struct BatchTrace {
    caches: Vec<BatchLayerCache>,
    /// Wavefields on the detector plane, one per sample.
    pub detector_fields: FieldBatch,
    /// Class logits per sample.
    pub logits: Vec<Vec<f64>>,
}

impl Default for BatchTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchTrace {
    /// Creates an empty trace; the first batched forward pass shapes it.
    pub fn new() -> Self {
        BatchTrace {
            caches: Vec::new(),
            detector_fields: FieldBatch::with_capacity(0, 1, 1),
            logits: Vec::new(),
        }
    }

    /// Number of samples in the latest traced batch.
    pub fn batch(&self) -> usize {
        self.detector_fields.batch()
    }
}

/// The batched layer surface: transform every active plane of a
/// [`FieldBatch`] in place, inference mode (no activation caches). All
/// phase-modulating layers ([`DiffractiveLayer`], [`CodesignLayer`]), the
/// amplitude nonlinearity ([`SaturableAbsorber`]), and the [`Layer`] enum
/// implement it; the readout layer's batched surface is
/// [`Detector::read_batch_into`]. Implementations run the *same* per-plane
/// kernels as the per-sample entry points, so batched and per-sample
/// execution are bit-identical.
pub trait BatchForward {
    /// Transforms every active plane of `batch` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer grid, or if `mode` is
    /// [`CodesignMode::Train`] for layers whose training pass needs a
    /// cache (use the layer's `forward_batch_traced`).
    fn forward_batch_into(
        &self,
        batch: &mut FieldBatch,
        mode: CodesignMode,
        scratch: &mut PropagationScratch,
    );
}

impl BatchForward for DiffractiveLayer {
    fn forward_batch_into(
        &self,
        batch: &mut FieldBatch,
        _mode: CodesignMode,
        scratch: &mut PropagationScratch,
    ) {
        self.infer_batch_inplace(batch, scratch);
    }
}

impl BatchForward for CodesignLayer {
    fn forward_batch_into(
        &self,
        batch: &mut FieldBatch,
        mode: CodesignMode,
        scratch: &mut PropagationScratch,
    ) {
        self.infer_batch_inplace(batch, mode, scratch);
    }
}

impl BatchForward for SaturableAbsorber {
    fn forward_batch_into(
        &self,
        batch: &mut FieldBatch,
        _mode: CodesignMode,
        _scratch: &mut PropagationScratch,
    ) {
        self.infer_batch_inplace(batch);
    }
}

impl BatchForward for Layer {
    fn forward_batch_into(
        &self,
        batch: &mut FieldBatch,
        mode: CodesignMode,
        scratch: &mut PropagationScratch,
    ) {
        match self {
            Layer::Diffractive(l) => l.forward_batch_into(batch, mode, scratch),
            Layer::Codesign(l) => l.forward_batch_into(batch, mode, scratch),
            Layer::Nonlinear(l) => l.forward_batch_into(batch, mode, scratch),
        }
    }
}

thread_local! {
    /// Per-thread workspace pool backing the workspace-free entry points
    /// (`infer`, `forward_trace`, `backward`), so existing call sites get
    /// buffer reuse without an API change.
    static TLS_WORKSPACES: RefCell<Vec<PropagationWorkspace>> = const { RefCell::new(Vec::new()) };
}

/// Lends this thread's workspace for `shape` to `f`, creating it on first
/// use for that shape on this thread.
fn with_tls_workspace<R>(
    shape: (usize, usize),
    f: impl FnOnce(&mut PropagationWorkspace) -> R,
) -> R {
    let mut ws = TLS_WORKSPACES.with(|cache| {
        let mut cache = cache.borrow_mut();
        match cache.iter().position(|w| w.shape() == shape) {
            Some(i) => cache.swap_remove(i),
            None => PropagationWorkspace::new(shape.0, shape.1),
        }
    });
    let out = f(&mut ws);
    TLS_WORKSPACES.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() < 4 {
            cache.push(ws);
        }
    });
    out
}

/// A complete DONN: stacked layers → final free-space hop → detector.
///
/// # Examples
///
/// ```
/// use lightridge::{DonnBuilder, Detector};
/// use lr_optics::{Approximation, Distance, Grid, PixelPitch, Wavelength};
/// use lr_tensor::Field;
///
/// let grid = Grid::square(32, PixelPitch::from_um(36.0));
/// let model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
///     .distance(Distance::from_mm(100.0))
///     .diffractive_layers(2)
///     .detector(Detector::grid_layout(32, 32, 4, 3))
///     .build();
/// let logits = model.infer(&Field::ones(32, 32));
/// assert_eq!(logits.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DonnModel {
    grid: Grid,
    wavelength: Wavelength,
    layers: Vec<Layer>,
    final_propagator: FreeSpace,
    detector: Detector,
}

impl DonnModel {
    /// Assembles a model from parts. Prefer [`crate::DonnBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if there are no layers or the detector plane does not match
    /// the grid.
    pub fn from_parts(
        grid: Grid,
        wavelength: Wavelength,
        layers: Vec<Layer>,
        final_propagator: FreeSpace,
        detector: Detector,
    ) -> Self {
        assert!(
            !layers.is_empty(),
            "a DONN needs at least one diffractive layer"
        );
        assert_eq!(
            detector.shape(),
            grid.shape(),
            "detector plane must match the grid"
        );
        DonnModel {
            grid,
            wavelength,
            layers,
            final_propagator,
            detector,
        }
    }

    /// The model's sampling grid.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Design wavelength.
    pub fn wavelength(&self) -> Wavelength {
        self.wavelength
    }

    /// The stacked layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (optimizer / deployment editing).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Model depth (number of diffractive layers).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The final free-space hop onto the detector plane.
    pub fn final_propagator(&self) -> &FreeSpace {
        &self.final_propagator
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.detector.num_classes()
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// Allocates a [`PropagationWorkspace`] sized for this model's grid.
    pub fn make_workspace(&self) -> PropagationWorkspace {
        let (rows, cols) = self.grid.shape();
        PropagationWorkspace::new(rows, cols)
    }

    /// Full forward pass with trace. `seed` drives per-sample Gumbel noise
    /// for codesign layers in [`CodesignMode::Train`].
    ///
    /// Borrows this thread's cached workspace; batch loops that own their
    /// workspaces should call [`DonnModel::forward_trace_with`] directly.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the grid.
    pub fn forward_trace(&self, input: &Field, mode: CodesignMode, seed: u64) -> Trace {
        with_tls_workspace(self.grid.shape(), |ws| {
            self.forward_trace_with(input, mode, seed, ws)
        })
    }

    /// [`DonnModel::forward_trace`] through a caller-owned workspace: the
    /// running wavefield lives in the workspace and every free-space hop
    /// reuses its FFT scratch, so the only per-sample allocations left are
    /// the activation caches the returned [`Trace`] owns.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the grid.
    pub fn forward_trace_with(
        &self,
        input: &Field,
        mode: CodesignMode,
        seed: u64,
        ws: &mut PropagationWorkspace,
    ) -> Trace {
        assert_eq!(
            input.shape(),
            self.grid.shape(),
            "input/grid shape mismatch"
        );
        ws.u.copy_from(input);
        let mut caches = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                Layer::Diffractive(l) => {
                    caches.push(LayerCache::Diffractive(
                        l.forward_through(&mut ws.u, &mut ws.scratch),
                    ));
                }
                Layer::Codesign(l) => {
                    // Decorrelate noise across layers.
                    let layer_seed = seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64);
                    caches.push(LayerCache::Codesign(l.forward_through(
                        &mut ws.u,
                        mode,
                        layer_seed,
                        &mut ws.scratch,
                    )));
                }
                Layer::Nonlinear(l) => {
                    caches.push(LayerCache::Nonlinear(l.forward_through(&mut ws.u)));
                }
            }
        }
        self.final_propagator
            .propagate_with(&mut ws.u, &mut ws.scratch);
        let logits = self.detector.read(&ws.u);
        Trace {
            caches,
            detector_field: ws.u.clone(),
            logits,
        }
    }

    /// [`DonnModel::forward_trace_with`] through a caller-owned, reusable
    /// [`Trace`]: per-layer activation caches, the detector field, and the
    /// logits buffer are all overwritten in place instead of freshly
    /// allocated. Once `trace` has been shaped by a prior pass over this
    /// model, the whole forward trace performs **zero heap allocations**
    /// for diffractive/nonlinear stacks (codesign layers reuse their
    /// weight/modulation buffers too). Combined with
    /// [`DonnModel::backward_with`] this extends the zero-allocation
    /// workspace contract to the full training step (see the
    /// [`crate::train::TraceRing`] per-worker ring and `tests/zero_alloc.rs`).
    ///
    /// A `trace` produced by a different model (or a previous shape) is
    /// reshaped on the fly, allocating once.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the grid.
    pub fn forward_trace_into(
        &self,
        input: &Field,
        mode: CodesignMode,
        seed: u64,
        ws: &mut PropagationWorkspace,
        trace: &mut Trace,
    ) {
        assert_eq!(
            input.shape(),
            self.grid.shape(),
            "input/grid shape mismatch"
        );
        ws.u.copy_from(input);
        trace.caches.truncate(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            let layer_seed = seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64);
            // Reuse the cache slot in place when its kind matches the
            // layer; replace it (allocating once) otherwise.
            match (layer, trace.caches.get_mut(i)) {
                (Layer::Diffractive(l), Some(LayerCache::Diffractive(c))) => {
                    l.forward_into(&mut ws.u, c, &mut ws.scratch);
                }
                (Layer::Codesign(l), Some(LayerCache::Codesign(c))) => {
                    l.forward_into(&mut ws.u, mode, layer_seed, &mut ws.scratch, c);
                }
                (Layer::Nonlinear(l), Some(LayerCache::Nonlinear(c))) => {
                    l.forward_into(&mut ws.u, c);
                }
                (layer, slot) => {
                    let fresh = match layer {
                        Layer::Diffractive(l) => {
                            LayerCache::Diffractive(l.forward_through(&mut ws.u, &mut ws.scratch))
                        }
                        Layer::Codesign(l) => LayerCache::Codesign(l.forward_through(
                            &mut ws.u,
                            mode,
                            layer_seed,
                            &mut ws.scratch,
                        )),
                        Layer::Nonlinear(l) => LayerCache::Nonlinear(l.forward_through(&mut ws.u)),
                    };
                    match slot {
                        Some(slot) => *slot = fresh,
                        None => trace.caches.push(fresh),
                    }
                }
            }
        }
        self.final_propagator
            .propagate_with(&mut ws.u, &mut ws.scratch);
        if trace.detector_field.shape() != ws.u.shape() {
            trace.detector_field = Field::zeros(ws.u.rows(), ws.u.cols());
        }
        trace.detector_field.copy_from(&ws.u);
        {
            let _t = KernelTimer::start(KernelKind::Detector);
            self.detector.read_into(&ws.u, &mut trace.logits);
        }
    }

    /// Inference logits through a caller-owned workspace and output buffer:
    /// **zero heap allocations** in steady state (the paper's emulation hot
    /// path). Codesign layers use their noise-free states per `mode`.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the grid or `mode` is
    /// [`CodesignMode::Train`].
    pub fn infer_mode_into(
        &self,
        input: &Field,
        mode: CodesignMode,
        ws: &mut PropagationWorkspace,
        logits: &mut Vec<f64>,
    ) {
        assert_eq!(
            input.shape(),
            self.grid.shape(),
            "input/grid shape mismatch"
        );
        ws.u.copy_from(input);
        for layer in &self.layers {
            match layer {
                Layer::Diffractive(l) => l.infer_inplace(&mut ws.u, &mut ws.scratch),
                Layer::Codesign(l) => l.infer_inplace(&mut ws.u, mode, &mut ws.scratch),
                Layer::Nonlinear(l) => l.infer_inplace(&mut ws.u),
            }
        }
        self.final_propagator
            .propagate_with(&mut ws.u, &mut ws.scratch);
        {
            let _t = KernelTimer::start(KernelKind::Detector);
            self.detector.read_into(&ws.u, logits);
        }
    }

    /// Emulation-mode [`DonnModel::infer_mode_into`] (soft codesign states).
    pub fn infer_into(&self, input: &Field, ws: &mut PropagationWorkspace, logits: &mut Vec<f64>) {
        self.infer_mode_into(input, CodesignMode::Soft, ws, logits);
    }

    /// Allocates a [`BatchWorkspace`] for up to `capacity` samples on this
    /// model's grid.
    pub fn make_batch_workspace(&self, capacity: usize) -> BatchWorkspace {
        let (rows, cols) = self.grid.shape();
        BatchWorkspace::new(capacity, rows, cols, self.num_classes())
    }

    /// **True batched inference**: all `B` inputs propagate through every
    /// layer as one fused [`FieldBatch`] pass — one plan lookup, one
    /// transfer-kernel broadcast, and one shared scratch per layer hop
    /// instead of `B` per-sample traversals. Each logit vector lands in
    /// the matching output slot. This is the registry-facing serving
    /// primitive; it performs **zero heap allocations** in steady state
    /// (batch ≤ workspace capacity) and is **bit-identical** to `B`
    /// separate [`DonnModel::infer`] calls, because every batched hop runs
    /// the same per-plane kernels as the per-sample path.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `outputs` lengths differ, any input shape
    /// mismatches the grid, or `mode` is [`CodesignMode::Train`].
    pub fn infer_batch_into(
        &self,
        inputs: &[&Field],
        mode: CodesignMode,
        ws: &mut BatchWorkspace,
        outputs: &mut [Vec<f64>],
    ) {
        assert_eq!(
            inputs.len(),
            outputs.len(),
            "inputs/outputs length mismatch"
        );
        ws.begin_batch(inputs.len());
        for (b, input) in inputs.iter().enumerate() {
            ws.load_input(b, input);
        }
        self.forward_batch_planes(mode, ws);
        {
            let _t = KernelTimer::start(KernelKind::Detector);
            self.detector.read_batch_into(&ws.u, outputs);
        }
    }

    /// The staged half of the serving fast path: runs batched inference on
    /// the planes already loaded into `ws` (via
    /// [`BatchWorkspace::begin_batch`] + [`BatchWorkspace::load_input`]),
    /// leaving each sample's logits in [`BatchWorkspace::staged_logits`].
    /// The serve dispatcher stages inputs one slot-lock at a time, executes
    /// the whole coalesced micro-batch here as **one batched forward**, and
    /// distributes the staged logits — all without holding more than one
    /// request lock at once and without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is [`CodesignMode::Train`].
    pub fn infer_staged_batch(&self, mode: CodesignMode, ws: &mut BatchWorkspace) {
        self.forward_batch_planes(mode, ws);
        let n = ws.u.batch();
        {
            let _t = KernelTimer::start(KernelKind::Detector);
            self.detector.read_batch_into(&ws.u, &mut ws.staged[..n]);
        }
    }

    /// Runs the layer stack plus the final hop over the active planes of
    /// `ws.u` — the shared body of both batched inference entry points.
    fn forward_batch_planes(&self, mode: CodesignMode, ws: &mut BatchWorkspace) {
        assert_eq!(
            ws.shape(),
            self.grid.shape(),
            "workspace/grid shape mismatch"
        );
        for layer in &self.layers {
            layer.forward_batch_into(&mut ws.u, mode, &mut ws.scratch);
        }
        self.final_propagator
            .propagate_batch_into(&mut ws.u, &mut ws.scratch);
    }

    /// Batched [`DonnModel::forward_trace_into`]: forwards a whole batch
    /// of inputs through the stack as fused [`FieldBatch`] passes,
    /// overwriting the reusable `trace` in place (per-layer batch caches,
    /// detector planes, per-sample logits). `seeds[b]` drives plane `b`'s
    /// Gumbel noise in [`CodesignMode::Train`], decorrelated across layers
    /// exactly like the per-sample path — traced batched forwards are
    /// bit-identical to `B` per-sample [`DonnModel::forward_trace_with`]
    /// calls with the same seeds.
    ///
    /// # Panics
    ///
    /// Panics if the input plane shape mismatches the grid or `seeds` does
    /// not cover the batch.
    pub fn forward_trace_batch_into(
        &self,
        inputs: &FieldBatch,
        mode: CodesignMode,
        seeds: &[u64],
        ws: &mut BatchWorkspace,
        trace: &mut BatchTrace,
    ) {
        assert_eq!(
            inputs.plane_shape(),
            self.grid.shape(),
            "input/grid shape mismatch"
        );
        assert_eq!(seeds.len(), inputs.batch(), "one seed per batch plane");
        let b = inputs.batch();
        ws.begin_batch(b);
        ws.u.copy_from(inputs);
        trace.caches.truncate(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            // Decorrelate noise across layers (same formula as the
            // per-sample trace path).
            ws.layer_seeds.clear();
            ws.layer_seeds.extend(
                seeds
                    .iter()
                    .map(|s| s.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64)),
            );
            let (rows, cols) = self.grid.shape();
            // Reuse the cache slot in place when its kind matches the
            // layer; replace it (allocating once) otherwise.
            let slot = trace.caches.get_mut(i);
            match (layer, slot) {
                (Layer::Diffractive(l), Some(BatchLayerCache::Diffractive(c))) => {
                    l.forward_batch_traced(&mut ws.u, c, &mut ws.scratch);
                }
                (Layer::Codesign(l), Some(BatchLayerCache::Codesign(c))) => {
                    l.forward_batch_traced(&mut ws.u, mode, &ws.layer_seeds, &mut ws.scratch, c);
                }
                (Layer::Nonlinear(l), Some(BatchLayerCache::Nonlinear(c))) => {
                    l.forward_batch_traced(&mut ws.u, c);
                }
                (layer, slot) => {
                    let fresh = match layer {
                        Layer::Diffractive(l) => {
                            let mut c = DiffractiveBatchCache::with_capacity(b, rows, cols);
                            l.forward_batch_traced(&mut ws.u, &mut c, &mut ws.scratch);
                            BatchLayerCache::Diffractive(c)
                        }
                        Layer::Codesign(l) => {
                            let mut c = Vec::new();
                            l.forward_batch_traced(
                                &mut ws.u,
                                mode,
                                &ws.layer_seeds,
                                &mut ws.scratch,
                                &mut c,
                            );
                            BatchLayerCache::Codesign(c)
                        }
                        Layer::Nonlinear(l) => {
                            let mut c = NonlinearBatchCache::with_capacity(b, rows, cols);
                            l.forward_batch_traced(&mut ws.u, &mut c);
                            BatchLayerCache::Nonlinear(c)
                        }
                    };
                    match slot {
                        Some(slot) => *slot = fresh,
                        None => trace.caches.push(fresh),
                    }
                }
            }
        }
        self.final_propagator
            .propagate_batch_into(&mut ws.u, &mut ws.scratch);
        if trace.detector_fields.plane_shape() != ws.u.plane_shape() {
            trace.detector_fields = FieldBatch::with_capacity(b, ws.u.rows(), ws.u.cols());
        }
        trace.detector_fields.copy_from(&ws.u);
        if trace.logits.len() < b {
            let classes = self.num_classes();
            trace.logits.resize_with(b, || Vec::with_capacity(classes));
        }
        trace.logits.truncate(b);
        {
            let _t = KernelTimer::start(KernelKind::Detector);
            self.detector.read_batch_into(&ws.u, &mut trace.logits);
        }
    }

    /// Batched [`DonnModel::backward_with`]: backpropagates every sample
    /// of a traced batch as fused [`FieldBatch`] adjoint passes. Parameter
    /// gradients accumulate into `grads` summed over the batch in plane
    /// order — bit-identical to `B` per-sample backward calls in sample
    /// order — and the per-sample input gradients are left in
    /// [`BatchWorkspace::input_grad_batch`]. Unlike the per-sample path,
    /// codesign and nonlinear layers run fully in place here (no
    /// per-sample gradient-field allocation).
    ///
    /// # Panics
    ///
    /// Panics if `logit_grads` does not hold one `num_classes` vector per
    /// traced sample or the trace does not belong to this model.
    pub fn backward_batch_with(
        &self,
        trace: &BatchTrace,
        logit_grads: &[Vec<f64>],
        grads: &mut ModelGrads,
        ws: &mut BatchWorkspace,
    ) {
        let b = trace.batch();
        assert_eq!(logit_grads.len(), b, "one logit-gradient row per sample");
        assert_eq!(
            trace.caches.len(),
            self.layers.len(),
            "trace/model depth mismatch"
        );
        ws.grad.set_batch(b);
        for (bi, row) in logit_grads.iter().enumerate() {
            assert_eq!(
                row.len(),
                self.num_classes(),
                "logit gradient length mismatch"
            );
            self.detector.backward_plane_into(
                trace.detector_fields.plane(bi),
                row,
                ws.grad.plane_mut(bi),
            );
        }
        self.final_propagator
            .adjoint_batch_into(&mut ws.grad, &mut ws.scratch);
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let buf = &mut grads.per_layer[i];
            match (layer, &trace.caches[i]) {
                (Layer::Diffractive(l), BatchLayerCache::Diffractive(c)) => {
                    l.backward_batch_inplace(&mut ws.grad, c, buf, &mut ws.scratch);
                }
                (Layer::Codesign(l), BatchLayerCache::Codesign(c)) => {
                    l.backward_batch_inplace(&mut ws.grad, c, buf, &mut ws.scratch);
                }
                (Layer::Nonlinear(l), BatchLayerCache::Nonlinear(c)) => {
                    l.backward_batch_inplace(&mut ws.grad, c);
                }
                _ => panic!("trace cache kind does not match layer kind at layer {i}"),
            }
        }
    }

    /// Forces every lazily-built piece of this model's inference fast path
    /// into the global and per-thread caches: FFT plans and diffraction
    /// transfer kernels for every hop, plus one dummy end-to-end inference
    /// to size scratch. Serving registries call this at registration time
    /// so the first real request pays no plan-construction latency; it
    /// allocates, so never call it from a hot path.
    pub fn prewarm(&self) {
        for layer in &self.layers {
            match layer {
                Layer::Diffractive(l) => l.propagator().prewarm(),
                Layer::Codesign(l) => l.propagator().prewarm(),
                Layer::Nonlinear(_) => {}
            }
        }
        self.final_propagator.prewarm();
        let (rows, cols) = self.grid.shape();
        let mut ws = self.make_workspace();
        let mut logits = Vec::with_capacity(self.num_classes());
        self.infer_into(&Field::ones(rows, cols), &mut ws, &mut logits);
    }

    /// Inference: emulation-mode logits (soft codesign states, no noise).
    pub fn infer(&self, input: &Field) -> Vec<f64> {
        let mut logits = Vec::with_capacity(self.num_classes());
        with_tls_workspace(self.grid.shape(), |ws| {
            self.infer_mode_into(input, CodesignMode::Soft, ws, &mut logits);
        });
        logits
    }

    /// Inference with hard (deployable) codesign states.
    pub fn infer_deployed(&self, input: &Field) -> Vec<f64> {
        let mut logits = Vec::with_capacity(self.num_classes());
        with_tls_workspace(self.grid.shape(), |ws| {
            self.infer_mode_into(input, CodesignMode::Deploy, ws, &mut logits);
        });
        logits
    }

    /// The intensity pattern on the detector plane (the paper's Fig. 6
    /// "detector pattern"), in emulation mode.
    pub fn detector_pattern(&self, input: &Field) -> Vec<f64> {
        self.forward_trace(input, CodesignMode::Soft, 0)
            .detector_field
            .intensity()
    }

    /// Intensity frames of the light as it propagates through the system:
    /// one frame after each layer plus the detector plane. The paper's
    /// tutorial visualizes exactly this sequence (inaccessible in physical
    /// all-optical inference, available in emulation).
    pub fn propagation_frames(&self, input: &Field) -> Vec<Vec<f64>> {
        let trace = self.forward_trace(input, CodesignMode::Soft, 0);
        let mut frames: Vec<Vec<f64>> = trace
            .caches
            .iter()
            .map(|cache| match cache {
                LayerCache::Diffractive(c) => c.output.intensity(),
                LayerCache::Codesign(c) => {
                    // Reconstruct the modulated output from the cache.
                    let mut out = c.propagated.clone();
                    for (z, &m) in out.as_mut_slice().iter_mut().zip(&c.modulation) {
                        *z *= m;
                    }
                    out.intensity()
                }
                LayerCache::Nonlinear(c) => c.input.intensity(),
            })
            .collect();
        frames.push(trace.detector_field.intensity());
        frames
    }

    /// Backward pass from per-class logit gradients; accumulates parameter
    /// gradients into `grads` and returns the input-field gradient.
    ///
    /// # Panics
    ///
    /// Panics if `logit_grads` length differs from the class count or the
    /// trace does not belong to this model.
    pub fn backward(&self, trace: &Trace, logit_grads: &[f64], grads: &mut ModelGrads) -> Field {
        with_tls_workspace(self.grid.shape(), |ws| {
            self.backward_with(trace, logit_grads, grads, ws);
            ws.grad.clone()
        })
    }

    /// [`DonnModel::backward`] through a caller-owned workspace. The
    /// gradient field lives in the workspace and is left in
    /// [`PropagationWorkspace::input_grad`]; parameter gradients accumulate
    /// into `grads` as usual. Diffractive layers and the detector/final-hop
    /// stages run fully in place; codesign and nonlinear layers still
    /// allocate one field per layer per sample in their backward steps.
    ///
    /// # Panics
    ///
    /// Panics if `logit_grads` length differs from the class count or the
    /// trace does not belong to this model.
    pub fn backward_with(
        &self,
        trace: &Trace,
        logit_grads: &[f64],
        grads: &mut ModelGrads,
        ws: &mut PropagationWorkspace,
    ) {
        assert_eq!(
            logit_grads.len(),
            self.num_classes(),
            "logit gradient length mismatch"
        );
        assert_eq!(
            trace.caches.len(),
            self.layers.len(),
            "trace/model depth mismatch"
        );
        self.detector
            .backward_into(&trace.detector_field, logit_grads, &mut ws.grad);
        self.final_propagator
            .adjoint_with(&mut ws.grad, &mut ws.scratch);
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let buf = &mut grads.per_layer[i];
            match (layer, &trace.caches[i]) {
                (Layer::Diffractive(l), LayerCache::Diffractive(c)) => {
                    l.backward_inplace(&mut ws.grad, c, buf, &mut ws.scratch);
                }
                (Layer::Codesign(l), LayerCache::Codesign(c)) => {
                    let g = l.backward(&ws.grad, c, buf);
                    ws.grad.copy_from(&g);
                }
                (Layer::Nonlinear(l), LayerCache::Nonlinear(c)) => {
                    let g = l.backward(&ws.grad, c);
                    ws.grad.copy_from(&g);
                }
                _ => panic!("trace cache kind does not match layer kind at layer {i}"),
            }
        }
    }

    /// Sets the Gumbel-Softmax temperature of every codesign layer.
    pub fn set_temperature(&mut self, tau: f64) {
        for layer in &mut self.layers {
            if let Layer::Codesign(l) = layer {
                l.set_temperature(tau);
            }
        }
    }

    /// Sets γ on every raw diffractive layer (Fig. 7 regularization sweep).
    pub fn set_gamma(&mut self, gamma: f64) {
        for layer in &mut self.layers {
            if let Layer::Diffractive(l) = layer {
                l.set_gamma(gamma);
            }
        }
    }

    /// Per-layer deployable phase masks (radians).
    pub fn phase_masks(&self) -> Vec<Vec<f64>> {
        self.layers.iter().map(Layer::phase_mask).collect()
    }
}

/// Builder for [`DonnModel`] — the `lr.models` front-end of the DSL.
#[derive(Debug, Clone)]
pub struct DonnBuilder {
    grid: Grid,
    wavelength: Wavelength,
    distance: Distance,
    approximation: Approximation,
    gamma: f64,
    layers: Vec<LayerSpec>,
    detector: Option<Detector>,
    init_seed: u64,
}

#[derive(Debug, Clone)]
enum LayerSpec {
    Diffractive,
    Codesign {
        device: lr_hardware::SlmModel,
        temperature: f64,
    },
    Nonlinear {
        alpha: f64,
        saturation: f64,
    },
}

impl DonnBuilder {
    /// Starts a builder with paper-default optics: 0.3 m spacing,
    /// Rayleigh-Sommerfeld approximation, γ = 1.
    pub fn new(grid: Grid, wavelength: Wavelength) -> Self {
        DonnBuilder {
            grid,
            wavelength,
            distance: Distance::from_meters(0.3),
            approximation: Approximation::RayleighSommerfeld,
            gamma: 1.0,
            layers: Vec::new(),
            detector: None,
            init_seed: 42,
        }
    }

    /// Sets the layer-to-layer (and source/detector) spacing.
    pub fn distance(mut self, distance: Distance) -> Self {
        self.distance = distance;
        self
    }

    /// Selects the diffraction approximation.
    pub fn approximation(mut self, approximation: Approximation) -> Self {
        self.approximation = approximation;
        self
    }

    /// Sets the complex-valued regularization factor γ (paper §3.2).
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not finite and positive.
    pub fn gamma(mut self, gamma: f64) -> Self {
        assert!(
            gamma.is_finite() && gamma > 0.0,
            "gamma must be finite and positive"
        );
        self.gamma = gamma;
        self
    }

    /// Appends `count` raw diffractive layers.
    pub fn diffractive_layers(mut self, count: usize) -> Self {
        for _ in 0..count {
            self.layers.push(LayerSpec::Diffractive);
        }
        self
    }

    /// Appends `count` hardware-codesign layers for `device`.
    pub fn codesign_layers(
        mut self,
        count: usize,
        device: lr_hardware::SlmModel,
        temperature: f64,
    ) -> Self {
        for _ in 0..count {
            self.layers.push(LayerSpec::Codesign {
                device: device.clone(),
                temperature,
            });
        }
        self
    }

    /// Appends a saturable-absorber nonlinearity at the current plane
    /// (paper §6: "non-linearity in DONN systems ... realized by nonlinear
    /// optical materials").
    pub fn nonlinearity(mut self, alpha: f64, saturation: f64) -> Self {
        self.layers.push(LayerSpec::Nonlinear { alpha, saturation });
        self
    }

    /// Sets the detector.
    pub fn detector(mut self, detector: Detector) -> Self {
        self.detector = Some(detector);
        self
    }

    /// Sets the parameter-initialization seed.
    pub fn init_seed(mut self, seed: u64) -> Self {
        self.init_seed = seed;
        self
    }

    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if no layers were added or no detector was set.
    pub fn build(self) -> DonnModel {
        assert!(
            !self.layers.is_empty(),
            "add at least one layer before build()"
        );
        let detector = self.detector.expect("set a detector before build()");
        let mut layers = Vec::with_capacity(self.layers.len());
        for (i, spec) in self.layers.into_iter().enumerate() {
            let seed = self.init_seed.wrapping_add(i as u64 * 7919);
            match spec {
                LayerSpec::Diffractive => {
                    let mut l = DiffractiveLayer::new(
                        self.grid,
                        self.wavelength,
                        self.distance,
                        self.approximation,
                        self.gamma,
                    );
                    l.randomize_phases(seed);
                    layers.push(Layer::Diffractive(l));
                }
                LayerSpec::Codesign {
                    device,
                    temperature,
                } => {
                    let mut l = CodesignLayer::new(
                        self.grid,
                        self.wavelength,
                        self.distance,
                        self.approximation,
                        device,
                        self.gamma,
                        temperature,
                    );
                    l.randomize_logits(seed);
                    layers.push(Layer::Codesign(l));
                }
                LayerSpec::Nonlinear { alpha, saturation } => {
                    layers.push(Layer::Nonlinear(SaturableAbsorber::new(alpha, saturation)));
                }
            }
        }
        let final_propagator = FreeSpace::new(
            self.grid,
            self.wavelength,
            self.distance,
            self.approximation,
        );
        DonnModel::from_parts(
            self.grid,
            self.wavelength,
            layers,
            final_propagator,
            detector,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_nn::loss::{one_hot, softmax_mse};
    use lr_optics::PixelPitch;
    use lr_tensor::Complex64;

    fn tiny_model(depth: usize) -> DonnModel {
        let grid = Grid::square(16, PixelPitch::from_um(36.0));
        DonnBuilder::new(grid, Wavelength::from_nm(532.0))
            .distance(Distance::from_mm(20.0))
            .diffractive_layers(depth)
            .detector(Detector::grid_layout(16, 16, 4, 3))
            .build()
    }

    fn sample_input() -> Field {
        Field::from_fn(16, 16, |r, c| {
            let on = (r / 4 + c / 4) % 2 == 0;
            Complex64::from_real(if on { 1.0 } else { 0.0 })
        })
    }

    #[test]
    fn forward_produces_class_logits() {
        let model = tiny_model(3);
        let logits = model.infer(&sample_input());
        assert_eq!(logits.len(), 4);
        assert!(logits.iter().all(|&l| l.is_finite() && l >= 0.0));
        assert!(
            logits.iter().sum::<f64>() > 0.0,
            "some light must reach the detector"
        );
    }

    #[test]
    fn trace_and_infer_agree() {
        let model = tiny_model(2);
        let x = sample_input();
        let trace = model.forward_trace(&x, CodesignMode::Soft, 0);
        assert_eq!(trace.logits, model.infer(&x));
        assert_eq!(trace.detector_field.shape(), (16, 16));
    }

    #[test]
    fn end_to_end_gradient_check() {
        // Full-pipeline finite-difference check through 2 layers, final
        // propagation, detector, softmax-MSE loss.
        let model = tiny_model(2);
        let x = sample_input();
        let target = one_hot(1, 4);

        let trace = model.forward_trace(&x, CodesignMode::Soft, 0);
        let (_, logit_grads) = softmax_mse(&trace.logits, &target);
        let mut grads = ModelGrads::zeros_like(&model);
        model.backward(&trace, &logit_grads, &mut grads);

        for layer_idx in 0..2 {
            let params = model.layers()[layer_idx].params().to_vec();
            let report = lr_nn::gradcheck::check_gradient_sampled(
                |p: &[f64]| {
                    let mut m = model.clone();
                    m.layers_mut()[layer_idx].params_mut().copy_from_slice(p);
                    let t = m.forward_trace(&x, CodesignMode::Soft, 0);
                    softmax_mse(&t.logits, &target).0
                },
                &params,
                grads.layer(layer_idx),
                1e-5,
                12,
            );
            assert!(report.passes(1e-3), "layer {layer_idx}: {report:?}");
        }
    }

    #[test]
    fn gradient_accumulation_linear() {
        let model = tiny_model(1);
        let x = sample_input();
        let target = one_hot(0, 4);
        let trace = model.forward_trace(&x, CodesignMode::Soft, 0);
        let (_, lg) = softmax_mse(&trace.logits, &target);
        let mut g1 = ModelGrads::zeros_like(&model);
        model.backward(&trace, &lg, &mut g1);
        let mut g2 = ModelGrads::zeros_like(&model);
        model.backward(&trace, &lg, &mut g2);
        model.backward(&trace, &lg, &mut g2);
        // g2 accumulated twice = 2×g1
        for (a, b) in g1.layer(0).iter().zip(g2.layer(0)) {
            assert!((2.0 * a - b).abs() < 1e-10);
        }
        g2.scale(0.5);
        for (a, b) in g1.layer(0).iter().zip(g2.layer(0)) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn mixed_stack_builds_and_runs() {
        let grid = Grid::square(12, PixelPitch::from_um(36.0));
        let model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
            .distance(Distance::from_mm(20.0))
            .diffractive_layers(1)
            .codesign_layers(1, lr_hardware::SlmModel::ideal(8), 1.0)
            .detector(Detector::grid_layout(12, 12, 2, 3))
            .build();
        assert_eq!(model.depth(), 2);
        assert!(model.num_params() > 0);
        let logits = model.infer(&Field::ones(12, 12));
        assert_eq!(logits.len(), 2);
        let deployed = model.infer_deployed(&Field::ones(12, 12));
        assert_eq!(deployed.len(), 2);
    }

    #[test]
    fn phase_masks_per_layer() {
        let model = tiny_model(3);
        let masks = model.phase_masks();
        assert_eq!(masks.len(), 3);
        assert!(masks.iter().all(|m| m.len() == 256));
    }

    #[test]
    fn grads_norm_positive_after_backward() {
        let model = tiny_model(2);
        let x = sample_input();
        let trace = model.forward_trace(&x, CodesignMode::Soft, 0);
        let (_, lg) = softmax_mse(&trace.logits, &one_hot(2, 4));
        let mut grads = ModelGrads::zeros_like(&model);
        assert_eq!(grads.norm(), 0.0);
        model.backward(&trace, &lg, &mut grads);
        assert!(grads.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn builder_requires_layers() {
        let grid = Grid::square(8, PixelPitch::from_um(36.0));
        let _ = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
            .detector(Detector::grid_layout(8, 8, 2, 2))
            .build();
    }

    #[test]
    fn nonlinear_stack_end_to_end_gradient_check() {
        // Diffractive -> saturable absorber -> diffractive: gradients must
        // flow correctly through the parameter-free nonlinear film.
        let grid = Grid::square(16, PixelPitch::from_um(36.0));
        let model = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
            .distance(Distance::from_mm(20.0))
            .diffractive_layers(1)
            .nonlinearity(0.3, 0.5)
            .diffractive_layers(1)
            .detector(Detector::grid_layout(16, 16, 4, 3))
            .init_seed(9)
            .build();
        assert_eq!(model.depth(), 3);
        assert_eq!(model.layers()[1].num_params(), 0);

        let x = sample_input();
        let target = one_hot(2, 4);
        let trace = model.forward_trace(&x, CodesignMode::Soft, 0);
        let (_, logit_grads) = softmax_mse(&trace.logits, &target);
        let mut grads = ModelGrads::zeros_like(&model);
        model.backward(&trace, &logit_grads, &mut grads);

        for layer_idx in [0usize, 2] {
            let params = model.layers()[layer_idx].params().to_vec();
            let report = lr_nn::gradcheck::check_gradient_sampled(
                |p: &[f64]| {
                    let mut m = model.clone();
                    m.layers_mut()[layer_idx].params_mut().copy_from_slice(p);
                    let t = m.forward_trace(&x, CodesignMode::Soft, 0);
                    softmax_mse(&t.logits, &target).0
                },
                &params,
                grads.layer(layer_idx),
                1e-5,
                10,
            );
            assert!(report.passes(1e-3), "layer {layer_idx}: {report:?}");
        }
    }

    #[test]
    fn propagation_frames_cover_every_plane() {
        let model = tiny_model(3);
        let frames = model.propagation_frames(&sample_input());
        // 3 layer planes + detector plane.
        assert_eq!(frames.len(), 4);
        assert!(frames.iter().all(|f| f.len() == 256));
        // The detector frame matches detector_pattern.
        assert_eq!(frames[3], model.detector_pattern(&sample_input()));
        // Light never vanishes completely mid-stack.
        assert!(frames.iter().all(|f| f.iter().sum::<f64>() > 0.0));
    }

    #[test]
    fn nonlinear_layer_changes_forward() {
        let grid = Grid::square(12, PixelPitch::from_um(36.0));
        let base = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
            .distance(Distance::from_mm(20.0))
            .diffractive_layers(2)
            .detector(Detector::grid_layout(12, 12, 2, 3))
            .init_seed(4)
            .build();
        let with_nl = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
            .distance(Distance::from_mm(20.0))
            .diffractive_layers(1)
            .nonlinearity(0.2, 0.1)
            .diffractive_layers(1)
            .detector(Detector::grid_layout(12, 12, 2, 3))
            .init_seed(4)
            .build();
        let x = Field::ones(12, 12);
        let a = base.infer(&x);
        let b = with_nl.infer(&x);
        assert!(a.iter().zip(&b).any(|(p, q)| (p - q).abs() > 1e-9));
    }
}
