//! Terminal visualization (`lr.layers.view()`).
//!
//! The paper's tooling renders trained phase masks and detector patterns;
//! here we render them as ASCII heatmaps so examples and experiment
//! binaries can show what the optics are doing without a plotting stack.

use lr_tensor::Field;

const SHADES: &[u8] = b" .:-=+*#%@";

/// Renders a row-major scalar image as an ASCII heatmap, linearly mapping
/// `[min, max]` onto ten brightness glyphs. `max_width` columns are kept
/// (the image is subsampled if wider).
///
/// # Panics
///
/// Panics if `values.len() != rows * cols` or the image is empty.
pub fn ascii_heatmap(values: &[f64], rows: usize, cols: usize, max_width: usize) -> String {
    assert_eq!(values.len(), rows * cols, "heatmap buffer length mismatch");
    assert!(rows > 0 && cols > 0 && max_width > 0, "empty heatmap");
    let step = cols.div_ceil(max_width).max(1);
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-30);
    let mut out = String::with_capacity((cols / step + 1) * (rows / step));
    for r in (0..rows).step_by(step) {
        for c in (0..cols).step_by(step) {
            let v = (values[r * cols + c] - lo) / span;
            let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Renders the intensity pattern `|U|²` of a field.
pub fn view_intensity(field: &Field, max_width: usize) -> String {
    let (r, c) = field.shape();
    ascii_heatmap(&field.intensity(), r, c, max_width)
}

/// Renders a phase mask (radians, any range; wrapped to `[0, 2π)`).
pub fn view_phase(phases: &[f64], rows: usize, cols: usize, max_width: usize) -> String {
    let wrapped: Vec<f64> = phases
        .iter()
        .map(|p| p.rem_euclid(std::f64::consts::TAU))
        .collect();
    ascii_heatmap(&wrapped, rows, cols, max_width)
}

/// Renders a labelled bar chart of class logits (detector readings).
pub fn view_logits(logits: &[f64], labels: Option<&[&str]>) -> String {
    use std::fmt::Write;
    let max = logits
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-30);
    let mut out = String::new();
    for (i, &v) in logits.iter().enumerate() {
        let bar_len = ((v / max).max(0.0) * 40.0).round() as usize;
        let label = labels
            .and_then(|l| l.get(i).copied())
            .map(String::from)
            .unwrap_or_else(|| format!("class {i}"));
        let _ = writeln!(out, "{label:>10} | {} {v:.4}", "█".repeat(bar_len));
    }
    out
}

/// Side-by-side rendering of two heatmaps (e.g. simulation vs experiment in
/// Fig. 6).
///
/// # Panics
///
/// Panics if the images have different shapes.
pub fn side_by_side(
    left: &[f64],
    right: &[f64],
    rows: usize,
    cols: usize,
    max_width: usize,
    titles: (&str, &str),
) -> String {
    assert_eq!(left.len(), right.len(), "images must have the same shape");
    let l = ascii_heatmap(left, rows, cols, max_width);
    let r = ascii_heatmap(right, rows, cols, max_width);
    let l_lines: Vec<&str> = l.lines().collect();
    let r_lines: Vec<&str> = r.lines().collect();
    let width = l_lines.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut out = format!("{:<width$}   {}\n", titles.0, titles.1, width = width);
    for (a, b) in l_lines.iter().zip(&r_lines) {
        out.push_str(&format!("{a:<width$}   {b}\n", width = width));
    }
    out
}

/// Writes a row-major scalar image as a binary PGM (P5) file, linearly
/// mapped to 8-bit — the artifact format for trained masks and detector
/// patterns in the docs.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
///
/// # Panics
///
/// Panics if `values.len() != rows * cols`.
pub fn save_pgm(
    path: impl AsRef<std::path::Path>,
    values: &[f64],
    rows: usize,
    cols: usize,
) -> std::io::Result<()> {
    assert_eq!(values.len(), rows * cols, "image buffer length mismatch");
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-30);
    let mut bytes = format!("P5\n{cols} {rows}\n255\n").into_bytes();
    bytes.extend(
        values
            .iter()
            .map(|&v| (((v - lo) / span) * 255.0).round() as u8),
    );
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_tensor::Complex64;

    #[test]
    fn heatmap_shape_and_shading() {
        let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let s = ascii_heatmap(&vals, 4, 4, 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 4));
        // Smallest value maps to space, largest to '@'.
        assert_eq!(s.as_bytes()[0], b' ');
        assert!(s.contains('@'));
    }

    #[test]
    fn heatmap_subsamples_wide_images() {
        let vals = vec![1.0; 100 * 100];
        let s = ascii_heatmap(&vals, 100, 100, 25);
        let first = s.lines().next().unwrap();
        assert!(first.len() <= 25);
    }

    #[test]
    fn heatmap_constant_image_does_not_panic() {
        let s = ascii_heatmap(&[3.0; 9], 3, 3, 3);
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn view_intensity_runs() {
        let f = Field::from_fn(8, 8, |r, c| Complex64::new((r * c) as f64, 0.0));
        let s = view_intensity(&f, 8);
        assert!(!s.is_empty());
    }

    #[test]
    fn view_phase_wraps() {
        // -π/2 and 3π/2 are the same phase: identical glyphs.
        let a = view_phase(&[-std::f64::consts::FRAC_PI_2, 0.0], 1, 2, 2);
        let b = view_phase(&[3.0 * std::f64::consts::FRAC_PI_2, 0.0], 1, 2, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn logits_bars_scale() {
        let s = view_logits(&[1.0, 0.5, 0.0], None);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        let count = |l: &str| l.matches('█').count();
        assert!(count(lines[0]) > count(lines[1]));
        assert_eq!(count(lines[2]), 0);
    }

    #[test]
    fn side_by_side_aligns() {
        let img = vec![0.0, 1.0, 2.0, 3.0];
        let s = side_by_side(&img, &img, 2, 2, 2, ("sim", "exp"));
        assert!(s.starts_with("sim"));
        assert!(s.contains("exp"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn pgm_roundtrip_header_and_payload() {
        let dir = std::env::temp_dir().join("lr_viz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mask.pgm");
        save_pgm(&path, &[0.0, 0.5, 1.0, 0.25], 2, 2).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        let pixels = &bytes[bytes.len() - 4..];
        assert_eq!(pixels[0], 0);
        assert_eq!(pixels[2], 255);
        assert!(pixels[1] > pixels[3]);
        std::fs::remove_file(&path).unwrap();
    }
}
