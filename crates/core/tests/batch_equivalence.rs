//! Batched-execution contract at the model level: `infer_batch_into` must
//! be **bit-identical** to per-sample `infer` for every sample, across
//! batch sizes {1, 3, 32}, square and non-square grids, smooth
//! (mixed-radix) and Bluestein FFT sizes, every readout mode, and mixed
//! layer stacks — and the batched traced forward/backward must reproduce
//! the per-sample training step's logits and gradients exactly. Across
//! SIMD dispatch levels the contract is tolerance-renegotiated: forced
//! scalar vs detected-width results agree to ≤ 1e-12 relative (the
//! detector readout's lane-partial reduction is the only re-association).

use lightridge::{
    BatchTrace, CodesignMode, Detector, DonnBuilder, DonnModel, ModelGrads, TraceRing,
};
use lr_nn::loss::{one_hot_into, softmax_mse_into};
use lr_optics::{Approximation, Distance, Grid, PixelPitch, Wavelength};
use lr_tensor::{Complex64, Field, FieldBatch};
use proptest::prelude::*;

fn sample_input(rows: usize, cols: usize, b: usize) -> Field {
    Field::from_fn(rows, cols, |r, c| {
        Complex64::from_real(if (r + 2 * c + 3 * b) % 7 < 3 {
            1.0
        } else {
            0.3
        })
    })
}

fn donn(rows: usize, cols: usize, approx: Approximation, mixed: bool) -> DonnModel {
    let grid = Grid::new(rows, cols, PixelPitch::from_um(36.0));
    let det = rows.min(cols) / 6;
    let mut builder = DonnBuilder::new(grid, Wavelength::from_nm(532.0))
        .distance(Distance::from_mm(25.0))
        .approximation(approx)
        .diffractive_layers(1)
        .init_seed(11);
    if mixed {
        builder =
            builder
                .nonlinearity(0.3, 0.8)
                .codesign_layers(1, lr_hardware::SlmModel::ideal(8), 0.9);
    } else {
        builder = builder.diffractive_layers(1);
    }
    builder
        .detector(Detector::grid_layout(rows, cols, 4, det.max(1)))
        .build()
}

/// Batched inference must equal per-sample inference bit for bit.
fn assert_infer_batch_matches(model: &DonnModel, batch_size: usize, mode: CodesignMode) {
    let (rows, cols) = model.grid().shape();
    let inputs: Vec<Field> = (0..batch_size)
        .map(|b| sample_input(rows, cols, b))
        .collect();
    let input_refs: Vec<&Field> = inputs.iter().collect();
    let mut ws = model.make_batch_workspace(batch_size);
    let mut outputs: Vec<Vec<f64>> = vec![Vec::new(); batch_size];
    model.infer_batch_into(&input_refs, mode, &mut ws, &mut outputs);
    for (b, input) in inputs.iter().enumerate() {
        let reference = match mode {
            CodesignMode::Deploy => model.infer_deployed(input),
            _ => model.infer(input),
        };
        assert_eq!(
            outputs[b], reference,
            "batched/per-sample divergence at sample {b}/{batch_size} on {rows}x{cols}"
        );
    }
}

#[test]
fn infer_batch_bit_identical_across_sizes_grids_and_fft_paths() {
    // 20/24 are 2·3·5·7-smooth (Stockham), 22/26 have prime factors > 7
    // (Bluestein); non-square grids mix plan kinds per axis.
    for &(rows, cols) in &[(20, 20), (22, 22), (20, 26), (26, 24)] {
        let model = donn(rows, cols, Approximation::RayleighSommerfeld, false);
        for &batch_size in &[1usize, 3, 32] {
            assert_infer_batch_matches(&model, batch_size, CodesignMode::Soft);
        }
    }
}

#[test]
fn infer_batch_bit_identical_mixed_stack_and_modes() {
    // Diffractive → saturable absorber → codesign, in both noise-free
    // readout modes.
    let model = donn(24, 20, Approximation::RayleighSommerfeld, true);
    for &batch_size in &[1usize, 3, 32] {
        assert_infer_batch_matches(&model, batch_size, CodesignMode::Soft);
        assert_infer_batch_matches(&model, batch_size, CodesignMode::Deploy);
    }
}

#[test]
fn infer_batch_bit_identical_fresnel_and_fraunhofer() {
    // The spectral Fresnel path shares the broadcast-transfer fast path;
    // Fraunhofer exercises the per-plane shift/scale (SingleFourier) path.
    for approx in [Approximation::Fresnel, Approximation::Fraunhofer] {
        let model = donn(20, 22, approx, false);
        for &batch_size in &[1usize, 3] {
            assert_infer_batch_matches(&model, batch_size, CodesignMode::Soft);
        }
    }
}

/// One batch workspace must serve varying batch sizes back to back
/// (the serving runtime's reuse pattern) without cross-contamination.
#[test]
fn one_batch_workspace_serves_varying_sizes() {
    let model = donn(22, 22, Approximation::RayleighSommerfeld, false);
    let (rows, cols) = model.grid().shape();
    let mut ws = model.make_batch_workspace(8);
    for &n in &[8usize, 1, 5, 2] {
        let inputs: Vec<Field> = (0..n).map(|b| sample_input(rows, cols, b + n)).collect();
        let input_refs: Vec<&Field> = inputs.iter().collect();
        let mut outputs: Vec<Vec<f64>> = vec![Vec::new(); n];
        model.infer_batch_into(&input_refs, CodesignMode::Soft, &mut ws, &mut outputs);
        for (b, input) in inputs.iter().enumerate() {
            assert_eq!(outputs[b], model.infer(input), "size {n}, sample {b}");
        }
    }
}

/// The batched traced forward + batched backward must reproduce the
/// per-sample training step exactly: same logits, same detector planes,
/// same accumulated gradients, bit for bit — including per-sample Gumbel
/// noise in `Train` mode.
#[test]
fn batched_training_step_matches_per_sample_bitwise() {
    for mixed in [false, true] {
        let model = donn(20, 20, Approximation::RayleighSommerfeld, mixed);
        let (rows, cols) = model.grid().shape();
        let classes = model.num_classes();
        let bsz = 5;
        let seeds: Vec<u64> = (0..bsz as u64).map(|b| b * 9176 + 3).collect();
        let inputs: Vec<Field> = (0..bsz).map(|b| sample_input(rows, cols, b)).collect();

        // Per-sample reference step.
        let mut ref_grads = ModelGrads::zeros_like(&model);
        let mut ref_logits = Vec::new();
        let mut ws = model.make_workspace();
        let mut ring = TraceRing::new(1);
        let mut target = Vec::new();
        let mut logit_grads_buf = Vec::new();
        let mut per_sample_logit_grads = Vec::new();
        for (b, input) in inputs.iter().enumerate() {
            let trace = ring.forward(&model, input, CodesignMode::Train, seeds[b], &mut ws);
            one_hot_into(b % classes, classes, &mut target);
            softmax_mse_into(&trace.logits, &target, &mut logit_grads_buf);
            ref_logits.push(trace.logits.clone());
            per_sample_logit_grads.push(logit_grads_buf.clone());
            model.backward_with(trace, &logit_grads_buf, &mut ref_grads, &mut ws);
        }

        // Batched step with the same per-sample seeds.
        let mut batch = FieldBatch::zeros(bsz, rows, cols);
        for (b, input) in inputs.iter().enumerate() {
            batch.copy_plane_from(b, input);
        }
        let mut bws = model.make_batch_workspace(bsz);
        let mut trace = BatchTrace::new();
        model.forward_trace_batch_into(&batch, CodesignMode::Train, &seeds, &mut bws, &mut trace);
        assert_eq!(trace.batch(), bsz);
        for (b, expected) in ref_logits.iter().enumerate() {
            assert_eq!(
                &trace.logits[b], expected,
                "batched trace logits diverge at sample {b} (mixed={mixed})"
            );
        }
        let mut grads = ModelGrads::zeros_like(&model);
        model.backward_batch_with(&trace, &per_sample_logit_grads, &mut grads, &mut bws);
        for i in 0..model.layers().len() {
            assert_eq!(
                grads.layer(i),
                ref_grads.layer(i),
                "batched gradients diverge at layer {i} (mixed={mixed})"
            );
        }
    }
}

/// `|a - b| ≤ tol · max(|a|, |b|)`, with an absolute floor so exact zeros
/// compare equal.
fn assert_rel_close(a: f64, b: f64, tol: f64, what: &str) {
    let scale = a.abs().max(b.abs()).max(1e-30);
    assert!(
        (a - b).abs() <= tol * scale,
        "{what}: {a} vs {b} differ by {:.3e} rel (tolerance {tol:.0e})",
        (a - b).abs() / scale
    );
}

/// The dispatch-level half of the equivalence contract: forcing the
/// scalar fallback versus the runtime-detected SIMD width may change
/// results only through the detector readout's lane-partial reduction,
/// bounded by the documented ≤ 1e-12 relative tolerance (see
/// `Detector::read_plane_into`) — for inference logits and accumulated
/// training gradients alike. The FFT and transfer-apply lanes are bitwise
/// identical to the scalar kernels by construction, so any drift beyond
/// the readout's re-association is a dispatch bug.
///
/// `simd::force` is process-global; dispatch-level flips mid-test cannot
/// corrupt the *other* tests in this binary (their batched-vs-per-sample
/// comparisons hold bitwise at every level), and this test restores
/// auto-detection before returning.
#[test]
fn training_step_scalar_vs_simd_within_documented_tolerance() {
    use lr_tensor::simd::{self, SimdLevel};

    const TOL: f64 = 1e-12;
    let model = donn(20, 20, Approximation::RayleighSommerfeld, false);
    let (rows, cols) = model.grid().shape();
    let classes = model.num_classes();
    let bsz = 5;
    let seeds: Vec<u64> = (0..bsz as u64).map(|b| b * 9176 + 3).collect();
    let mut batch = FieldBatch::zeros(bsz, rows, cols);
    for b in 0..bsz {
        batch.copy_plane_from(b, &sample_input(rows, cols, b));
    }

    // One full batched training step (traced forward + backward) at a
    // pinned dispatch level.
    let run_step = |level: Option<SimdLevel>| {
        simd::force(level);
        let mut bws = model.make_batch_workspace(bsz);
        let mut trace = BatchTrace::new();
        model.forward_trace_batch_into(&batch, CodesignMode::Train, &seeds, &mut bws, &mut trace);
        let mut target = Vec::new();
        let mut logit_grads = Vec::new();
        for b in 0..bsz {
            one_hot_into(b % classes, classes, &mut target);
            let mut g = Vec::new();
            softmax_mse_into(&trace.logits[b], &target, &mut g);
            logit_grads.push(g);
        }
        let mut grads = ModelGrads::zeros_like(&model);
        model.backward_batch_with(&trace, &logit_grads, &mut grads, &mut bws);
        simd::force(None);
        (trace.logits.clone(), grads)
    };

    let (scalar_logits, scalar_grads) = run_step(Some(SimdLevel::Scalar));
    let (simd_logits, simd_grads) = run_step(None);

    for b in 0..bsz {
        for (k, (&s, &v)) in scalar_logits[b].iter().zip(&simd_logits[b]).enumerate() {
            assert_rel_close(s, v, TOL, &format!("logit {k} of sample {b}"));
        }
    }
    for i in 0..model.layers().len() {
        for (k, (&s, &v)) in scalar_grads
            .layer(i)
            .iter()
            .zip(simd_grads.layer(i))
            .enumerate()
        {
            assert_rel_close(s, v, TOL, &format!("gradient {k} of layer {i}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized shapes and batch sizes: batched inference equals
    /// per-sample inference bit for bit.
    #[test]
    fn infer_batch_matches_prop(
        rows in 12usize..26,
        cols in 12usize..26,
        batch_size in 1usize..5,
    ) {
        let model = donn(rows, cols, Approximation::RayleighSommerfeld, false);
        assert_infer_batch_matches(&model, batch_size, CodesignMode::Soft);
    }
}
