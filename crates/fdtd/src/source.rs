//! Continuous-wave line sources with smooth turn-on.

/// A soft CW source driving `Ez` along one grid row with a transverse
/// amplitude profile — the FDTD counterpart of the scalar kernels'
/// input-encoding plane (an amplitude-modulated coherent wavefront).
///
/// The drive is `ramp(t) · profile[j] · sin(ωt)`; the raised-cosine ramp
/// avoids injecting broadband transients.
///
/// # Examples
///
/// ```
/// use lr_fdtd::CwLineSource;
/// let src = CwLineSource::uniform(4, 32);
/// assert_eq!(src.row(), 4);
/// assert_eq!(src.profile().len(), 32);
/// // Fully ramped up after `ramp_steps`:
/// assert!((src.amplitude_at(1e6, 0.1)).abs() <= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CwLineSource {
    row: usize,
    profile: Vec<f64>,
    ramp_steps: f64,
}

impl CwLineSource {
    /// Default smooth turn-on length in time steps.
    pub const DEFAULT_RAMP_STEPS: f64 = 60.0;

    /// A uniform unit-amplitude source along `row` spanning `ny` cells.
    pub fn uniform(row: usize, ny: usize) -> Self {
        Self::with_profile(row, vec![1.0; ny])
    }

    /// A source with an arbitrary transverse amplitude profile (an
    /// "aperture" or an encoded input image row).
    ///
    /// # Panics
    ///
    /// Panics if the profile is empty or contains non-finite values.
    pub fn with_profile(row: usize, profile: Vec<f64>) -> Self {
        assert!(!profile.is_empty(), "source profile must not be empty");
        assert!(
            profile.iter().all(|v| v.is_finite()),
            "source profile must be finite"
        );
        CwLineSource {
            row,
            profile,
            ramp_steps: Self::DEFAULT_RAMP_STEPS,
        }
    }

    /// Overrides the turn-on ramp length (time steps).
    ///
    /// # Panics
    ///
    /// Panics if `steps` is negative or non-finite.
    pub fn ramp_steps(mut self, steps: f64) -> Self {
        assert!(
            steps.is_finite() && steps >= 0.0,
            "ramp must be a finite non-negative step count"
        );
        self.ramp_steps = steps;
        self
    }

    /// The grid row this source drives.
    pub fn row(&self) -> usize {
        self.row
    }

    /// The transverse amplitude profile.
    pub fn profile(&self) -> &[f64] {
        &self.profile
    }

    /// Drive amplitude at time step `t` for angular frequency `omega`
    /// (radians per step), before the per-cell profile factor.
    pub fn amplitude_at(&self, t: f64, omega: f64) -> f64 {
        let ramp = if t >= self.ramp_steps || self.ramp_steps == 0.0 {
            1.0
        } else {
            0.5 * (1.0 - (std::f64::consts::PI * t / self.ramp_steps).cos())
        };
        ramp * (omega * t).sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_starts_at_zero_and_reaches_one() {
        let src = CwLineSource::uniform(0, 4).ramp_steps(100.0);
        assert_eq!(src.amplitude_at(0.0, 0.0), 0.0);
        // After the ramp, amplitude is pure sin(ωt).
        let omega = 0.123;
        let t = 1000.0;
        assert!((src.amplitude_at(t, omega) - (omega * t).sin()).abs() < 1e-12);
    }

    #[test]
    fn ramp_is_monotone_envelope() {
        let _src = CwLineSource::uniform(0, 4).ramp_steps(80.0);
        let mut last = 0.0;
        for k in 0..=80 {
            let t = k as f64;
            // Envelope at quarter phase: use omega so sin(ωt)=±1 at samples.
            let env = if t >= 80.0 {
                1.0
            } else {
                0.5 * (1.0 - (std::f64::consts::PI * t / 80.0).cos())
            };
            assert!(env >= last - 1e-12, "ramp not monotone at t={t}");
            last = env;
        }
    }

    #[test]
    fn zero_ramp_means_instant_on() {
        let src = CwLineSource::uniform(0, 4).ramp_steps(0.0);
        let omega = 1.0;
        assert!((src.amplitude_at(1.0, omega) - omega.sin()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn rejects_empty_profile() {
        let _ = CwLineSource::with_profile(0, vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_profile() {
        let _ = CwLineSource::with_profile(0, vec![1.0, f64::NAN]);
    }
}
